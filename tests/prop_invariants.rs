//! Property-based restatement of the runtime invariants in
//! `stmaker::invariant`: where the debug-build gates check one input at a
//! time, these tests drive the same contracts over random inputs.

use proptest::prelude::*;
use stmaker::irregular::feature_edit_distance;
use stmaker::{optimal_k_partition, optimal_partition, FeatureScale, PartitionSpan};

/// Spans must be non-empty, contiguous, and exactly cover `[0, n_segs)`.
fn assert_covering(spans: &[PartitionSpan], n_segs: usize) {
    let mut expected_start = 0usize;
    for s in spans {
        assert_eq!(s.seg_start, expected_start, "gap or overlap at {s:?}");
        assert!(s.seg_end >= s.seg_start, "empty span {s:?}");
        expected_start = s.seg_end + 1;
    }
    assert_eq!(expected_start, n_segs, "spans must cover every segment");
}

proptest! {
    /// For any boundary arrays and any feasible k, the k-partition exists,
    /// has exactly k contiguous covering spans, a finite potential, and never
    /// beats the unconstrained optimum.
    #[test]
    fn k_partition_spans_cover_with_finite_scores(
        pairs in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..24),
        ca in 0.0f64..2.0,
        k_seed in 0usize..1000,
    ) {
        let sims: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let sigs: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let n_segs = sims.len() + 1;
        let k = 1 + k_seed % n_segs;

        let r = optimal_k_partition(&sims, &sigs, ca, k)
            .expect("1 <= k <= n_segs is always feasible");
        prop_assert_eq!(r.k(), k);
        prop_assert!(r.potential.is_finite(), "potential {} must be finite", r.potential);
        assert_covering(&r.spans, n_segs);

        let free = optimal_partition(&sims, &sigs, ca);
        assert_covering(&free.spans, n_segs);
        prop_assert!(
            r.potential >= free.potential - 1e-9,
            "k-constrained {} beat unconstrained {}", r.potential, free.potential
        );
    }

    /// The degenerate k values never panic: 0 and n_segs + 1 yield None,
    /// 1 and n_segs yield valid partitions.
    #[test]
    fn k_extremes_never_panic(
        pairs in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..24),
        ca in 0.0f64..2.0,
    ) {
        let sims: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let sigs: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let n_segs = sims.len() + 1;

        prop_assert!(optimal_k_partition(&sims, &sigs, ca, 0).is_none());
        prop_assert!(optimal_k_partition(&sims, &sigs, ca, n_segs + 1).is_none());

        let one = optimal_k_partition(&sims, &sigs, ca, 1).expect("k = 1 always feasible");
        prop_assert_eq!(one.k(), 1);
        assert_covering(&one.spans, n_segs);

        let all = optimal_k_partition(&sims, &sigs, ca, n_segs)
            .expect("k = n_segs always feasible");
        prop_assert_eq!(all.k(), n_segs);
        assert_covering(&all.spans, n_segs);
        prop_assert!(all.spans.iter().all(|s| s.len() == 1));
    }

    /// Edit distance obeys its bounds for both scales: at least the length
    /// difference, at most the summed lengths, always finite.
    #[test]
    fn edit_distance_within_bounds(
        a in prop::collection::vec(-1.0f64..1.0, 0..16),
        b in prop::collection::vec(-1.0f64..1.0, 0..16),
    ) {
        for scale in [FeatureScale::Numeric, FeatureScale::Categorical] {
            let d = feature_edit_distance(&a, &b, scale);
            let diff = a.len().abs_diff(b.len()) as f64;
            let total = (a.len() + b.len()) as f64;
            prop_assert!(d.is_finite(), "distance must be finite");
            prop_assert!(d >= diff - 1e-9, "{d} below length-difference bound {diff}");
            prop_assert!(d <= total + 1e-9, "{d} above summed-length bound {total}");
        }
    }
}
