//! Cross-crate integration tests: the full STMaker pipeline over a generated
//! world — generate, train, summarize, and check structural invariants.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stmaker_generator::{TripConfig, TripGenerator, World, WorldConfig};
use stmaker_suite::{
    mentioned_keys, standard_features, summary_mentions, FeatureWeights, Summarizer,
    SummarizerConfig,
};
use stmaker_trajectory::RawTrajectory;

/// One shared small world + trained summarizer for all tests in this file.
struct Harness {
    world: World,
}

impl Harness {
    fn new() -> Self {
        Self { world: World::generate(WorldConfig::small(77)) }
    }

    fn corpora(&self, n_train: usize, n_test: usize) -> (Vec<RawTrajectory>, Vec<RawTrajectory>) {
        let gen = TripGenerator::new(&self.world, TripConfig::default());
        let train: Vec<RawTrajectory> =
            gen.generate_corpus(n_train, 1001).into_iter().map(|t| t.raw).collect();
        let test: Vec<RawTrajectory> =
            gen.generate_corpus(n_test, 2002).into_iter().map(|t| t.raw).collect();
        (train, test)
    }
}

#[test]
fn full_pipeline_produces_summaries() {
    let h = Harness::new();
    let (train, test) = h.corpora(60, 10);
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let summarizer = Summarizer::train(
        &h.world.net,
        &h.world.registry,
        &train,
        features,
        weights,
        SummarizerConfig::default(),
    );
    assert!(summarizer.model().n_trained >= 50, "most training trips should calibrate");

    let mut summarized = 0;
    for raw in &test {
        let Ok(summary) = summarizer.summarize(raw) else { continue };
        summarized += 1;
        // Structural invariants.
        assert!(!summary.partitions.is_empty());
        assert!(!summary.text.is_empty());
        assert!(summary.text.starts_with("The car started from the "), "{}", summary.text);
        // Definition 5: every segment covered exactly once.
        let n_segs = summary.symbolic_len - 1;
        assert_eq!(summary.partitions[0].span.seg_start, 0);
        assert_eq!(summary.partitions.last().unwrap().span.seg_end, n_segs - 1);
        for w in summary.partitions.windows(2) {
            assert_eq!(w[0].span.seg_end + 1, w[1].span.seg_start);
            // Partition chaining: each partition starts where the last ended.
            assert_eq!(w[0].to, w[1].from);
        }
        // Every sentence ends with a period and mentions its endpoints.
        for p in &summary.partitions {
            assert!(p.sentence.ends_with('.'));
            assert!(p.sentence.contains(&p.from_name), "{}", p.sentence);
        }
    }
    assert!(summarized >= 8, "only {summarized}/10 test trips summarized");
}

#[test]
fn summaries_are_deterministic() {
    let h = Harness::new();
    let (train, test) = h.corpora(40, 5);
    let make = || {
        let features = standard_features();
        let weights = FeatureWeights::uniform(&features);
        Summarizer::train(
            &h.world.net,
            &h.world.registry,
            &train,
            features,
            weights,
            SummarizerConfig::default(),
        )
    };
    let s1 = make();
    let s2 = make();
    for raw in &test {
        let a = s1.summarize(raw).map(|s| s.text).unwrap_or_default();
        let b = s2.summarize(raw).map(|s| s.text).unwrap_or_default();
        assert_eq!(a, b);
    }
}

#[test]
fn k_granularity_is_monotone_in_detail() {
    let h = Harness::new();
    let (train, test) = h.corpora(60, 20);
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let summarizer = Summarizer::train(
        &h.world.net,
        &h.world.registry,
        &train,
        features,
        weights,
        SummarizerConfig::default(),
    );

    let mut checked = 0;
    for raw in &test {
        let Ok(prepared) = summarizer.prepare(raw) else { continue };
        if prepared.symbolic.segment_count() < 3 {
            continue;
        }
        let s1 = summarizer.summarize_prepared(&prepared, Some(1)).unwrap();
        let s2 = summarizer.summarize_prepared(&prepared, Some(2)).unwrap();
        let s3 = summarizer.summarize_prepared(&prepared, Some(3)).unwrap();
        assert_eq!(s1.partitions.len(), 1);
        assert_eq!(s2.partitions.len(), 2);
        assert_eq!(s3.partitions.len(), 3);
        // The k-constrained potential can only improve as k approaches the
        // unconstrained optimum's partition count — and the k = |segments|
        // and k = 1 extremes must both be feasible.
        let max_k = prepared.symbolic.segment_count();
        assert!(summarizer.summarize_prepared(&prepared, Some(max_k)).is_ok());
        assert!(summarizer.summarize_prepared(&prepared, Some(max_k + 1)).is_err());
        checked += 1;
    }
    assert!(checked >= 5, "only {checked} trips long enough for k-sweep");
}

#[test]
fn injected_events_surface_in_summaries() {
    let h = Harness::new();
    let gen = TripGenerator::new(&h.world, TripConfig::default());
    let train: Vec<RawTrajectory> =
        gen.generate_corpus(80, 3003).into_iter().map(|t| t.raw).collect();
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let summarizer = Summarizer::train(
        &h.world.net,
        &h.world.registry,
        &train,
        features,
        weights,
        SummarizerConfig::default(),
    );

    // Rush-hour test trips carry injected stays; the summaries must mention
    // stay points for a solid majority of trips that actually had them.
    let mut rng = StdRng::seed_from_u64(4004);
    let mut with_stays = 0;
    let mut mentioned = 0;
    for _ in 0..40 {
        let Some(trip) = gen.generate_at(1, 8.5, &mut rng) else { continue };
        if trip.truth.stays.is_empty() {
            continue;
        }
        let Ok(summary) = summarizer.summarize(&trip.raw) else { continue };
        with_stays += 1;
        if summary_mentions(&summary, stmaker_suite::keys::STAY_POINTS) {
            mentioned += 1;
        }
    }
    assert!(with_stays >= 10, "need enough stay-bearing trips, got {with_stays}");
    // A single stay inside a long partition legitimately dilutes below η —
    // the paper itself observes that "irregular moving features of the
    // partial partition may not be significant enough for a long partition"
    // (Fig. 10(b) discussion) — so we require a solid plurality, not all.
    assert!(
        mentioned as f64 >= 0.3 * with_stays as f64,
        "stays mentioned in only {mentioned}/{with_stays} summaries"
    );
}

#[test]
fn night_trips_read_smoother_than_rush_trips() {
    let h = Harness::new();
    let gen = TripGenerator::new(&h.world, TripConfig::default());
    let train: Vec<RawTrajectory> =
        gen.generate_corpus(80, 5005).into_iter().map(|t| t.raw).collect();
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let summarizer = Summarizer::train(
        &h.world.net,
        &h.world.registry,
        &train,
        features,
        weights,
        SummarizerConfig::default(),
    );

    let mut rng = StdRng::seed_from_u64(6006);
    let avg_mentions = |hour: f64, rng: &mut StdRng| {
        let mut total = 0usize;
        let mut n = 0usize;
        for _ in 0..25 {
            let Some(trip) = gen.generate_at(2, hour, rng) else { continue };
            let Ok(summary) = summarizer.summarize(&trip.raw) else { continue };
            total += mentioned_keys(&summary).len();
            n += 1;
        }
        total as f64 / n.max(1) as f64
    };
    let rush = avg_mentions(8.0, &mut rng);
    let night = avg_mentions(2.5, &mut rng);
    assert!(
        rush > night,
        "rush summaries should carry more irregular features: rush {rush:.2} vs night {night:.2}"
    );
}

#[test]
fn group_summarization_aggregates_rush_hour_corridor() {
    let h = Harness::new();
    let gen = TripGenerator::new(&h.world, TripConfig::default());
    let train: Vec<RawTrajectory> =
        gen.generate_corpus(60, 7007).into_iter().map(|t| t.raw).collect();
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let summarizer = Summarizer::train(
        &h.world.net,
        &h.world.registry,
        &train,
        features,
        weights,
        SummarizerConfig::default(),
    );

    // A rush-hour group: anomalies must recur.
    let mut rng = StdRng::seed_from_u64(8008);
    let mut rush: Vec<RawTrajectory> = Vec::new();
    while rush.len() < 25 {
        if let Some(t) = gen.generate_at(4, 8.3, &mut rng) {
            rush.push(t.raw);
        }
    }
    let group = summarizer.summarize_group(&rush, 0.15).expect("summarizable group");
    assert_eq!(group.n_trajectories, 25);
    assert!(group.n_summarized >= 20);
    assert!(!group.recurring.is_empty(), "rush-hour groups have recurring anomalies");
    assert!(group.text.starts_with("Across "), "{}", group.text);
    assert!(group.text.contains('%'), "{}", group.text);
    for r in &group.recurring {
        assert!((0.15..=1.0).contains(&r.fraction));
    }
    // Fractions sorted descending.
    assert!(group.recurring.windows(2).all(|w| w[0].fraction >= w[1].fraction));

    // A night group over the same world: fewer (often zero) recurrences.
    let mut night: Vec<RawTrajectory> = Vec::new();
    while night.len() < 25 {
        if let Some(t) = gen.generate_at(4, 2.3, &mut rng) {
            night.push(t.raw);
        }
    }
    let night_group = summarizer.summarize_group(&night, 0.15).expect("summarizable group");
    // Routing flags (route-vs-popular) are time-independent; the moving
    // anomalies are what rush hours add, so compare those.
    let moving_mass = |g: &stmaker_suite::GroupSummary| -> f64 {
        g.recurring
            .iter()
            .filter(|r| {
                [
                    stmaker_suite::keys::SPEED,
                    stmaker_suite::keys::STAY_POINTS,
                    stmaker_suite::keys::U_TURNS,
                ]
                .contains(&r.key.as_str())
            })
            .map(|r| r.fraction)
            .sum()
    };
    let rush_flags = moving_mass(&group);
    let night_flags = moving_mass(&night_group);
    assert!(
        rush_flags > night_flags,
        "rush corridor must look worse than night: {rush_flags:.2} vs {night_flags:.2}"
    );
}

#[test]
fn model_persistence_round_trips_summaries() {
    let h = Harness::new();
    let (train, test) = h.corpora(40, 6);
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let trained = Summarizer::train(
        &h.world.net,
        &h.world.registry,
        &train,
        features,
        weights,
        SummarizerConfig::default(),
    );

    // Save → load → summaries byte-identical, file canonical.
    let dir = std::env::temp_dir().join(format!("stmaker-model-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    trained.model().save(&path).unwrap();
    let json_a = std::fs::read_to_string(&path).unwrap();

    let loaded = stmaker_suite::TrainedModel::load(&path).unwrap();
    assert_eq!(loaded.n_trained, trained.model().n_trained);
    let features2 = standard_features();
    let weights2 = FeatureWeights::uniform(&features2);
    let revived = Summarizer::from_model(
        &h.world.net,
        &h.world.registry,
        loaded,
        features2,
        weights2,
        SummarizerConfig::default(),
    );
    for raw in &test {
        let a = trained.summarize(raw).map(|s| s.text).unwrap_or_default();
        let b = revived.summarize(raw).map(|s| s.text).unwrap_or_default();
        assert_eq!(a, b);
    }
    // Canonical serialization: saving the revived model reproduces the file.
    assert_eq!(revived.model().to_json(), json_a.trim_end_matches('\n'));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn streaming_summarizer_converges_to_batch() {
    use stmaker_suite::{StreamConfig, StreamingSummarizer};
    let h = Harness::new();
    let (train, _) = h.corpora(40, 1);
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let summarizer = Summarizer::train(
        &h.world.net,
        &h.world.registry,
        &train,
        features,
        weights,
        SummarizerConfig::default(),
    );

    let gen = TripGenerator::new(&h.world, TripConfig::default());
    let mut rng = StdRng::seed_from_u64(9009);
    let trip = (0..60).find_map(|_| gen.generate_at(2, 8.5, &mut rng)).expect("rush trip");

    let mut stream = StreamingSummarizer::new(&summarizer, StreamConfig::default());
    let mut refreshes = 0;
    let mut lengths = Vec::new();
    for p in trip.raw.points() {
        if let Ok(Some(summary)) = stream.try_push(*p) {
            refreshes += 1;
            lengths.push(summary.symbolic_len);
        }
    }
    assert_eq!(stream.dropped(), (0, 0), "a clean trip must not shed samples");
    assert!(refreshes >= 3, "a multi-km trip must refresh several times, got {refreshes}");
    // The live summary covers more and more of the trip.
    assert!(lengths.windows(2).all(|w| w[1] >= w[0]), "coverage must grow: {lengths:?}");
    assert_eq!(stream.len(), trip.raw.len());

    // Finalizing equals batch summarization of the same samples.
    let live = stream.finish().expect("summarizable");
    let batch = summarizer.summarize(&trip.raw).expect("summarizable");
    assert_eq!(live.text, batch.text);
}

#[test]
fn recorder_sees_every_pipeline_stage() {
    use stmaker_suite::Recorder;
    let h = Harness::new();
    let (train, test) = h.corpora(40, 5);
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let obs = Recorder::enabled();
    let summarizer = Summarizer::train(
        &h.world.net,
        &h.world.registry,
        &train,
        features,
        weights,
        SummarizerConfig::default().with_recorder(obs.clone()),
    );

    let mut summarized = 0u64;
    for raw in &test {
        if summarizer.summarize(raw).is_ok() {
            summarized += 1;
        }
    }
    assert!(summarized >= 1, "at least one test trip must summarize");

    let report = obs.report();
    let names = report.span_names();
    for stage in
        ["train", "summarize", "calibrate", "partition", "select", "popular_route", "render"]
    {
        assert!(names.contains(stage), "missing span `{stage}` in {names:?}");
    }
    // The root summarize span is called once per successful summarize (failed
    // calibrations still open the root span, so >=).
    let root_calls =
        report.spans.iter().find(|s| s.name == "summarize").map(|s| s.calls).unwrap_or(0);
    assert!(root_calls >= summarized, "summarize span calls {root_calls} < {summarized}");
    assert!(report.counters.get("partition.dp_cells").is_some_and(|&c| c > 0));
    assert!(report.counters.get("train.trajectories_ingested").is_some_and(|&c| c >= 30));

    // The JSON the CLI / eval binaries write round-trips through the
    // schema validator used by `cargo xtask obs-schema` and CI.
    let json = report.to_json_pretty();
    let validated = stmaker_suite::obs::report::validate_json(&json).expect("schema-valid report");
    assert!(validated.contains("partition"));

    // A disabled recorder stays silent end to end.
    let silent = Recorder::disabled();
    assert!(!silent.is_enabled());
    let empty = silent.report();
    assert!(empty.spans.is_empty() && empty.counters.is_empty());
}

#[test]
fn training_is_byte_identical_across_thread_counts() {
    let h = Harness::new();
    let (train, _) = h.corpora(80, 0);
    let make = |threads: usize| {
        let features = standard_features();
        let weights = FeatureWeights::uniform(&features);
        Summarizer::train(
            &h.world.net,
            &h.world.registry,
            &train,
            features,
            weights,
            SummarizerConfig::default().with_threads(threads),
        )
        .model()
        .to_json()
    };
    // The determinism contract (DESIGN.md §10): shard structure is a
    // function of corpus size only and partials merge in shard order, so
    // the trained model cannot depend on the worker count.
    let reference = make(1);
    for threads in [2, 3, 4, 8] {
        assert_eq!(make(threads), reference, "threads={threads} diverged from threads=1");
    }
}

#[test]
fn summaries_byte_identical_across_spatial_index_backends() {
    use stmaker_suite::SpatialIndexKind;
    let h = Harness::new();
    let (train, test) = h.corpora(60, 15);
    let make = |kind: SpatialIndexKind, threads: usize| {
        // The registry owns calibration's index; the config field drives the
        // matcher. The CLI flips both together, and so does this test.
        let mut registry = h.world.registry.clone();
        registry.set_index_kind(kind);
        let features = standard_features();
        let weights = FeatureWeights::uniform(&features);
        let s = Summarizer::train(
            &h.world.net,
            &registry,
            &train,
            features,
            weights,
            SummarizerConfig::default().with_threads(threads).with_spatial_index(kind),
        );
        let model = s.model().to_json();
        let texts: Vec<Option<String>> =
            s.summarize_batch(&test).into_iter().map(|r| r.ok().map(|s| s.text)).collect();
        (model, texts)
    };

    // The reference: grid backend, one thread — the pre-R-tree pipeline.
    let (model_ref, texts_ref) = make(SpatialIndexKind::Grid, 1);
    assert!(texts_ref.iter().flatten().count() >= 10, "most test trips must summarize");

    // DESIGN.md §14: the R-tree refines candidates with the exact same float
    // arithmetic the grid path uses, so neither the backend nor the thread
    // count may change a single output byte.
    for threads in [1, 2, 4] {
        for kind in [SpatialIndexKind::Grid, SpatialIndexKind::Rtree] {
            let (model, texts) = make(kind, threads);
            assert_eq!(model, model_ref, "{kind} at {threads} thread(s) changed model bytes");
            assert_eq!(texts, texts_ref, "{kind} at {threads} thread(s) changed summary bytes");
        }
    }
}

#[test]
fn summarize_batch_matches_individual_summaries() {
    let h = Harness::new();
    let (train, test) = h.corpora(60, 12);
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let summarizer = Summarizer::train(
        &h.world.net,
        &h.world.registry,
        &train,
        features,
        weights,
        SummarizerConfig::default().with_threads(4),
    );

    let batch = summarizer.summarize_batch(&test);
    assert_eq!(batch.len(), test.len(), "results are index-aligned with the input");
    for (raw, batched) in test.iter().zip(&batch) {
        let individual = summarizer.summarize(raw);
        match (batched, individual) {
            (Ok(b), Ok(s)) => assert_eq!(b.text, s.text),
            (Err(_), Err(_)) => {}
            (b, s) => {
                panic!("batch {:?} vs individual {:?} disagree on success", b.is_ok(), s.is_ok())
            }
        }
    }

    // The k-constrained batch variant agrees with summarize_k the same way.
    let batch_k = summarizer.summarize_batch_k(&test, 2);
    for (raw, batched) in test.iter().zip(&batch_k) {
        match (batched, summarizer.summarize_k(raw, 2)) {
            (Ok(b), Ok(s)) => assert_eq!(b.text, s.text),
            (Err(_), Err(_)) => {}
            (b, s) => panic!("batch_k {:?} vs summarize_k {:?} disagree", b.is_ok(), s.is_ok()),
        }
    }
}

#[test]
fn summaries_identical_with_and_without_cache() {
    let h = Harness::new();
    let (train, test) = h.corpora(60, 15);
    let make = |threads: usize, route_cache: usize| {
        let features = standard_features();
        let weights = FeatureWeights::uniform(&features);
        Summarizer::train(
            &h.world.net,
            &h.world.registry,
            &train,
            features,
            weights,
            SummarizerConfig::default().with_threads(threads).with_route_cache(route_cache),
        )
    };

    // The reference: no cache, one thread.
    let reference: Vec<Option<String>> =
        make(1, 0).summarize_batch(&test).into_iter().map(|r| r.ok().map(|s| s.text)).collect();
    assert!(reference.iter().flatten().count() >= 10, "most test trips must summarize");

    // The cache memoizes pure functions of the trained model (DESIGN.md
    // §12), so summaries must be byte-identical at every thread count and
    // cache size — including a 2-route cache small enough that the batch
    // evicts constantly.
    for threads in [1, 2, 4] {
        for capacity in [256, 2] {
            let s = make(threads, capacity);
            let got: Vec<Option<String>> =
                s.summarize_batch(&test).into_iter().map(|r| r.ok().map(|s| s.text)).collect();
            assert_eq!(
                got, reference,
                "cache (cap {capacity}) at {threads} thread(s) changed summary bytes"
            );
            let stats = s.route_cache_stats().expect("cache enabled");
            assert!(stats.hits + stats.misses > 0, "batch must exercise the cache");
            if capacity == 2 {
                assert!(stats.evictions > 0, "a 2-route cache must evict on this corpus");
            }
        }
    }
}

#[test]
fn batch_telemetry_reports_per_trip_spans() {
    use stmaker_suite::Recorder;
    let h = Harness::new();
    let (train, test) = h.corpora(40, 6);
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let obs = Recorder::enabled();
    let summarizer = Summarizer::train(
        &h.world.net,
        &h.world.registry,
        &train,
        features,
        weights,
        SummarizerConfig::default().with_threads(2).with_recorder(obs.clone()),
    );
    let batch = summarizer.summarize_batch(&test);

    let report = obs.report();
    let names = report.span_names();
    assert!(names.contains("train.shard"), "missing per-shard train spans in {names:?}");
    assert!(names.contains("summarize_batch"), "missing batch root span in {names:?}");
    assert!(report.gauges.contains_key("exec.threads"));
    assert!(report.counters.contains_key("exec.tasks_stolen"));
    let trip_calls = report
        .spans
        .iter()
        .find(|s| s.name == "summarize_batch")
        .map(|s| {
            s.children
                .iter()
                .filter(|c| c.name == "summarize_batch.trip")
                .map(|c| c.calls)
                .sum::<u64>()
        })
        .unwrap_or(0);
    assert_eq!(trip_calls as usize, test.len(), "one trip span per input");
    let ok = report.counters.get("batch.summaries_ok").copied().unwrap_or(0);
    let failed = report.counters.get("batch.summaries_failed").copied().unwrap_or(0);
    assert_eq!((ok + failed) as usize, batch.len());
}

#[test]
fn batch_report_carries_exemplars_stage_merge_and_stable_bytes() {
    use stmaker_suite::Recorder;
    let h = Harness::new();
    let (train, test) = h.corpora(40, 8);
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let obs = Recorder::enabled();
    let summarizer = Summarizer::train(
        &h.world.net,
        &h.world.registry,
        &train,
        features,
        weights,
        SummarizerConfig::default().with_threads(2).with_recorder(obs.clone()),
    );
    let batch = summarizer.summarize_batch(&test);
    let n_ok = batch.iter().filter(|r| r.is_ok()).count();
    assert!(n_ok > 0, "corpus must summarize for this test to bite");

    let report = obs.report();
    // Top-K slowest successful trips surface as exemplars with a full
    // stage breakdown, slowest first.
    let expect = n_ok.min(stmaker_obs::DEFAULT_EXEMPLAR_K);
    assert_eq!(report.exemplars.len(), expect, "{:?}", report.exemplars);
    for pair in report.exemplars.windows(2) {
        assert!(pair[0].total_ms >= pair[1].total_ms, "exemplars sorted slowest-first");
    }
    for e in &report.exemplars {
        assert!(e.id.starts_with("trip_"), "{}", e.id);
        for stage in ["calibrate", "extract", "partition", "select", "render"] {
            assert!(e.stages.contains_key(stage), "{} missing {stage}", e.id);
        }
    }
    // Worker-side stage counters are merged into the shared recorder
    // instead of being lost with the per-trip private recorders.
    assert!(report.counters.get("partition.segments_scanned").copied().unwrap_or(0) > 0);
    assert!(report.counters.get("calibrate.landmarks_matched").copied().unwrap_or(0) > 0);
    // The replayed trip spans carry the stage breakdown as children.
    let trip = report
        .spans
        .iter()
        .find(|s| s.name == "summarize_batch")
        .and_then(|s| s.children.iter().find(|c| c.name == "summarize_batch.trip"))
        .expect("trip span present");
    assert!(trip.children.iter().any(|c| c.name == "partition"), "{:?}", trip.children);
    // Exemplar replays surface as their own spans too.
    assert!(report.span_names().contains("exemplar.trip"), "{:?}", report.span_names());
    // Serialization is byte-stable and schema-valid.
    let json = report.to_json_pretty();
    assert_eq!(json, obs.report().to_json_pretty(), "same state renders to identical bytes");
    stmaker_obs::report::validate_json(&json).expect("report validates");
}

#[test]
fn logical_trace_is_byte_identical_across_thread_counts() {
    use stmaker_suite::Recorder;
    let h = Harness::new();
    let (train, test) = h.corpora(40, 6);
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let run = |threads: usize| {
        let obs = Recorder::enabled_with_journal(stmaker_obs::DEFAULT_JOURNAL_CAPACITY);
        let summarizer = Summarizer::train(
            &h.world.net,
            &h.world.registry,
            &train,
            features.clone(),
            weights.clone(),
            SummarizerConfig::default().with_threads(threads).with_recorder(obs.clone()),
        );
        let _ = summarizer.summarize_batch(&test);
        obs.chrome_trace(stmaker_obs::TraceClock::Logical)
    };
    let reference = run(1);
    let stats = stmaker_obs::validate_chrome_trace(&reference).expect("trace validates");
    for stage in ["calibrate", "partition", "select", "popular_route", "render", "train.shard"] {
        assert!(stats.names.contains(stage), "trace missing {stage}: {:?}", stats.names);
    }
    assert!(stats.names.contains("exemplar.trip"), "{:?}", stats.names);
    for threads in [2, 4] {
        assert_eq!(run(threads), reference, "threads={threads} changed the logical trace bytes");
    }
}

#[test]
fn obs_diff_flags_regressions_and_passes_identical_runs() {
    use stmaker_obs::{diff, DiffOptions, Severity};
    use stmaker_suite::Recorder;
    let h = Harness::new();
    let (train, test) = h.corpora(30, 4);
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let run = || {
        let obs = Recorder::enabled();
        let summarizer = Summarizer::train(
            &h.world.net,
            &h.world.registry,
            &train,
            features.clone(),
            weights.clone(),
            SummarizerConfig::default().with_threads(1).with_recorder(obs.clone()),
        );
        let _ = summarizer.summarize_batch(&test);
        obs.report()
    };
    let base = run();
    let new = run();
    // Identical pipelines: no structural findings, and with an absurdly
    // generous threshold no timing findings either.
    let opts = DiffOptions { threshold: 1e6, min_base_ms: 0.0 };
    assert_eq!(diff(&base, &new, &opts), vec![], "identical runs must diff clean");
    // Perturbation: dropping a counter is a hard regression.
    let mut broken = new.clone();
    broken.counters.remove("batch.summaries_ok");
    let findings = diff(&base, &broken, &opts);
    assert!(
        findings
            .iter()
            .any(|f| f.severity == Severity::Hard && f.message.contains("batch.summaries_ok")),
        "{findings:?}"
    );
}

#[test]
fn streaming_windows_key_on_stream_time_and_surface_in_report() {
    use stmaker_suite::{OutOfOrderPolicy, Recorder, StreamConfig, StreamingSummarizer};
    let h = Harness::new();
    let (train, test) = h.corpora(40, 4);
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let obs = Recorder::enabled();
    let summarizer = Summarizer::train(
        &h.world.net,
        &h.world.registry,
        &train,
        features,
        weights,
        SummarizerConfig::default().with_recorder(obs.clone()),
    );
    let cfg = StreamConfig {
        refresh_distance_m: 200.0,
        window_secs: 30,
        window_capacity: 4,
        out_of_order: OutOfOrderPolicy::Drop,
        ..StreamConfig::default()
    };
    let mut stream = StreamingSummarizer::try_new(&summarizer, cfg).expect("valid config");
    let trip = &test[0];
    let mut late = None;
    for p in trip.points() {
        let _ = stream.try_push(*p).expect("drop policy never errors");
        late = Some(*p);
    }
    // An out-of-order sample lands in the dropped counter of its window.
    if let Some(mut p) = late {
        p.t.0 -= 10_000;
        let _ = stream.try_push(p).expect("dropped, not an error");
    }
    let windows = stream.windows();
    assert!(!windows.is_empty() && windows.len() <= 4, "{windows:?}");
    let points: u64 = windows.iter().filter_map(|w| w.counters.get("stream.window.points")).sum();
    assert!(points > 0, "accepted samples counted: {windows:?}");
    // Window indices are data-derived and strictly increasing.
    for pair in windows.windows(2) {
        assert!(pair[0].index < pair[1].index, "{windows:?}");
    }
    let _ = stream.finish();
    let report = obs.report();
    assert_eq!(report.windows, windows, "finish publishes the retained windows");
    assert!(report.gauges.contains_key("stream.window.index"));
    // The whole round trip survives serialization.
    stmaker_obs::report::validate_json(&report.to_json_pretty()).expect("validates");
}

#[test]
fn stc_model_round_trip_is_byte_identical_across_thread_counts() {
    // The tentpole contract for the columnar model format: a model pushed
    // through STC1 encode → decode produces (a) the identical canonical
    // JSON and (b) byte-identical summaries to the JSON-path model at
    // every thread count — the binary encoding must be invisible to the
    // pipeline's output.
    use stmaker_io::{read_model_stc, read_trips_stc, write_model_stc, write_trips_stc};
    let h = Harness::new();
    let (train, test) = h.corpora(60, 12);
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let trained = Summarizer::train(
        &h.world.net,
        &h.world.registry,
        &train,
        features,
        weights,
        SummarizerConfig::default(),
    );
    let canonical = trained.model().to_json();

    let bytes = write_model_stc(trained.model());
    let revived_model = read_model_stc(&bytes).expect("own encoding decodes");
    assert_eq!(revived_model.to_json(), canonical, "STC round-trip must be JSON-canonical");
    // Double round-trip: the decoded model re-encodes to the same bytes.
    assert_eq!(write_model_stc(&revived_model), bytes, "STC encoding must be deterministic");

    // Trips too: the columnar container is exact, so summaries of decoded
    // trips match summaries of the originals byte for byte.
    let trip_bytes = write_trips_stc(&test);
    let revived_test = read_trips_stc(&trip_bytes).expect("own encoding decodes");
    assert_eq!(revived_test, test);

    for threads in [1usize, 2, 4] {
        let build = |model| {
            let features = standard_features();
            let weights = FeatureWeights::uniform(&features);
            Summarizer::try_from_model(
                &h.world.net,
                &h.world.registry,
                model,
                features,
                weights,
                SummarizerConfig::default().with_threads(threads),
            )
            .expect("registry matches")
        };
        let texts = |s: &Summarizer<'_>, trips: &[RawTrajectory]| -> Vec<Option<String>> {
            s.summarize_batch(trips).into_iter().map(|r| r.ok().map(|s| s.text)).collect()
        };
        let json_path = build(
            stmaker_suite::TrainedModel::from_json(&canonical).expect("canonical JSON parses"),
        );
        let stc_path = build(read_model_stc(&bytes).expect("decodes"));
        let reference = texts(&json_path, &test);
        assert!(reference.iter().flatten().count() >= 8, "most test trips must summarize");
        assert_eq!(
            texts(&stc_path, &test),
            reference,
            "STC-loaded model diverged at {threads} thread(s)"
        );
        assert_eq!(
            texts(&stc_path, &revived_test),
            reference,
            "STC-decoded trips diverged at {threads} thread(s)"
        );
    }
}

#[test]
fn model_hot_swap_never_serves_stale_cache_entries() {
    // The serving-layer staleness bug this PR headlines: `CachedRoutes`
    // memoizes popular routes / regular values (negative answers included)
    // as pure functions of ONE model. `swap_model` must install a fresh
    // cache in the same step, or post-swap summaries replay generation-A
    // answers. Byte-compare the post-swap batch against a cold-cache run
    // of the new model.
    let h = Harness::new();
    let (train_a, test) = h.corpora(60, 8);
    // A deliberately different corpus: sparse, other seed — so the two
    // models disagree and the test has teeth.
    let train_b: Vec<RawTrajectory> = TripGenerator::new(&h.world, TripConfig::default())
        .generate_corpus(8, 5005)
        .into_iter()
        .map(|t| t.raw)
        .collect();
    let train_model = |corpus: &[RawTrajectory]| {
        let features = standard_features();
        let weights = FeatureWeights::uniform(&features);
        Summarizer::train(
            &h.world.net,
            &h.world.registry,
            corpus,
            features,
            weights,
            SummarizerConfig::default(),
        )
        .into_model()
    };
    let model_a = train_model(&train_a);
    let model_b = train_model(&train_b);
    // Training is deterministic (byte-identical models), so training twice
    // is how we "clone" a model for the cold reference.
    let model_b_twin = train_model(&train_b);

    let build = |model| {
        let features = standard_features();
        let weights = FeatureWeights::uniform(&features);
        Summarizer::try_from_model(
            &h.world.net,
            &h.world.registry,
            model,
            features,
            weights,
            SummarizerConfig::default().with_threads(2).with_route_cache(64),
        )
        .expect("registry matches")
    };
    let texts = |results: Vec<Result<stmaker_suite::Summary, _>>| -> Vec<String> {
        results
            .into_iter()
            .map(|r| r.map(|s| s.text).unwrap_or_else(|e| format!("error: {e}")))
            .collect()
    };

    let mut summarizer = build(model_a);
    // Warm generation A's cache: two passes so the second run is answered
    // from memoized entries, including negative (None-route) answers.
    let warm_a = texts(summarizer.summarize_batch(&test));
    let warm_a2 = texts(summarizer.summarize_batch(&test));
    assert_eq!(warm_a, warm_a2, "cache warm-up must not change bytes");

    summarizer.swap_model(model_b).expect("same registry");
    let after_swap = texts(summarizer.summarize_batch(&test));

    let cold = build(model_b_twin);
    let cold_b = texts(cold.summarize_batch(&test));
    assert_eq!(after_swap, cold_b, "post-swap summaries must be byte-identical to a cold cache");
    assert_ne!(warm_a, cold_b, "models must disagree for the regression test to have teeth");

    // A model for a different registry is refused, not silently renamed.
    let mut bad = train_model(&train_b);
    bad.registry_len += 1;
    let err = summarizer.swap_model(bad).unwrap_err();
    assert!(err.to_string().contains("registry"), "{err}");
}
