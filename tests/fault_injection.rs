//! Fault-injection suite: corrupt valid trajectories in controlled ways and
//! assert the ingest-hardening contract — `Strict` rejects with a typed
//! error, `Repair`/`DropBad` always produce valid segments, and the full
//! pipeline (sanitize → summarize, streaming, mixed batches) never panics
//! no matter what arrives.

use stmaker_generator::{TripConfig, TripGenerator, World, WorldConfig};
use stmaker_geo::GeoPoint;
use stmaker_suite::{
    standard_features, FeatureWeights, OutOfOrderPolicy, StreamConfig, StreamingSummarizer,
    SummarizeError, Summarizer, SummarizerConfig,
};
use stmaker_trajectory::{
    sanitize, RawPoint, RawTrajectory, RawView, SanitizeConfig, SanitizePolicy, TrajectoryError,
};

/// One shared small world + trip corpus for all tests in this file.
struct Harness {
    world: World,
}

impl Harness {
    fn new() -> Self {
        Self { world: World::generate(WorldConfig::small(77)) }
    }

    fn corpus(&self, n: usize, seed: u64) -> Vec<Vec<RawPoint>> {
        let gen = TripGenerator::new(&self.world, TripConfig::default());
        gen.generate_corpus(n, seed).into_iter().map(|t| t.raw.points().to_vec()).collect()
    }

    fn summarizer<'w>(&'w self, train: &[RawTrajectory]) -> Summarizer<'w> {
        let features = standard_features();
        let weights = FeatureWeights::uniform(&features);
        Summarizer::train(
            &self.world.net,
            &self.world.registry,
            train,
            features,
            weights,
            SummarizerConfig::default(),
        )
    }
}

/// Deterministic pseudo-random stream (LCG) so every corruption variant is
/// reproducible without threading a seed through the test framework.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Corruption {
    InjectNan,
    OutOfRange,
    DuplicatePoint,
    ShuffleWindow,
    TeleportSpike,
}

const ALL_CORRUPTIONS: [Corruption; 5] = [
    Corruption::InjectNan,
    Corruption::OutOfRange,
    Corruption::DuplicatePoint,
    Corruption::ShuffleWindow,
    Corruption::TeleportSpike,
];

/// Applies one corruption to `pts` at an interior position chosen by `rng`.
fn corrupt(pts: &mut Vec<RawPoint>, c: Corruption, rng: &mut Lcg) {
    let i = 1 + rng.below(pts.len().saturating_sub(3));
    match c {
        Corruption::InjectNan => {
            // Struct literal: GeoPoint::new asserts, but serde and direct
            // field writes are how NaN actually arrives.
            pts[i].point = GeoPoint { lat: f64::NAN, lon: pts[i].point.lon };
        }
        Corruption::OutOfRange => {
            pts[i].point = GeoPoint { lat: 95.0, lon: pts[i].point.lon };
        }
        Corruption::DuplicatePoint => {
            let p = pts[i];
            pts.insert(i, p);
        }
        Corruption::ShuffleWindow => {
            // Reverse a 3-sample window: strictly increasing timestamps
            // become locally decreasing.
            if i + 2 < pts.len() {
                pts.swap(i, i + 2);
            }
        }
        Corruption::TeleportSpike => {
            // ~200 km jump and back within one sampling interval.
            pts[i].point = GeoPoint::new(41.5, 118.9);
        }
    }
}

/// Whether `pts` are strictly increasing in time (a `ShuffleWindow` on
/// plateaued timestamps would otherwise be a no-op corruption).
fn strictly_increasing(pts: &[RawPoint]) -> bool {
    pts.windows(2).all(|w| w[0].t < w[1].t)
}

#[test]
fn strict_rejects_every_corruption_class_with_typed_errors() {
    let h = Harness::new();
    let trips = h.corpus(10, 4242);
    let cfg = SanitizeConfig::with_policy(SanitizePolicy::Strict);
    let mut rng = Lcg(0xFA57);
    let mut checked = 0;
    for (ti, base) in trips.iter().enumerate() {
        if !strictly_increasing(base) || base.len() < 8 {
            continue;
        }
        for (ci, c) in ALL_CORRUPTIONS.iter().enumerate() {
            let mut pts = base.clone();
            corrupt(&mut pts, *c, &mut Lcg(rng.next() ^ (ti * 31 + ci) as u64));
            let err = sanitize(&pts, &cfg).expect_err("strict must reject the corruption");
            match c {
                Corruption::InjectNan => {
                    assert!(matches!(err, TrajectoryError::NonFiniteCoordinate { .. }), "{err:?}")
                }
                Corruption::OutOfRange => {
                    assert!(matches!(err, TrajectoryError::OutOfRangeCoordinate { .. }), "{err:?}")
                }
                Corruption::DuplicatePoint => {
                    assert!(matches!(err, TrajectoryError::DuplicateTimestamp { .. }), "{err:?}")
                }
                Corruption::ShuffleWindow => {
                    assert!(matches!(err, TrajectoryError::OutOfOrderTimestamp { .. }), "{err:?}")
                }
                Corruption::TeleportSpike => {
                    assert!(matches!(err, TrajectoryError::Teleport { .. }), "{err:?}")
                }
            }
            checked += 1;
        }
    }
    assert!(checked >= 25, "only {checked} strict rejections exercised");
}

#[test]
fn repair_round_trips_and_pipeline_never_panics_over_many_variants() {
    let h = Harness::new();
    let trips = h.corpus(30, 9091);
    let train: Vec<RawTrajectory> =
        h.corpus(40, 1001).into_iter().map(RawTrajectory::new).collect();
    let summarizer = h.summarizer(&train);

    let mut rng = Lcg(0xC0FFEE);
    let mut variants = 0;
    let mut summarized = 0;
    for round in 0..5 {
        for (ti, base) in trips.iter().enumerate() {
            if base.len() < 8 {
                continue;
            }
            let mut pts = base.clone();
            // 1–3 stacked corruptions per variant.
            let n_corruptions = 1 + (round + ti) % 3;
            for _ in 0..n_corruptions {
                let c = ALL_CORRUPTIONS[rng.below(ALL_CORRUPTIONS.len())];
                corrupt(&mut pts, c, &mut rng);
            }
            variants += 1;

            for policy in [SanitizePolicy::Repair, SanitizePolicy::DropBad] {
                let cleaned = sanitize(&pts, &SanitizeConfig::with_policy(policy))
                    .expect("lenient policies never error");
                // Round-trip: every surviving segment is a valid trajectory.
                for seg in &cleaned.segments {
                    RawView::try_new(seg).expect("sanitized segment must validate");
                }
                assert!(
                    cleaned.report.points_out <= cleaned.report.points_in,
                    "sanitization must never invent samples"
                );
                // End-to-end: summarizing the repaired trip must not panic —
                // failure is allowed (a heavily shredded trip may not
                // calibrate), but only as a typed error.
                if policy == SanitizePolicy::Repair {
                    if let Some(longest) = cleaned.longest() {
                        if summarizer.summarize_points(longest).is_ok() {
                            summarized += 1;
                        }
                    }
                }
            }
            // The un-sanitized corrupt buffer must also be a typed error (or
            // a fluke success), never a panic.
            let _ = summarizer.summarize_points(&pts);
        }
    }
    assert!(variants >= 100, "only {variants} corruption variants exercised");
    assert!(summarized >= variants / 2, "repair salvaged only {summarized}/{variants} variants");
}

#[test]
fn streaming_try_push_never_panics_and_counts_drops() {
    let h = Harness::new();
    let train: Vec<RawTrajectory> =
        h.corpus(40, 1001).into_iter().map(RawTrajectory::new).collect();
    let summarizer = h.summarizer(&train);
    let trips = h.corpus(4, 777);
    let base = trips.iter().max_by_key(|t| t.len()).expect("corpus is non-empty");

    let mut pts = base.clone();
    let mut rng = Lcg(0x5EED);
    for c in ALL_CORRUPTIONS {
        corrupt(&mut pts, c, &mut rng);
    }

    // Drop policy: every defective sample is shed and counted, the stream
    // survives to a finishable state.
    let mut stream = StreamingSummarizer::try_new(&summarizer, StreamConfig::default())
        .expect("default config validates");
    for p in &pts {
        let _ = stream.try_push(*p).expect("drop policy never errors");
    }
    let (late, invalid) = stream.dropped();
    assert!(invalid >= 1, "the injected NaN must be counted, got {invalid}");
    assert!(late >= 1, "the shuffled window must shed a late sample, got {late}");
    assert!(stream.len() < pts.len(), "defective samples must not be buffered");
    stream.finish().expect("the surviving prefix must summarize");

    // Reject policy: defects surface as typed errors and the stream remains
    // usable afterwards.
    let reject_cfg =
        StreamConfig { out_of_order: OutOfOrderPolicy::Reject, ..StreamConfig::default() };
    let mut stream =
        StreamingSummarizer::try_new(&summarizer, reject_cfg).expect("config validates");
    let mut errors = 0;
    for p in &pts {
        if stream.try_push(*p).is_err() {
            errors += 1;
        }
    }
    assert!(errors >= 2, "reject policy must surface the defects, got {errors}");
    assert_eq!(stream.dropped(), (0, 0), "reject mode reports, it does not silently drop");
    stream.finish().expect("the stream must stay usable after rejections");
}

#[test]
fn mixed_batch_is_deterministic_and_degrades_per_trip() {
    let h = Harness::new();
    let train: Vec<RawTrajectory> =
        h.corpus(40, 1001).into_iter().map(RawTrajectory::new).collect();
    let mut batch = h.corpus(8, 3131);
    // Corrupt every odd-indexed trip beyond repair-free summarization.
    let mut rng = Lcg(0xBA7C4);
    for (i, pts) in batch.iter_mut().enumerate() {
        if i % 2 == 1 {
            corrupt(pts, Corruption::InjectNan, &mut rng);
        }
    }
    batch.push(Vec::new()); // empty buffer: TooFewPoints
    batch.push(batch[0][..1].to_vec()); // single sample: TooFewPoints

    let run = |threads: usize| -> Vec<Result<String, String>> {
        let features = standard_features();
        let weights = FeatureWeights::uniform(&features);
        let summarizer = Summarizer::train(
            &h.world.net,
            &h.world.registry,
            &train,
            features,
            weights,
            SummarizerConfig::default().with_threads(threads),
        );
        summarizer
            .summarize_batch_points(&batch)
            .into_iter()
            .map(|r| r.map(|s| s.text).map_err(|e| e.to_string()))
            .collect()
    };

    let single = run(1);
    assert_eq!(single.len(), batch.len());
    for (i, r) in single.iter().enumerate() {
        if i % 2 == 1 && i < batch.len() - 2 {
            let e = r.as_ref().expect_err("corrupt trips must fail");
            assert!(e.contains("invalid trajectory input"), "{e}");
        }
    }
    // The two trailing degenerate buffers are Input errors, not panics.
    for r in &single[batch.len() - 2..] {
        assert!(r.as_ref().expect_err("degenerate buffer").contains("at least two"));
    }
    // PR 3's byte-identity contract holds for the fallible batch path too.
    for threads in [2, 4] {
        assert_eq!(run(threads), single, "results diverged at {threads} threads");
    }
}

#[test]
fn summarize_points_is_fallible_not_panicking() {
    let h = Harness::new();
    let train: Vec<RawTrajectory> =
        h.corpus(40, 1001).into_iter().map(RawTrajectory::new).collect();
    let summarizer = h.summarizer(&train);

    let err = summarizer.summarize_points(&[]).expect_err("empty buffer");
    assert!(matches!(err, SummarizeError::Input(TrajectoryError::TooFewPoints { got: 0 })));

    let mut pts = h.corpus(1, 55).remove(0);
    pts[2].point = GeoPoint { lat: f64::INFINITY, lon: pts[2].point.lon };
    let err = summarizer.summarize_points(&pts).expect_err("inf coordinate");
    assert!(matches!(
        err,
        SummarizeError::Input(TrajectoryError::NonFiniteCoordinate { index: 2 })
    ));
}
