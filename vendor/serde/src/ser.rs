//! Serialization: the [`Serialize`] / [`Serializer`] traits and impls for
//! the std types this workspace serializes.

use crate::{Error, Value};
use std::collections::{BTreeMap, HashMap};

/// A type that can render itself into the [`Value`] data model through a
/// [`Serializer`].
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A sink for serialized values.
///
/// Unlike upstream serde this is value-based rather than streaming: a
/// serializer consumes one finished [`Value`]. That is exactly enough for a
/// JSON-only workspace and keeps custom `#[serde(with = ...)]` adapters
/// (`collect_seq` et al.) working unchanged.
pub trait Serializer: Sized {
    /// Successful output.
    type Ok;
    /// Failure type; must absorb the stub's concrete [`Error`].
    type Error: From<Error>;

    /// Consumes one finished value.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes each item of `iter` and consumes the sequence.
    fn collect_seq<I>(self, iter: I) -> Result<Self::Ok, Self::Error>
    where
        I: IntoIterator,
        I::Item: Serialize,
    {
        let mut items = Vec::new();
        for item in iter {
            items.push(to_value(&item)?);
        }
        self.serialize_value(Value::Seq(items))
    }

    /// Serializes each `(key, value)` pair and consumes the map. Keys must
    /// serialize to strings or integers (stringified), as in JSON.
    fn collect_map<K, V, I>(self, iter: I) -> Result<Self::Ok, Self::Error>
    where
        K: Serialize,
        V: Serialize,
        I: IntoIterator<Item = (K, V)>,
    {
        let mut entries = Vec::new();
        for (key, value) in iter {
            entries.push((key_to_string(&to_value(&key)?)?, to_value(&value)?));
        }
        self.serialize_value(Value::Map(entries))
    }
}

/// The canonical serializer: yields the [`Value`] itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_value(self, value: Value) -> Result<Value, Error> {
        Ok(value)
    }
}

/// Serializes any value into the data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

/// JSON object keys must be strings; integers stringify, everything else is
/// rejected (tuple-keyed maps go through an explicit adapter instead).
fn key_to_string(key: &Value) -> Result<String, Error> {
    match key {
        Value::Str(s) => Ok(s.clone()),
        Value::I64(v) => Ok(v.to_string()),
        Value::U64(v) => Ok(v.to_string()),
        other => {
            Err(Error::msg(format!("map key must be a string or integer, got {}", other.kind())))
        }
    }
}

macro_rules! impl_serialize_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::I64(i64::from(*self)))
            }
        }
    )*};
}

impl_serialize_signed!(i8, i16, i32, i64);

macro_rules! impl_serialize_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::U64(*self as u64))
            }
        }
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::I64(*self as i64))
    }
}

macro_rules! impl_serialize_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = f64::from(*self);
                // JSON has no NaN/Infinity; upstream serde_json maps
                // non-finite floats to null, and we match it.
                let value = if v.is_finite() { Value::F64(v) } else { Value::Null };
                serializer.serialize_value(value)
            }
        }
    )*};
}

impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_owned()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(inner) => inner.serialize(serializer),
            None => serializer.serialize_value(Value::Null),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![$(to_value(&self.$idx)?),+];
                serializer.serialize_value(Value::Seq(items))
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Hash iteration order is arbitrary; sort for deterministic output
        // (the workspace's model files are diffed byte-for-byte).
        let mut entries = Vec::with_capacity(self.len());
        for (key, value) in self {
            entries.push((key_to_string(&to_value(key)?)?, to_value(value)?));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        serializer.serialize_value(Value::Map(entries))
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_map(self.iter())
    }
}
