//! The single concrete error type shared by serialization, deserialization,
//! and the JSON front-end.

use std::fmt;

/// A (de)serialization failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error from any message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }

    /// A required struct field was absent.
    pub fn missing_field(type_name: &str, field: &str) -> Self {
        Error::msg(format!("missing field `{field}` while deserializing {type_name}"))
    }

    /// The value had the wrong JSON kind.
    pub fn invalid_type(expected: &str, got: &str) -> Self {
        Error::msg(format!("invalid type: expected {expected}, got {got}"))
    }

    /// Prefixes the message with a location (field / variant path).
    pub fn context(mut self, location: &str) -> Self {
        self.message = format!("{location}: {}", self.message);
        self
    }

    /// The message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}
