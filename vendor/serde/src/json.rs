//! JSON text encoding/decoding for [`Value`].
//!
//! Lives here (rather than in the `serde_json` façade) so `Value` can
//! implement `Display`. Number parsing uses Rust's correctly-rounded float
//! parser and printing uses the shortest round-trip formatting, which is
//! what the workspace's `float_roundtrip` requirement means: byte-stable
//! model files that reparse to bit-identical floats.

use crate::{Error, Value};
use std::fmt::Write as _;

/// Maximum nesting depth accepted by the parser (stack-overflow guard).
const MAX_DEPTH: usize = 128;

/// Renders a value as compact JSON.
pub fn to_json_compact(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Renders a value as 2-space-indented JSON.
pub fn to_json_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => write_f64(out, *v),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Infinity; mirror upstream serde_json's `null`.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1.0e15 {
        // Keep integral floats visibly floats ("1.0", not "1") so the file
        // format is stable against int/float reinterpretation.
        let _ = write!(out, "{v:.1}");
    } else {
        // Rust's shortest round-trip float formatting.
        let _ = write!(out, "{v}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document (surrounding whitespace allowed, trailing
/// garbage rejected).
pub fn from_json(text: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.fail("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn fail(&self, message: &str) -> Error {
        Error::msg(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.fail("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.fail(&format!("unexpected character `{}`", c as char))),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.fail("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.fail("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.fail("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                Some(_) => return Err(self.fail("raw control character in string")),
                None => return Err(self.fail("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = self.peek().ok_or_else(|| self.fail("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'u' => {
                let high = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&high) {
                    // Surrogate pair: expect \uXXXX low half.
                    if !(self.eat(b'\\').is_ok() && self.eat(b'u').is_ok()) {
                        return Err(self.fail("unpaired surrogate"));
                    }
                    let low = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(self.fail("invalid low surrogate"));
                    }
                    0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                } else {
                    high
                };
                out.push(char::from_u32(code).ok_or_else(|| self.fail("invalid unicode escape"))?);
            }
            _ => return Err(self.fail("unknown escape sequence")),
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.fail("truncated \\u escape"))?;
            self.pos += 1;
            code = code * 16
                + match c {
                    b'0'..=b'9' => u32::from(c - b'0'),
                    b'a'..=b'f' => u32::from(c - b'a' + 10),
                    b'A'..=b'F' => u32::from(c - b'A' + 10),
                    _ => return Err(self.fail("bad hex digit in \\u escape")),
                };
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        // Rust's `f64` parser is correctly rounded, giving round-trip-exact
        // floats (the `float_roundtrip` contract).
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Value::F64(v)),
            _ => Err(self.fail(&format!("invalid number `{text}`"))),
        }
    }
}
