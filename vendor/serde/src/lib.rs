//! Offline std-only stub of the `serde` API surface this workspace uses.
//!
//! The build environment has no crates.io access, so `serde` resolves to
//! this path crate. It keeps upstream's trait names and signatures
//! (`Serialize`, `Deserialize`, `Serializer`, `Deserializer`, the
//! `ser`/`de` modules, and the derive macros re-exported under the
//! `derive` feature) but routes everything through one concrete JSON-shaped
//! [`Value`] data model — exactly enough for this repo's derives,
//! `#[serde(with = ...)]` adapters, and `serde_json` façade.

#![forbid(unsafe_code)]

mod error;
#[doc(hidden)]
pub mod json;
mod value;

#[path = "de.rs"]
mod de_impl;
#[path = "ser.rs"]
mod ser_impl;

pub use de_impl::{from_value, Deserialize, DeserializeOwned, Deserializer, ValueDeserializer};
pub use error::Error;
pub use ser_impl::{to_value, Serialize, Serializer, ValueSerializer};
pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Mirrors upstream's `serde::ser` module path.
pub mod ser {
    pub use crate::ser_impl::{Serialize, Serializer};
    pub use crate::Error;
}

/// Mirrors upstream's `serde::de` module path.
pub mod de {
    pub use crate::de_impl::{Deserialize, DeserializeOwned, Deserializer};
    pub use crate::Error;
}

/// Support code for the derive macros. Not a public API.
#[doc(hidden)]
pub mod __private {
    pub use crate::{from_value, to_value, Error, Value, ValueDeserializer, ValueSerializer};

    /// Removes and returns the entry for `key`, if present.
    pub fn take_entry(map: &mut Vec<(String, Value)>, key: &str) -> Option<Value> {
        let index = map.iter().position(|(k, _)| k == key)?;
        Some(map.remove(index).1)
    }

    /// Asserts the value is an object and yields its entries.
    pub fn expect_map(value: Value, type_name: &str) -> Result<Vec<(String, Value)>, Error> {
        match value {
            Value::Map(entries) => Ok(entries),
            other => {
                Err(Error::msg(format!("expected object for {type_name}, got {}", other.kind())))
            }
        }
    }

    /// Asserts the value is an array of exactly `len` items.
    pub fn expect_seq(value: Value, len: usize, type_name: &str) -> Result<Vec<Value>, Error> {
        match value {
            Value::Seq(items) if items.len() == len => Ok(items),
            Value::Seq(items) => Err(Error::msg(format!(
                "expected array of {len} for {type_name}, got {}",
                items.len()
            ))),
            other => {
                Err(Error::msg(format!("expected array for {type_name}, got {}", other.kind())))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(to_value(&42u32), Ok(Value::U64(42)));
        assert_eq!(to_value(&-7i64), Ok(Value::I64(-7)));
        assert_eq!(to_value(&1.5f64), Ok(Value::F64(1.5)));
        assert_eq!(to_value(&f64::NAN), Ok(Value::Null));
        assert_eq!(from_value::<u32>(Value::I64(5)), Ok(5));
        assert_eq!(from_value::<f64>(Value::I64(5)), Ok(5.0));
        assert!(from_value::<u8>(Value::I64(300)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let value = to_value(&v).unwrap();
        let back: Vec<(u32, f64)> = from_value(value).unwrap();
        assert_eq!(v, back);

        let mut map = std::collections::HashMap::new();
        map.insert("b".to_string(), 2i64);
        map.insert("a".to_string(), 1i64);
        let value = to_value(&map).unwrap();
        // HashMap output is key-sorted for determinism.
        assert_eq!(
            value,
            Value::Map(vec![("a".into(), Value::I64(1)), ("b".into(), Value::I64(2))])
        );
        let back: std::collections::HashMap<String, i64> = from_value(value).unwrap();
        assert_eq!(map, back);
    }

    #[test]
    fn json_text_round_trips() {
        let value = Value::Map(vec![
            ("name".into(), Value::Str("a \"quoted\" π".into())),
            ("xs".into(), Value::Seq(vec![Value::F64(0.1), Value::I64(-3)])),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        let text = json::to_json_compact(&value);
        assert_eq!(json::from_json(&text).unwrap(), value);
        let pretty = json::to_json_pretty(&value);
        assert_eq!(json::from_json(&pretty).unwrap(), value);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &x in &[0.1, 1.0 / 3.0, 6378137.0, 1e-12, 2.2250738585072014e-308] {
            let text = json::to_json_compact(&Value::F64(x));
            match json::from_json(&text).unwrap() {
                Value::F64(y) => assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}"),
                Value::I64(y) => assert_eq!(x, y as f64),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(json::from_json("{\"a\": }").is_err());
        assert!(json::from_json("[1, 2,]").is_err());
        assert!(json::from_json("\"unterminated").is_err());
        assert!(json::from_json("1 2").is_err());
        assert!(json::from_json("nul").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = json::from_json("\"\\u00e9 \\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Value::Str("\u{e9} \u{1F600}".to_string()));
        assert!(json::from_json("\"\\ud83d oops\"").is_err());
    }
}
