//! Deserialization: the [`Deserialize`] / [`Deserializer`] traits and impls
//! for the std types this workspace deserializes.

use crate::{Error, Value};
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasher, Hash};

/// A type reconstructible from the [`Value`] data model.
pub trait Deserialize<'de>: Sized {
    /// Deserializes from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A type deserializable without borrowing from the input (all of this
/// stub's impls are owned, so the blanket impl covers everything).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A source of one [`Value`].
pub trait Deserializer<'de>: Sized {
    /// Failure type; must absorb the stub's concrete [`Error`].
    type Error: From<Error>;

    /// Yields the input as a finished value.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// The canonical deserializer: wraps an already-parsed [`Value`].
#[derive(Debug, Clone)]
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;

    fn take_value(self) -> Result<Value, Error> {
        Ok(self.0)
    }
}

/// Reconstructs any deserializable type from a value.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::deserialize(ValueDeserializer(value))
}

macro_rules! impl_deserialize_int {
    ($($ty:ty),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.take_value()?;
                let out = match value {
                    Value::I64(v) => <$ty>::try_from(v).ok(),
                    Value::U64(v) => <$ty>::try_from(v).ok(),
                    // Integral floats appear when a float field round-trips
                    // through JSON's single number type.
                    Value::F64(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => {
                        <$ty>::try_from(v as i64).ok()
                    }
                    other => {
                        return Err(Error::invalid_type(stringify!($ty), other.kind()).into())
                    }
                };
                out.ok_or_else(|| Error::msg(concat!("integer out of range for ", stringify!($ty))).into())
            }
        }
    )*};
}

impl_deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_float {
    ($($ty:ty),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.take_value()?;
                match value.as_f64() {
                    Some(v) => Ok(v as $ty),
                    None => Err(Error::invalid_type("number", value.kind()).into()),
                }
            }
        }
    )*};
}

impl_deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        value.as_bool().ok_or_else(|| Error::invalid_type("bool", value.kind()).into())
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(Error::invalid_type("string", other.kind()).into()),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Str(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().ok_or_else(|| Error::msg("empty char"))?)
            }
            other => Err(Error::invalid_type("single-char string", other.kind()).into()),
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.take_value()
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            other => Ok(Some(from_value(other)?)),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Seq(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(from_value(item)?);
                }
                Ok(out)
            }
            other => Err(Error::invalid_type("array", other.kind()).into()),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Box::new(from_value(deserializer.take_value()?)?))
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:expr => $($name:ident),+))*) => {$(
        impl<'de, $($name: DeserializeOwned),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(deserializer: __D) -> Result<Self, __D::Error> {
                match deserializer.take_value()? {
                    Value::Seq(items) if items.len() == $len => {
                        let mut iter = items.into_iter();
                        Ok(($(
                            from_value::<$name>(
                                iter.next().ok_or_else(|| Error::msg("tuple too short"))?,
                            )?,
                        )+))
                    }
                    Value::Seq(items) => Err(Error::msg(format!(
                        "expected array of length {}, got {}", $len, items.len()
                    )).into()),
                    other => Err(Error::invalid_type("array", other.kind()).into()),
                }
            }
        }
    )*};
}

impl_deserialize_tuple! {
    (1 => A)
    (2 => A, B)
    (3 => A, B, C)
    (4 => A, B, C, D)
}

/// Map keys arrive as JSON strings; integer-keyed maps parse them back.
trait FromMapKey: Sized {
    fn from_map_key(key: &str) -> Result<Self, Error>;
}

impl FromMapKey for String {
    fn from_map_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_from_map_key_int {
    ($($ty:ty),*) => {$(
        impl FromMapKey for $ty {
            fn from_map_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| {
                    Error::msg(format!(concat!("bad ", stringify!($ty), " map key `{}`"), key))
                })
            }
        }
    )*};
}

impl_from_map_key_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: DeserializeOwned + FromMapKey + Eq + Hash,
    V: DeserializeOwned,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Map(entries) => {
                let mut out = HashMap::with_capacity_and_hasher(entries.len(), H::default());
                for (key, value) in entries {
                    out.insert(K::from_map_key(&key)?, from_value(value)?);
                }
                Ok(out)
            }
            other => Err(Error::invalid_type("object", other.kind()).into()),
        }
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: DeserializeOwned + FromMapKey + Ord,
    V: DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Map(entries) => {
                let mut out = BTreeMap::new();
                for (key, value) in entries {
                    out.insert(K::from_map_key(&key)?, from_value(value)?);
                }
                Ok(out)
            }
            other => Err(Error::invalid_type("object", other.kind()).into()),
        }
    }
}
