//! The self-describing data model every (de)serialization round-trips
//! through. JSON-shaped on purpose: JSON is the only format this workspace
//! uses, and a single concrete model keeps the stub small and predictable.

use std::fmt;
use std::ops::Index;

/// A dynamically typed value (the JSON data model).
///
/// Maps preserve insertion order as a `Vec` of pairs; producers that need
/// canonical output (model files diffed byte-for-byte) sort before writing.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Finite floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, insertion-ordered.
    Map(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object member lookup; `None` for non-objects and absent keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup; `None` for non-arrays and out-of-range indexes.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Seq(items) => items.get(index),
            _ => None,
        }
    }

    /// The string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64` if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The numeric value as `i64` if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The numeric value as `u64` if it fits.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(v) => u64::try_from(v).ok(),
            Value::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The entries if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Human label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_value_eq_int {
    ($($ty:ty),*) => {$(
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                match i64::try_from(*other) {
                    Ok(v) => self.as_i64() == Some(v),
                    Err(_) => self.as_u64() == u64::try_from(*other).ok(),
                }
            }
        }

        impl PartialEq<Value> for $ty {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_value_eq_float {
    ($($ty:ty),*) => {$(
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                // Only float values compare to floats (serde_json semantics).
                matches!(*self, Value::F64(v) if v == f64::from(*other))
            }
        }

        impl PartialEq<Value> for $ty {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_float!(f32, f64);

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering (shared with `serde_json::to_string`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::json::to_json_compact(self))
    }
}
