//! Offline stub of `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Hand-rolled over `proc_macro::TokenStream` (the build environment has no
//! crates.io access, so no syn/quote). Supports exactly the shapes this
//! workspace derives:
//!
//! * named-field structs, with `#[serde(default)]` and
//!   `#[serde(with = "path")]` field attributes;
//! * tuple structs (single-field newtypes serialize transparently);
//! * unit structs;
//! * enums with unit, tuple, and struct variants, using serde_json's
//!   externally-tagged representation (`"Variant"`,
//!   `{"Variant": value}`, `{"Variant": {..}}`).
//!
//! Generics are intentionally unsupported (nothing in the workspace derives
//! a generic type); the macro emits a compile error rather than guessing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let source = match parse_input(input) {
        Ok(parsed) => match mode {
            Mode::Serialize => generate_serialize(&parsed),
            Mode::Deserialize => generate_deserialize(&parsed),
        },
        Err(message) => format!("compile_error!({message:?});"),
    };
    source.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"serde_derive stub produced invalid code: {e}\");")
            .parse()
            .expect("compile_error literal parses")
    })
}

struct Input {
    name: String,
    data: Data,
}

enum Data {
    /// Named-field struct.
    Struct(Vec<Field>),
    /// Tuple struct with N fields.
    TupleStruct(usize),
    /// Unit struct.
    UnitStruct,
    /// Enum.
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// `#[serde(default)]`
    default: bool,
    /// `#[serde(with = "path")]`
    with: Option<String>,
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde_derive stub: generic type `{name}` is not supported"));
    }

    match (kind.as_str(), tokens.next()) {
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => {
            Ok(Input { name, data: Data::UnitStruct })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Input { name, data: Data::Struct(parse_named_fields(g.stream())?) })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Input { name, data: Data::TupleStruct(count_tuple_fields(g.stream())) })
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Input { name, data: Data::Enum(parse_variants(g.stream())?) })
        }
        (kind, other) => Err(format!("unsupported item `{kind}` body {other:?}")),
    }
}

/// Parses `#[serde(...)]` field attributes out of an attribute group.
fn parse_serde_attr(group: TokenStream, field: &mut Field) -> Result<(), String> {
    let mut tokens = group.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return Ok(()), // doc comment or some other attribute
    }
    let Some(TokenTree::Group(args)) = tokens.next() else {
        return Ok(());
    };
    let mut arg_tokens = args.stream().into_iter();
    while let Some(token) = arg_tokens.next() {
        match token {
            TokenTree::Ident(i) if i.to_string() == "default" => field.default = true,
            TokenTree::Ident(i) if i.to_string() == "with" => {
                match (arg_tokens.next(), arg_tokens.next()) {
                    (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                        if eq.as_char() == '=' =>
                    {
                        let raw = lit.to_string();
                        field.with = Some(raw.trim_matches('"').to_string());
                    }
                    _ => return Err("malformed #[serde(with = \"...\")]".to_string()),
                }
            }
            TokenTree::Punct(_) => {}
            other => {
                return Err(format!("serde_derive stub: unsupported serde attribute `{other}`"))
            }
        }
    }
    Ok(())
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        let mut field = Field { name: String::new(), default: false, with: None };
        // Attributes.
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            match tokens.next() {
                Some(TokenTree::Group(g)) => parse_serde_attr(g.stream(), &mut field)?,
                other => return Err(format!("bad attribute {other:?}")),
            }
        }
        // Visibility.
        if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            tokens.next();
            if matches!(
                tokens.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                tokens.next();
            }
        }
        // Field name.
        match tokens.next() {
            Some(TokenTree::Ident(i)) => field.name = i.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        }
        // `:` then the type; skip to the next top-level comma, counting
        // angle-bracket depth ((), [], {} arrive as opaque groups).
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:`, got {other:?}")),
        }
        let mut angle_depth = 0i32;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                Some(_) => {
                    tokens.next();
                }
                None => break,
            }
        }
        fields.push(field);
    }
    Ok(fields)
}

/// Counts tuple-struct fields: top-level commas + 1 (trailing comma aware).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    let mut pending = false;
    for token in stream {
        saw_tokens = true;
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                pending = false;
            }
            _ => pending = true,
        }
    }
    if !saw_tokens {
        0
    } else if pending {
        count + 1
    } else {
        count
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Attributes (doc comments on variants).
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            tokens.next();
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                tokens.next();
                VariantShape::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                tokens.next();
                VariantShape::Tuple(count)
            }
            _ => VariantShape::Unit,
        };
        // Skip to next comma (also skips `= discriminant`).
        while let Some(token) = tokens.next() {
            if matches!(&token, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

/// `a, b, c` style generated identifiers for tuple fields.
fn binding_names(count: usize) -> Vec<String> {
    (0..count).map(|i| format!("__f{i}")).collect()
}

fn serialize_field_expr(field: &Field, access: &str) -> String {
    match &field.with {
        Some(path) => format!("{path}::serialize({access}, serde::__private::ValueSerializer)?"),
        None => format!("serde::__private::to_value({access})?"),
    }
}

fn deserialize_field_expr(field: &Field, type_name: &str) -> String {
    let from = match &field.with {
        Some(path) => format!(
            "{path}::deserialize(serde::__private::ValueDeserializer(__v))\
             .map_err(serde::__private::Error::from)"
        ),
        None => "serde::__private::from_value(__v)".to_string(),
    };
    let missing = if field.default {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return Err(serde::__private::Error::missing_field(\
             \"{type_name}\", \"{name}\").into())",
            name = field.name
        )
    };
    format!(
        "match serde::__private::take_entry(&mut __map, \"{name}\") {{\
         Some(__v) => {from}.map_err(|e| e.context(\"{type_name}.{name}\"))?, \
         None => {missing}, }}",
        name = field.name
    )
}

fn generate_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::UnitStruct => "serializer.serialize_value(serde::__private::Value::Null)".to_string(),
        Data::TupleStruct(1) => {
            // Newtype structs serialize transparently, like upstream.
            "let __v = serde::__private::to_value(&self.0)?;\
             serializer.serialize_value(__v)"
                .to_string()
        }
        Data::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("serde::__private::to_value(&self.{i})?")).collect();
            format!(
                "serializer.serialize_value(serde::__private::Value::Seq(vec![{}]))",
                items.join(", ")
            )
        }
        Data::Struct(fields) => {
            let mut out =
                String::from("let mut __map: Vec<(String, serde::__private::Value)> = Vec::new();");
            for field in fields {
                let expr = serialize_field_expr(field, &format!("&self.{}", field.name));
                out.push_str(&format!(
                    "__map.push((\"{name}\".to_string(), {expr}));",
                    name = field.name
                ));
            }
            out.push_str("serializer.serialize_value(serde::__private::Value::Map(__map))");
            out
        }
        Data::Enum(variants) => {
            let mut arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serde::__private::Value::Str(\"{vname}\".to_string()),"
                    )),
                    VariantShape::Tuple(count) => {
                        let bindings = binding_names(*count);
                        let payload = if *count == 1 {
                            format!("serde::__private::to_value({})?", bindings[0])
                        } else {
                            let items: Vec<String> = bindings
                                .iter()
                                .map(|b| format!("serde::__private::to_value({b})?"))
                                .collect();
                            format!("serde::__private::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => serde::__private::Value::Map(\
                             vec![(\"{vname}\".to_string(), {payload})]),",
                            binds = bindings.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from(
                            "let mut __fields: Vec<(String, serde::__private::Value)> = Vec::new();",
                        );
                        for field in fields {
                            let expr = serialize_field_expr(field, &field.name.clone());
                            inner.push_str(&format!(
                                "__fields.push((\"{fname}\".to_string(), {expr}));",
                                fname = field.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{ {inner} \
                             serde::__private::Value::Map(vec![(\"{vname}\".to_string(), \
                             serde::__private::Value::Map(__fields))]) }},",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "let __value = match self {{ {arms} }};\
                 serializer.serialize_value(__value)"
            )
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\
             fn serialize<__S: serde::Serializer>(&self, serializer: __S)\
                 -> ::std::result::Result<__S::Ok, __S::Error> {{ {body} }}\
         }}"
    )
}

fn generate_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::UnitStruct => format!(
            "match deserializer.take_value()? {{\
                 serde::__private::Value::Null => Ok({name}),\
                 __other => Err(serde::__private::Error::invalid_type(\
                     \"null\", __other.kind()).into()),\
             }}"
        ),
        Data::TupleStruct(1) => {
            format!("Ok({name}(serde::__private::from_value(deserializer.take_value()?)?))")
        }
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|_| {
                    "serde::__private::from_value(\
                     __items.next().expect(\"length checked\"))?"
                        .to_string()
                })
                .collect();
            format!(
                "let __seq = serde::__private::expect_seq(\
                     deserializer.take_value()?, {n}, \"{name}\")?;\
                 let mut __items = __seq.into_iter();\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Data::Struct(fields) => {
            let mut out = format!(
                "let mut __map = serde::__private::expect_map(\
                     deserializer.take_value()?, \"{name}\")?;"
            );
            out.push_str(&format!("Ok({name} {{"));
            for field in fields {
                out.push_str(&format!(
                    "{fname}: {expr},",
                    fname = field.name,
                    expr = deserialize_field_expr(field, name)
                ));
            }
            out.push_str("})");
            out
        }
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),"))
                    }
                    VariantShape::Tuple(1) => keyed_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(\
                         serde::__private::from_value(__payload)?)),"
                    )),
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|_| {
                                "serde::__private::from_value(\
                                 __items.next().expect(\"length checked\"))?"
                                    .to_string()
                            })
                            .collect();
                        keyed_arms.push_str(&format!(
                            "\"{vname}\" => {{\
                                 let __seq = serde::__private::expect_seq(\
                                     __payload, {n}, \"{name}::{vname}\")?;\
                                 let mut __items = __seq.into_iter();\
                                 Ok({name}::{vname}({}))\
                             }},",
                            items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let mut inner = format!(
                            "let mut __map = serde::__private::expect_map(\
                                 __payload, \"{name}::{vname}\")?;"
                        );
                        inner.push_str(&format!("Ok({name}::{vname} {{"));
                        for field in fields {
                            inner.push_str(&format!(
                                "{fname}: {expr},",
                                fname = field.name,
                                expr = deserialize_field_expr(field, &format!("{name}::{vname}"))
                            ));
                        }
                        inner.push_str("})");
                        keyed_arms.push_str(&format!("\"{vname}\" => {{ {inner} }},"));
                    }
                }
            }
            format!(
                "match deserializer.take_value()? {{\
                     serde::__private::Value::Str(__s) => match __s.as_str() {{\
                         {unit_arms}\
                         __other => Err(serde::__private::Error::msg(format!(\
                             \"unknown variant `{{__other}}` of {name}\")).into()),\
                     }},\
                     serde::__private::Value::Map(__entries) => {{\
                         let mut __iter = __entries.into_iter();\
                         let (__tag, __payload) = match (__iter.next(), __iter.next()) {{\
                             (Some(__entry), None) => __entry,\
                             _ => return Err(serde::__private::Error::msg(\
                                 \"expected single-key variant object for {name}\").into()),\
                         }};\
                         match __tag.as_str() {{\
                             {keyed_arms}\
                             __other => Err(serde::__private::Error::msg(format!(\
                                 \"unknown variant `{{__other}}` of {name}\")).into()),\
                         }}\
                     }},\
                     __other => Err(serde::__private::Error::invalid_type(\
                         \"string or single-key object\", __other.kind()).into()),\
                 }}"
            )
        }
    };
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\
             fn deserialize<__D: serde::Deserializer<'de>>(deserializer: __D)\
                 -> ::std::result::Result<Self, __D::Error> {{ {body} }}\
         }}"
    )
}
