//! Offline std-only stub of the `serde_json` API surface this workspace
//! uses: `Value`, `to_string`, `to_string_pretty`, `from_str`, `to_value`,
//! `from_value`, `Error`, and the `json!` macro.
//!
//! The JSON text encoding itself lives in the `serde` stub (shared with
//! `Value`'s `Display`); this crate is the façade that keeps call sites
//! source-compatible with upstream.

#![forbid(unsafe_code)]

use serde::json;
pub use serde::Value;
use serde::{DeserializeOwned, Serialize};
use std::fmt;

/// A JSON (de)serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(serde::Error);

impl Error {
    /// Builds an error from any message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error(serde::Error::msg(message))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(inner: serde::Error) -> Self {
        Error(inner)
    }
}

/// Serializes a value into the [`Value`] data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    serde::to_value(value).map_err(Error)
}

/// Reconstructs a typed value from the [`Value`] data model.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    serde::from_value(value).map_err(Error)
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(json::to_json_compact(&serde::to_value(value)?))
}

/// Serializes to 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(json::to_json_pretty(&serde::to_value(value)?))
}

/// Parses JSON text into a typed value.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    Ok(serde::from_value(json::from_json(text)?)?)
}

/// Builds a [`Value`] from JSON-looking syntax with expression
/// interpolation, like upstream's `json!`.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

/// Implementation detail of [`json!`] (a tt-muncher; call `json!` instead).
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // Arrays: delegate element collection to the @array muncher.
    ([]) => { $crate::Value::Seq(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Seq($crate::json_internal!(@array [] $($tt)+)) };

    // Objects: delegate entry collection to the @object muncher.
    ({}) => { $crate::Value::Map(::std::vec::Vec::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut __entries: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json_internal!(@object __entries () $($tt)+);
        $crate::Value::Map(__entries)
    }};

    // ---- @array: accumulate comma-separated elements -------------------
    // Last element (no trailing comma).
    (@array [$($done:expr),*] $($value:tt)+) => {
        $crate::json_internal!(@array_try [$($done),*] [] $($value)+)
    };

    // @array_try: peel tokens off until a top-level comma or exhaustion.
    (@array_try [$($done:expr),*] [$($cur:tt)+] , $($rest:tt)+) => {
        $crate::json_internal!(@array [$($done,)* $crate::json_internal!($($cur)+)] $($rest)+)
    };
    (@array_try [$($done:expr),*] [$($cur:tt)+] ,) => {
        ::std::vec![$($done,)* $crate::json_internal!($($cur)+)]
    };
    (@array_try [$($done:expr),*] [$($cur:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@array_try [$($done),*] [$($cur)* $next] $($rest)*)
    };
    (@array_try [$($done:expr),*] [$($cur:tt)+]) => {
        ::std::vec![$($done,)* $crate::json_internal!($($cur)+)]
    };

    // ---- @object: accumulate `"key": value` entries --------------------
    // Done.
    (@object $entries:ident ()) => {};
    // Key found: start collecting the value.
    (@object $entries:ident () $key:tt : $($rest:tt)+) => {
        $crate::json_internal!(@object_value $entries ($key) [] $($rest)+)
    };

    // @object_value: peel value tokens until a top-level comma/exhaustion.
    (@object_value $entries:ident ($key:tt) [$($cur:tt)+] , $($rest:tt)+) => {
        $entries.push(($crate::json_key!($key), $crate::json_internal!($($cur)+)));
        $crate::json_internal!(@object $entries () $($rest)+);
    };
    (@object_value $entries:ident ($key:tt) [$($cur:tt)+] ,) => {
        $entries.push(($crate::json_key!($key), $crate::json_internal!($($cur)+)));
    };
    (@object_value $entries:ident ($key:tt) [$($cur:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@object_value $entries ($key) [$($cur)* $next] $($rest)*)
    };
    (@object_value $entries:ident ($key:tt) [$($cur:tt)+]) => {
        $entries.push(($crate::json_key!($key), $crate::json_internal!($($cur)+)));
    };

    // ---- leaves --------------------------------------------------------
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ($other:expr) => {
        $crate::to_value(&$other).unwrap_or($crate::Value::Null)
    };
}

/// Implementation detail of [`json!`]: object keys.
#[doc(hidden)]
#[macro_export]
macro_rules! json_key {
    ($key:literal) => {
        ::std::string::ToString::to_string(&$key)
    };
    ($key:expr) => {
        ::std::string::ToString::to_string(&$key)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let samples = 7usize;
        let coords = vec![json!([1.0, 2.0]), json!([3.0, 4.5])];
        let v = json!({
            "type": "Feature",
            "geometry": { "type": "LineString", "coordinates": coords },
            "properties": {
                "samples": samples,
                "length_m": (120.0f64).round(),
                "nested": [1, "two", null, true, { "k": [] }],
            },
        });
        assert_eq!(v["type"].as_str(), Some("Feature"));
        assert_eq!(v["geometry"]["type"].as_str(), Some("LineString"));
        assert_eq!(v["geometry"]["coordinates"][1][1].as_f64(), Some(4.5));
        assert_eq!(v["properties"]["samples"].as_u64(), Some(7));
        assert_eq!(v["properties"]["length_m"].as_f64(), Some(120.0));
        assert!(v["properties"]["nested"][2].is_null());
        assert_eq!(v["properties"]["nested"][4]["k"], json!([]));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn text_round_trip() {
        let v = json!({"a": [1, 2.5, "x"], "b": {"c": null}});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn from_str_reports_errors() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Vec<f64>>("[1.0, \"two\"]").is_err());
    }
}
