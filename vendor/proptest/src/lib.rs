//! Offline std-only stub of the `proptest` API surface this workspace uses.
//!
//! Provides the `proptest!` macro, `prop_assert*` / `prop_assume!`,
//! `ProptestConfig::with_cases`, and the strategy combinators the repo's
//! property tests call: numeric ranges, tuples, `prop::collection::vec`,
//! `prop::sample::select`, `prop::option::of`, `Just`, and `prop_map`.
//!
//! Differences from upstream, on purpose:
//! * no shrinking — a failing case panics with the assertion message and
//!   the deterministic per-test seed, which is reproducible as-is;
//! * generation is driven by a fixed SplitMix64 stream seeded from the
//!   test's name, so runs are deterministic across machines.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name so every test has a stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            state ^= u64::from(byte);
            state = state.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index bound must be positive");
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map_fn`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, map_fn: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map_fn }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map_fn: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.map_fn)(self.inner.new_value(rng))
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_int_range {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + offset as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) * span) >> 64;
                (*self.start() as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let unit = rng.unit_f64();
                let sample = (self.start as f64
                    + (self.end as f64 - self.start as f64) * unit) as $ty;
                if sample >= self.end { self.start } else { sample }
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                (*self.start() as f64
                    + (*self.end() as f64 - *self.start() as f64) * unit) as $ty
            }
        }
    )*};
}

impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// String patterns as strategies, like upstream's regex support — but only
/// the sliver this workspace uses: `.{m,n}` (arbitrary text of bounded
/// length, biased toward ASCII with some unicode/control bytes mixed in)
/// and meta-free literal patterns. Anything else panics loudly rather than
/// silently generating the wrong distribution.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        if let Some(spec) = self.strip_prefix(".{").and_then(|s| s.strip_suffix('}')) {
            let (min, max) = spec
                .split_once(',')
                .and_then(|(a, b)| Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?)))
                .unwrap_or_else(|| panic!("unsupported string pattern `{self}`"));
            let len = min + rng.index(max - min + 1);
            let mut out = String::with_capacity(len);
            for _ in 0..len {
                let c = match rng.index(10) {
                    0 => char::from_u32(rng.next_u64() as u32 % 0x20).unwrap_or('\t'),
                    1 => {
                        // Arbitrary unicode scalar (retry past surrogates).
                        loop {
                            if let Some(c) = char::from_u32(rng.next_u64() as u32 % 0x11_0000) {
                                break c;
                            }
                        }
                    }
                    _ => char::from_u32(0x20 + rng.next_u64() as u32 % 0x5f).unwrap_or(' '),
                };
                out.push(c);
            }
            out
        } else if !self.contains(['.', '*', '+', '?', '[', '(', '{', '\\', '|', '^', '$']) {
            (*self).to_string()
        } else {
            panic!("unsupported string pattern `{self}` (stub supports `.{{m,n}}` and literals)");
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange { min: len, max: len }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange { min: range.start, max: range.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            SizeRange { min: *range.start(), max: *range.end() }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + rng.index(span.max(1));
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniformly selects one of `items`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select needs at least one item");
        Select { items }
    }

    /// Strategy returned by [`select`].
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.items[rng.index(self.items.len())].clone()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// `None` about a quarter of the time, `Some` of the inner strategy
    /// otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.index(4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a generated case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) {..} }`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; call that macro instead.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut __passed: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(20).max(100);
                while __passed < __config.cases {
                    assert!(
                        __attempts < __max_attempts,
                        "proptest {}: too many rejected cases ({} attempts, {} passed)",
                        stringify!($name), __attempts, __passed
                    );
                    __attempts += 1;
                    let ($($arg,)+) = (
                        $($crate::Strategy::new_value(&($strategy), &mut __rng),)+
                    );
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        Ok(()) => __passed += 1,
                        Err($crate::TestCaseError::Reject) => {}
                    }
                }
            }
        )*
    };
}

/// Asserts inside a property test (panics with the failing expression).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "prop_assert failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Skips the current generated case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        __proptest_impl, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// The `prop::` module alias used by upstream-style test code.
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0.5f64..1.0, n in 1usize..10) {
            prop_assert!((0.5..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_of_tuples(pairs in prop::collection::vec((0.0f64..1.0, 0usize..5), 1..8)) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 8);
            for (f, n) in pairs {
                prop_assert!((0.0..1.0).contains(&f) && n < 5);
            }
        }

        #[test]
        fn select_and_option(
            word in prop::sample::select(vec!["a", "b", "c"]),
            maybe in prop::option::of(0.0f64..100.0),
        ) {
            prop_assert!(["a", "b", "c"].contains(&word));
            if let Some(v) = maybe {
                prop_assert!((0.0..100.0).contains(&v));
            }
        }

        #[test]
        fn map_and_assume(n in (0u32..50).prop_map(|v| v * 2)) {
            prop_assume!(n != 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_cases_respected(_x in 0u8..10) {
            // Runs without exhausting the attempt budget.
        }
    }
}
