//! Offline std-only stub of the `criterion` API surface this workspace
//! uses: `Criterion`, benchmark groups, `Bencher::iter`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! No statistics machinery — each benchmark runs a short warm-up and a
//! fixed sample loop, then prints mean and best wall-clock time per
//! iteration. Good enough to regenerate relative timings offline; not a
//! replacement for upstream criterion's analysis.

#![forbid(unsafe_code)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { _criterion: self, name: name.to_string(), sample_size: 10 }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, mut routine: impl FnMut(&mut Bencher)) {
        run_benchmark(name, 10, &mut routine);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: impl FnMut(&mut Bencher),
    ) {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.label()), self.sample_size, &mut routine);
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.label()), self.sample_size, &mut |b| {
            routine(b, input)
        });
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{parameter}", function.into()) }
    }

    /// A parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { label: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { label: name }
    }
}

/// Times closures handed to it by a benchmark routine.
pub struct Bencher {
    samples: usize,
    /// Mean and best per-iteration time of the last `iter` call.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Times `routine`, recording mean and best time per iteration.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up, and a cheap calibration of how many iterations fit in a
        // reasonable sample (targets ~2ms per sample, capped).
        let warmup_start = Instant::now();
        black_box(routine());
        let once = warmup_start.elapsed();
        let per_sample =
            (Duration::from_millis(2).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u32;

        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        let mut iters = 0u128;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            total += elapsed;
            best = best.min(elapsed / per_sample);
            iters += u128::from(per_sample);
        }
        let mean = if iters == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos((total.as_nanos() / iters) as u64)
        };
        self.result = Some((mean, best));
    }
}

fn run_benchmark(label: &str, samples: usize, routine: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples, result: None };
    routine(&mut bencher);
    match bencher.result {
        Some((mean, best)) => {
            println!("bench {label}: mean {mean:?}/iter, best {best:?}/iter");
        }
        None => println!("bench {label}: no measurement (routine never called iter)"),
    }
}

/// Declares a group function running each target benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group (ignores harness CLI flags).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }

    #[test]
    fn smoke() {
        let mut c = Criterion::default();
        c.bench_function("fib10", |b| b.iter(|| fib(black_box(10))));
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("fib5", |b| b.iter(|| fib(black_box(5))));
        group.bench_with_input(BenchmarkId::new("fib", 8), &8u64, |b, &n| {
            b.iter(|| fib(black_box(n)))
        });
        group.finish();
    }
}
