//! Offline std-only stub of the tiny `rand` API surface this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace resolves
//! `rand` to this path crate. It provides exactly what the repo calls:
//! `rand::rngs::StdRng`, `SeedableRng::{seed_from_u64, from_seed}`, and
//! `RngExt::{random_range, random_bool, random}`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic,
//! high-quality, and stable across platforms, which is all the experiment
//! harness needs (every run is seeded; nothing here is cryptographic).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a deterministic generator from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed;

    /// Builds the generator from full seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64` (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: used to expand small seeds into full generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's standard RNG).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s.iter().all(|w| *w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// A type that can be sampled uniformly from a range.
pub trait SampleUniform: Copy {
    /// Uniform sample from the half-open range `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Uniform sample from the closed range `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Multiply-shift bounded sampling (Lemire): uniform in `[0, span)`.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "bounded_u64 needs a non-empty span");
    // Widening multiply keeps the bias below 2^-64 per draw, which is far
    // beyond what the seeded experiment harness can observe.
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range {low}..{high}");
                let span = (high as i128 - low as i128) as u64;
                let offset = bounded_u64(rng, span);
                (low as i128 + offset as i128) as $ty
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "random_range: empty range {low}..={high}");
                let span = (high as i128 - low as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                let offset = bounded_u64(rng, span + 1);
                (low as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range {low}..{high}");
                // 53 (resp. 24) uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let sample = (low as f64 + (high as f64 - low as f64) * unit) as $ty;
                // Rounding can land exactly on `high`; fold that measure-zero
                // edge back to `low` to keep the half-open contract.
                if sample >= high { low } else { sample }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "random_range: empty range {low}..={high}");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                (low as f64 + (high as f64 - low as f64) * unit) as $ty
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// A range argument accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`, integer or float).
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A uniform `f64` in `[0, 1)`.
    fn random_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_constructions() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1_000_000u64), b.random_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-0.25..0.25f64);
            assert!((-0.25..0.25).contains(&f));
            let i = rng.random_range(0..=4u32);
            assert!(i <= 4);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn random_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
