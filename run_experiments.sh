#!/usr/bin/env bash
# Regenerates every figure of the paper's evaluation (Sec. VII) plus the
# ablation study. Set STMAKER_SCALE=full for the EXPERIMENTS.md scale
# (minutes) or leave unset for a quick pass (seconds).
set -euo pipefail
cd "$(dirname "$0")"
SCALE="${STMAKER_SCALE:-quick}"
OUT="experiments/${SCALE}"
mkdir -p "$OUT"
echo "=== static analysis gate ==="
cargo xtask lint
for exp in exp_fig6 exp_fig7 exp_fig8 exp_fig9 exp_fig10a exp_fig10b exp_fig11 exp_fig12 exp_ablation exp_volume; do
    echo "=== $exp (scale: $SCALE) ==="
    STMAKER_SCALE="$SCALE" cargo run --release -q -p stmaker-eval --bin "$exp" | tee "$OUT/$exp.txt"
done
echo "all experiment outputs in $OUT/ (JSON dumps in experiments/out/)"
