//! Umbrella crate: re-exports the full stmaker stack for examples and integration tests.
pub use stmaker::*;
pub use stmaker_calibration as calibration;
pub use stmaker_eval as eval;
pub use stmaker_generator as generator;
pub use stmaker_geo as geo;
pub use stmaker_io as io;
pub use stmaker_mapmatch as mapmatch;
pub use stmaker_obs as obs;
pub use stmaker_poi as poi;
pub use stmaker_road as road;
pub use stmaker_routes as routes;
pub use stmaker_semantic as semantic;
pub use stmaker_significance as significance;
pub use stmaker_textmine as textmine;
pub use stmaker_trajectory as trajectory;
