//! Quickstart: raw GPS triples in, a readable paragraph out.
//!
//! Mirrors the paper's motivating contrast (Table I vs Fig. 1(b)): a raw
//! trajectory is an opaque wall of `⟨lat, lon, timestamp⟩` triples; STMaker
//! turns it into one short, human-readable description.
//!
//! Run with: `cargo run --example quickstart`

use stmaker_suite::generator::{TripConfig, TripGenerator, World, WorldConfig};
use stmaker_suite::{standard_features, FeatureWeights, Summarizer, SummarizerConfig};

fn main() {
    // 1. A world to drive in. Real deployments would load a road network,
    //    a POI/landmark dataset and a historical trajectory corpus; here the
    //    synthetic generator supplies all three, deterministically.
    println!("building the city, landmarks and check-ins…");
    let world = World::generate(WorldConfig::small(2024));

    // 2. Historical knowledge: train on a corpus of past trips. This mines
    //    popular routes and per-road average behaviour.
    println!("training on 120 historical trips…");
    let gen = TripGenerator::new(&world, TripConfig::default());
    let training: Vec<_> = gen.generate_corpus(120, 7).into_iter().map(|t| t.raw).collect();
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let summarizer = Summarizer::train(
        &world.net,
        &world.registry,
        &training,
        features,
        weights,
        SummarizerConfig::default(),
    );

    // 3. A fresh trajectory arrives (a morning rush-hour trip).
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(99);
    let trip = (0..50)
        .find_map(|_| gen.generate_at(0, 8.5, &mut rng))
        .expect("the generator produces rush-hour trips");

    // This is what the database sees (the paper's Table I):
    println!("\nraw trajectory ({} samples):", trip.raw.len());
    println!("    latitude   longitude   timestamp");
    for p in trip.raw.points().iter().take(4) {
        println!(
            "    {:.4}    {:.4}    t+{}s",
            p.point.lat,
            p.point.lon,
            p.t.0 - trip.raw.start().t.0
        );
    }
    println!("    …          …           …");

    // 4. And this is what a person gets (the paper's Fig. 1(b)):
    let summary = summarizer.summarize(&trip.raw).expect("trip calibrates");
    println!("\nsummary:\n    {}", summary.text);

    // Want more or less detail? Ask for a specific number of partitions.
    if let Ok(fine) = summarizer.summarize_k(&trip.raw, 3) {
        println!("\nsummary at k = 3:\n    {}", fine.text);
    }
}
