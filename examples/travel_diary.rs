//! Travel diary — the paper's second application sketch.
//!
//! "During traveling, an automatically generated trajectory summary is a
//! good travel diary, which can be shared to friends via Twitter or
//! Facebook." (Sec. I)
//!
//! This example follows one driver through a day (commute in, lunch run,
//! commute home) and assembles the three trip summaries into a shareable
//! diary, with a finer-grained retelling (k = 3) for the eventful leg.
//!
//! Run with: `cargo run --example travel_diary`

use rand::rngs::StdRng;
use rand::SeedableRng;
use stmaker_suite::generator::{TripConfig, TripGenerator, World, WorldConfig};
use stmaker_suite::{standard_features, FeatureWeights, Summarizer, SummarizerConfig};

fn main() {
    let world = World::generate(WorldConfig::small(888));
    let gen = TripGenerator::new(&world, TripConfig::default());
    let training: Vec<_> = gen.generate_corpus(150, 21).into_iter().map(|t| t.raw).collect();
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let summarizer = Summarizer::train(
        &world.net,
        &world.registry,
        &training,
        features,
        weights,
        SummarizerConfig::default(),
    );

    let mut rng = StdRng::seed_from_u64(31);
    let legs = [
        ("08:10 — the commute in", 8.17),
        ("12:40 — lunch run", 12.67),
        ("18:05 — heading home", 18.08),
    ];

    println!("# My day on the road\n");
    let mut most_eventful: Option<(
        usize,
        stmaker_suite::Summary,
        stmaker_suite::trajectory::RawTrajectory,
    )> = None;
    for (title, hour) in legs.iter() {
        let Some(trip) = (0..50).find_map(|_| gen.generate_at(2, *hour, &mut rng)) else {
            continue;
        };
        let Ok(summary) = summarizer.summarize(&trip.raw) else { continue };
        println!("## {title}");
        println!("{}\n", summary.text);

        let events: usize = summary.partitions.iter().map(|p| p.selected.len()).sum();
        let replace = most_eventful.as_ref().map(|(best, _, _)| events > *best).unwrap_or(true);
        if replace {
            most_eventful = Some((events, summary, trip.raw.clone()));
        }
    }

    // Retell the most eventful leg in more detail for the curious reader.
    if let Some((_, _, raw)) = most_eventful {
        if let Ok(fine) = summarizer.summarize_k(&raw, 3) {
            println!("## The eventful one, in detail");
            println!("{}", fine.text);
        }
    }
}
