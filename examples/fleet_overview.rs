//! Fleet overview — text processing over summaries (Sec. VI-C).
//!
//! "After summarizing the trajectories using text, many text processing
//! techniques … can be directly applied on the summaries. For example,
//! applying the text clustering method on summaries of all the trajectories
//! in a certain region at a specific time period, we can have a quick
//! overview about the traffic condition."
//!
//! This example summarizes a whole fleet's morning and plots (as text) which
//! anomaly keywords dominate each hour — a traffic-condition dashboard built
//! purely from the summary corpus, never touching raw GPS again.
//!
//! Run with: `cargo run --example fleet_overview`

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use stmaker_suite::generator::{TripConfig, TripGenerator, World, WorldConfig};
use stmaker_suite::{standard_features, FeatureWeights, Summarizer, SummarizerConfig};

/// The anomaly keywords a dispatcher cares about, with the summary phrases
/// that express them (plain keyword search over the generated text — the
/// point of Sec. VI-C is that summaries are just text).
const KEYWORDS: [(&str, &str); 4] = [
    ("slower than usual", "congestion"),
    ("staying point", "stops"),
    ("U-turn", "U-turns"),
    ("while most drivers choose", "detours"),
];

fn main() {
    let world = World::generate(WorldConfig::small(4242));
    let gen = TripGenerator::new(&world, TripConfig::default());
    let training: Vec<_> = gen.generate_corpus(150, 5).into_iter().map(|t| t.raw).collect();
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let summarizer = Summarizer::train(
        &world.net,
        &world.registry,
        &training,
        features,
        weights,
        SummarizerConfig::default(),
    );

    // Summarize the fleet's trips per hour, 05:00–12:00.
    let mut rng = StdRng::seed_from_u64(808);
    let mut per_hour: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for hour in 5..12 {
        let texts = per_hour.entry(hour).or_default();
        let mut made = 0;
        while made < 25 {
            let Some(trip) = gen.generate_at(3, hour as f64 + 0.5, &mut rng) else { continue };
            if let Ok(summary) = summarizer.summarize(&trip.raw) {
                texts.push(summary.text);
            }
            made += 1;
        }
    }

    println!("fleet traffic overview (25 vehicles per hour)\n");
    println!("{:<8}{:<14}{:<10}{:<10}{:<10}", "hour", "congestion", "stops", "U-turns", "detours");
    for (hour, texts) in &per_hour {
        let mut counts = [0usize; 4];
        for t in texts {
            for (i, (needle, _)) in KEYWORDS.iter().enumerate() {
                if t.contains(needle) {
                    counts[i] += 1;
                }
            }
        }
        let bar = |c: usize| format!("{:<2} {}", c, "▍".repeat(c.min(12)));
        println!(
            "{:02}:00   {:<14}{:<10}{:<10}{:<10}",
            hour,
            bar(counts[0]),
            bar(counts[1]),
            bar(counts[2]),
            bar(counts[3])
        );
    }
    println!("\nreading: the rush-hour rows (≥ 06:00) should light up relative to 05:00.");
}
