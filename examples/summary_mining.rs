//! Summary mining — Sec. VI-C end to end with the `stmaker-textmine` crate.
//!
//! "Applying the text clustering method on summaries of all the trajectories
//! in a certain region at a specific time period, we can have a quick
//! overview about the traffic condition." This example summarizes a fleet,
//! clusters the summary texts with spherical k-means, labels each cluster by
//! its top tf-idf terms, and then answers a dispatcher's keyword query with
//! the inverted index.
//!
//! Run with: `cargo run --example summary_mining`

use rand::rngs::StdRng;
use rand::SeedableRng;
use stmaker_suite::generator::{TripConfig, TripGenerator, World, WorldConfig};
use stmaker_suite::textmine::{cluster_texts, InvertedIndex};
use stmaker_suite::{standard_features, FeatureWeights, Summarizer, SummarizerConfig};

fn main() {
    let world = World::generate(WorldConfig::small(1313));
    let gen = TripGenerator::new(&world, TripConfig::default());
    let training: Vec<_> = gen.generate_corpus(150, 3).into_iter().map(|t| t.raw).collect();
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let summarizer = Summarizer::train(
        &world.net,
        &world.registry,
        &training,
        features,
        weights,
        SummarizerConfig::default(),
    );

    // Summarize a morning's fleet activity (mixed hours, so both smooth and
    // eventful trips appear).
    let mut rng = StdRng::seed_from_u64(77);
    let mut texts: Vec<String> = Vec::new();
    for hour in [7.0, 8.0, 9.0, 11.0, 13.0] {
        for _ in 0..12 {
            if let Some(trip) = gen.generate_at(1, hour, &mut rng) {
                if let Ok(s) = summarizer.summarize(&trip.raw) {
                    texts.push(s.text);
                }
            }
        }
    }
    println!("{} summaries collected\n", texts.len());

    // 1. Cluster for the traffic overview.
    let (result, topics) = cluster_texts(&texts, 4, 99);
    println!("## Traffic overview ({} clusters)", result.k());
    for (c, topic) in topics.iter().enumerate() {
        let members = result.members(c);
        println!("cluster {c}: {:>3} trips — topic: {}", members.len(), topic.join(", "));
        if let Some(first) = members.first() {
            println!("    e.g. {}", texts[*first]);
        }
    }

    // 2. Semantic-ish keyword queries over the same corpus.
    let index = InvertedIndex::build(&texts);
    println!("\n## Dispatcher queries");
    for query in ["u-turn", "staying points", "slower than usual highway"] {
        let hits = index.search(query, 2);
        println!("query {query:?}: {} match(es)", hits.len());
        for (doc, score) in hits {
            println!("    {score:.3}  {}", texts[doc]);
        }
    }
}
