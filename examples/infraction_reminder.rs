//! Infraction reminder — the paper's first application sketch.
//!
//! "By embedding the trajectory summarization technique in GPS modules of
//! cars and cells, an infraction reminder can be created. Every time some
//! driving infractions occur, the driver can receive the infraction travel
//! summary." (Sec. I)
//!
//! This example watches a stream of completed trips and, whenever a summary
//! reports a U-turn or a severe speed anomaly, prints the driver-facing
//! reminder with the offending sentence.
//!
//! Run with: `cargo run --example infraction_reminder`

use rand::rngs::StdRng;
use rand::SeedableRng;
use stmaker_suite::generator::{TripConfig, TripGenerator, World, WorldConfig};
use stmaker_suite::{keys, standard_features, FeatureWeights, Summarizer, SummarizerConfig};

fn main() {
    let world = World::generate(WorldConfig::small(555));
    let gen = TripGenerator::new(&world, TripConfig::default());
    let training: Vec<_> = gen.generate_corpus(150, 11).into_iter().map(|t| t.raw).collect();
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let summarizer = Summarizer::train(
        &world.net,
        &world.registry,
        &training,
        features,
        weights,
        SummarizerConfig::default(),
    );

    println!("monitoring the evening shift…\n");
    let mut rng = StdRng::seed_from_u64(2718);
    let mut trip_no = 0;
    let mut reminders = 0;
    while trip_no < 20 {
        let Some(trip) = gen.generate_at(1, 17.5, &mut rng) else { continue };
        trip_no += 1;
        let Ok(summary) = summarizer.summarize(&trip.raw) else { continue };

        // An "infraction" is any partition whose selected features include a
        // U-turn (possibly illegal) or a strong speed anomaly (≥ 15 km/h off
        // the usual speed — speeding or obstructing traffic).
        let mut flagged: Vec<&str> = Vec::new();
        for p in &summary.partitions {
            for f in &p.selected {
                let speeding = f.key == keys::SPEED
                    && f.regular.map(|r| (f.observed - r).abs() >= 15.0).unwrap_or(false);
                if f.key == keys::U_TURNS || speeding {
                    flagged.push(p.sentence.as_str());
                }
            }
        }
        flagged.dedup();

        if flagged.is_empty() {
            println!("trip {trip_no:>2}: ok");
        } else {
            reminders += 1;
            println!("trip {trip_no:>2}: ⚠ INFRACTION REMINDER");
            for sentence in flagged {
                println!("          {sentence}");
            }
        }
    }
    println!("\n{reminders} of {trip_no} trips triggered a reminder.");
}
