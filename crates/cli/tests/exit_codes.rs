//! Integration tests for the CLI exit-code contract.
//!
//! The contract (documented in `print_usage` and USAGE.md):
//!
//! * 0  — success, including `obs diff --timing-warn-only` findings.
//! * 1  — generic runtime error, or an `obs diff` timing regression.
//! * 2  — `obs diff` hard key-loss ONLY (a metric/span present in the
//!        baseline is missing from the new report).
//! * 64 — usage error (`EX_USAGE`): unknown/missing arguments, or a
//!        report/trace input that cannot be read or parsed.
//!
//! The regression this pins down: a missing or unparseable report file
//! used to exit 2, indistinguishable from a real telemetry key-loss —
//! a typo'd path in CI would read as a structural regression.

use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

use stmaker_obs::Recorder;

const BIN: &str = env!("CARGO_BIN_EXE_stmaker-cli");

/// Per-test scratch directory under the target tmpdir.
fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("stmaker_exit_codes_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Builds a minimal report with one span/counter/gauge/histogram; the
/// span mean is `span_ms`, so two reports with different values diff as
/// a timing regression.
fn report_json(span_ms: u64) -> String {
    let obs = Recorder::enabled();
    obs.span_observed("summarize", Duration::from_millis(span_ms));
    obs.add("batch.summaries_ok", 10);
    obs.gauge("exec.threads", 1.0);
    obs.observe_ms("summarize", 1.0);
    obs.report().to_json_pretty()
}

fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(BIN).args(args).output().expect("spawn stmaker-cli");
    let code = out.status.code().expect("exit code");
    (
        code,
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn diff_of_identical_reports_exits_zero() {
    let dir = scratch("identical");
    let path = dir.join("r.json");
    std::fs::write(&path, report_json(10)).expect("write report");
    let p = path.to_str().expect("utf8 path");
    let (code, stdout, _) = run(&["obs", "diff", p, p]);
    assert_eq!(code, 0, "stdout: {stdout}");
    assert!(stdout.contains("no regressions"), "{stdout}");
}

#[test]
fn timing_regression_exits_one_and_warn_only_exits_zero() {
    let dir = scratch("timing");
    let base = dir.join("base.json");
    let new = dir.join("new.json");
    std::fs::write(&base, report_json(10)).expect("write base");
    std::fs::write(&new, report_json(200)).expect("write new");
    let (b, n) = (base.to_str().expect("utf8"), new.to_str().expect("utf8"));

    let (code, stdout, stderr) = run(&["obs", "diff", b, n, "--min-base-ms", "0"]);
    assert_eq!(code, 1, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stderr.contains("timing regression"), "{stderr}");

    let (code, _, stderr) = run(&["obs", "diff", b, n, "--min-base-ms", "0", "--timing-warn-only"]);
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stderr.contains("warnings"), "{stderr}");
}

#[test]
fn hard_key_loss_exits_two() {
    let dir = scratch("keyloss");
    let base = dir.join("base.json");
    let new = dir.join("new.json");
    std::fs::write(&base, report_json(10)).expect("write base");
    // The new report never records the counter the baseline had.
    let obs = Recorder::enabled();
    obs.span_observed("summarize", Duration::from_millis(10));
    obs.gauge("exec.threads", 1.0);
    obs.observe_ms("summarize", 1.0);
    std::fs::write(&new, obs.report().to_json_pretty()).expect("write new");

    let (code, stdout, stderr) =
        run(&["obs", "diff", base.to_str().expect("utf8"), new.to_str().expect("utf8")]);
    assert_eq!(code, 2, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("HARD"), "{stdout}");
    assert!(stderr.contains("structural regression"), "{stderr}");
}

#[test]
fn missing_report_file_is_a_usage_error_not_a_key_loss() {
    let dir = scratch("missing");
    let real = dir.join("real.json");
    std::fs::write(&real, report_json(10)).expect("write report");
    let ghost = dir.join("no_such_file.json");
    let (code, _, stderr) =
        run(&["obs", "diff", real.to_str().expect("utf8"), ghost.to_str().expect("utf8")]);
    assert_eq!(code, 64, "stderr: {stderr}");
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn unparseable_report_file_is_a_usage_error() {
    let dir = scratch("garbage");
    let good = dir.join("good.json");
    let bad = dir.join("bad.json");
    std::fs::write(&good, report_json(10)).expect("write good");
    std::fs::write(&bad, "this is not a report {{{").expect("write bad");
    let (code, _, stderr) =
        run(&["obs", "diff", good.to_str().expect("utf8"), bad.to_str().expect("utf8")]);
    assert_eq!(code, 64, "stderr: {stderr}");
    assert!(stderr.contains("bad.json"), "{stderr}");
}

#[test]
fn diff_argument_mistakes_exit_sixty_four() {
    let dir = scratch("args");
    let path = dir.join("r.json");
    std::fs::write(&path, report_json(10)).expect("write report");
    let p = path.to_str().expect("utf8");

    // Wrong path count.
    let (code, _, stderr) = run(&["obs", "diff", p]);
    assert_eq!(code, 64, "{stderr}");
    // Flag without a value.
    let (code, _, stderr) = run(&["obs", "diff", p, p, "--threshold"]);
    assert_eq!(code, 64, "{stderr}");
    // Unparseable flag value.
    let (code, _, stderr) = run(&["obs", "diff", p, p, "--threshold", "banana"]);
    assert_eq!(code, 64, "{stderr}");
    // Unknown obs subcommand.
    let (code, _, stderr) = run(&["obs", "frobnicate"]);
    assert_eq!(code, 64, "{stderr}");
}

#[test]
fn obs_top_input_mistakes_exit_sixty_four() {
    let dir = scratch("top");
    let (code, _, stderr) = run(&["obs", "top"]);
    assert_eq!(code, 64, "{stderr}");

    let ghost = dir.join("no_trace.json");
    let (code, _, stderr) = run(&["obs", "top", ghost.to_str().expect("utf8")]);
    assert_eq!(code, 64, "{stderr}");
    assert!(stderr.contains("cannot read"), "{stderr}");

    let bad = dir.join("bad_trace.json");
    std::fs::write(&bad, "not a trace").expect("write bad trace");
    let (code, _, stderr) = run(&["obs", "top", bad.to_str().expect("utf8")]);
    assert_eq!(code, 64, "{stderr}");

    let worse = bad.to_str().expect("utf8");
    let (code, _, stderr) = run(&["obs", "top", worse, "--depth", "none"]);
    assert_eq!(code, 64, "{stderr}");
}

#[test]
fn runtime_errors_stay_exit_one() {
    // `serve` pointed at a directory with no world.json is a runtime
    // failure, not a usage error: the arguments parsed fine.
    let dir = scratch("serve");
    let (code, _, stderr) = run(&["serve", "--dir", dir.to_str().expect("utf8")]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("error"), "{stderr}");
}
