//! `stmaker-cli` — drive the whole stack from a shell.
//!
//! Because the reproduction has no real map, trajectories only make sense
//! relative to a *world*; `gen` therefore writes a `world.json` config next
//! to the exported trips, and every other subcommand deterministically
//! regenerates that exact world (same seed → byte-identical landmarks and
//! history) before summarizing.
//!
//! ```text
//! stmaker-cli gen --dir /tmp/demo --trips 20 --seed 7
//! stmaker-cli train --dir /tmp/demo --out /tmp/demo/model.json
//! stmaker-cli summarize --dir /tmp/demo --trip trip_003.csv --k 3
//! stmaker-cli group --dir /tmp/demo
//! stmaker-cli search --dir /tmp/demo --query "u-turn station"
//! stmaker-cli demo
//! ```
//!
//! The global `--trace` flag prints a per-stage span tree after any
//! subcommand, and `--metrics-json PATH` writes the full telemetry report
//! (spans, counters, gauges, histograms) as JSON.

use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;
use stmaker::{
    standard_features, FeatureWeights, Recorder, SpatialIndexKind, Summarizer, SummarizerConfig,
};
use stmaker_generator::{TripConfig, TripGenerator, World, WorldConfig};
use stmaker_io::{
    read_model_file_as, read_raw_points_csv_from, read_raw_points_jsonl_from, read_raw_trips_stc,
    read_trajectory_csv, read_trajectory_csv_from, read_trajectory_jsonl_from, read_trips_stc,
    summary_to_geojson, write_model_file, write_point_runs_stc, write_trajectory_csv_to,
    write_trajectory_jsonl_to, write_trips_stc, ModelFormat,
};
use stmaker_obs::TraceClock;
use stmaker_server::{ServeConfig, Server};
use stmaker_textmine::InvertedIndex;
use stmaker_trajectory::{sanitize, RawPoint, RawTrajectory, SanitizeConfig, SanitizePolicy};

/// Global observability options, stripped from the argument list before
/// subcommand dispatch so every subcommand accepts them in any position.
struct Obs {
    recorder: Recorder,
    trace: bool,
    metrics_json: Option<PathBuf>,
    /// Worker threads for training/batch stages; 0 = auto
    /// (`STMAKER_THREADS` env, else available parallelism).
    threads: usize,
    /// Ingest-hardening policy for trip files (`--sanitize POLICY`); `None`
    /// means strict parsing with no repair.
    sanitize: Option<SanitizePolicy>,
    /// Capacity of the read-through route cache on the serving path
    /// (`--route-cache N`); 0 = disabled. Purely a latency knob — results
    /// are byte-identical either way.
    route_cache: usize,
    /// Spatial index backend for calibration and map matching
    /// (`--spatial-index rtree|grid`); R-tree by default, grid kept as the
    /// byte-identical escape hatch.
    spatial_index: SpatialIndexKind,
    /// Write a Chrome trace-event JSON of the event journal here
    /// (`--trace-out FILE`); loads in `about://tracing` / Perfetto.
    trace_out: Option<PathBuf>,
    /// Timestamp source for the exported trace (`--trace-clock`):
    /// `logical` (the default — drain order, byte-identical across thread
    /// counts) or `wall` (real microseconds).
    trace_clock: TraceClock,
}

impl Obs {
    /// Extracts `--trace` / `--metrics-json PATH` / `--trace-out FILE` /
    /// `--trace-clock SRC` / `--threads N` / `--sanitize POLICY` /
    /// `--route-cache N` / `--spatial-index KIND` from `args` (removing
    /// them) and builds the
    /// matching recorder: journal-backed if `--trace-out` is present,
    /// enabled if another tracing flag is, the zero-cost no-op otherwise.
    fn extract(args: &mut Vec<String>) -> Result<Self, String> {
        let mut trace = false;
        let mut metrics_json = None;
        let mut threads = 0usize;
        let mut sanitize = None;
        let mut route_cache = 0usize;
        let mut spatial_index = SpatialIndexKind::default();
        let mut trace_out = None;
        let mut trace_clock = TraceClock::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--trace" => {
                    trace = true;
                    args.remove(i);
                }
                "--metrics-json" => {
                    args.remove(i);
                    if i >= args.len() {
                        return Err("missing path after --metrics-json".to_owned());
                    }
                    metrics_json = Some(PathBuf::from(args.remove(i)));
                }
                "--trace-out" => {
                    args.remove(i);
                    if i >= args.len() {
                        return Err("missing path after --trace-out".to_owned());
                    }
                    trace_out = Some(PathBuf::from(args.remove(i)));
                }
                "--trace-clock" => {
                    args.remove(i);
                    if i >= args.len() {
                        return Err("missing source after --trace-clock".to_owned());
                    }
                    let v = args.remove(i);
                    trace_clock = TraceClock::parse(&v)
                        .ok_or_else(|| format!("bad value for --trace-clock: {v:?}"))?;
                }
                "--threads" => {
                    args.remove(i);
                    if i >= args.len() {
                        return Err("missing count after --threads".to_owned());
                    }
                    let v = args.remove(i);
                    threads = v.parse().map_err(|_| format!("bad value for --threads: {v:?}"))?;
                }
                "--sanitize" => {
                    args.remove(i);
                    if i >= args.len() {
                        return Err("missing policy after --sanitize".to_owned());
                    }
                    let v = args.remove(i);
                    sanitize = Some(v.parse::<SanitizePolicy>()?);
                }
                "--route-cache" => {
                    args.remove(i);
                    if i >= args.len() {
                        return Err("missing capacity after --route-cache".to_owned());
                    }
                    let v = args.remove(i);
                    route_cache =
                        v.parse().map_err(|_| format!("bad value for --route-cache: {v:?}"))?;
                }
                "--spatial-index" => {
                    args.remove(i);
                    if i >= args.len() {
                        return Err("missing kind after --spatial-index".to_owned());
                    }
                    spatial_index = args.remove(i).parse::<SpatialIndexKind>()?;
                }
                _ => i += 1,
            }
        }
        let recorder = if trace_out.is_some() {
            Recorder::enabled_with_journal(stmaker_obs::DEFAULT_JOURNAL_CAPACITY)
        } else if trace || metrics_json.is_some() {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        };
        Ok(Self {
            recorder,
            trace,
            metrics_json,
            threads,
            sanitize,
            route_cache,
            spatial_index,
            trace_out,
            trace_clock,
        })
    }

    /// Renders/writes the collected telemetry after the subcommand ran.
    fn finish(&self) -> Result<(), String> {
        if !self.trace && self.metrics_json.is_none() && self.trace_out.is_none() {
            return Ok(());
        }
        let report = self.recorder.report();
        if self.trace {
            eprintln!("\n{}", stmaker_obs::stats::render(&report));
        }
        if let Some(path) = &self.metrics_json {
            report.write_json(path).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!("wrote metrics to {}", path.display());
        }
        if let Some(path) = &self.trace_out {
            let text = self.recorder.chrome_trace(self.trace_clock);
            std::fs::write(path, text)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!(
                "wrote trace to {} (open in about://tracing or ui.perfetto.dev)",
                path.display()
            );
        }
        Ok(())
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `obs` is a pure report/trace tool: it takes no world or recorder and
    // owns its exit codes (1 = timing regression, 2 = structural loss or
    // unreadable input), so it dispatches before the global-flag parse.
    if args.first().map(|s| s.as_str()) == Some("obs") {
        return cmd_obs(&args[1..]);
    }
    let result = Obs::extract(&mut args).and_then(|obs| {
        let r = match args.first().map(|s| s.as_str()) {
            Some("demo") => cmd_demo(&args[1..], &obs),
            Some("gen") => cmd_gen(&args[1..], &obs),
            Some("convert") => cmd_convert(&args[1..], &obs),
            Some("train") => cmd_train(&args[1..], &obs),
            Some("summarize") => cmd_summarize(&args[1..], &obs),
            Some("sanitize") => cmd_sanitize(&args[1..], &obs),
            Some("group") => cmd_group(&args[1..], &obs),
            Some("search") => cmd_search(&args[1..], &obs),
            Some("serve") => cmd_serve(&args[1..], &obs),
            Some("help") | Some("--help") | Some("-h") | None => {
                print_usage();
                Ok(())
            }
            Some(other) => Err(format!("unknown subcommand {other:?}; try `stmaker-cli help`")),
        };
        r.and_then(|()| obs.finish())
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "stmaker-cli — trajectory summarization (ICDE'15 reproduction)\n\n\
         USAGE:\n  stmaker-cli <subcommand> [options]\n\n\
         SUBCOMMANDS:\n  \
         demo       [--seed N] [--hour H] [--k K] [--trip FILE] [--repeat N]\n  \
         \x20                                          one-shot world+trip demo; --repeat\n  \
         \x20                                          re-summarizes the trip as an N-copy\n  \
         \x20                                          batch and prints the cache hit rate\n  \
         gen        --dir DIR [--trips N] [--seed N] export trips as CSV + world.json\n  \
         convert    [--in FILE | --dir DIR] [--out FILE | --out-dir DIR]\n  \
         \x20          [--to stc|csv|jsonl|json]          re-encode trips or a model between\n  \
         \x20                                          the text formats and columnar STC1\n  \
         train      --dir DIR [--out FILE] [--n-train N] [--format json|stc]\n  \
         \x20                                          save a trained model (an .stc --out\n  \
         \x20                                          extension also selects the binary)\n  \
         summarize  --dir DIR --trip FILE [--k K] [--model FILE] [--format json|stc]\n  \
         \x20          [--geojson FILE]\n  \
         sanitize   --trip FILE [--max-speed M] [--max-gap S] [--out FILE]\n  \
         \x20                                          audit/repair a trip file\n  \
         group      --dir DIR [--min-share F]       group summary of every trip in DIR\n  \
         search     --dir DIR --query \"...\" [--top K] keyword search over summaries\n  \
         serve      --dir DIR [--addr HOST:PORT] [--workers N] [--queue N]\n  \
         \x20          [--model FILE] [--n-train N]     std-only HTTP server: /summarize,\n  \
         \x20                                          /summarize_batch, /ingest, /model\n  \
         \x20                                          (GET + hot-swap POST), /healthz,\n  \
         \x20                                          /metrics, /shutdown\n  \
         obs diff   BASE.json NEW.json [--threshold X] [--min-base-ms MS]\n  \
         \x20          [--timing-warn-only]             compare two --metrics-json reports;\n  \
         \x20                                          exit 1 on timing regression, 2 on\n  \
         \x20                                          missing metrics\n  \
         obs top    TRACE.json [--depth N]           aggregate a --trace-out file into a\n  \
         \x20                                          flamegraph-style text tree\n  \
         help                                        this message\n\n\
         EXIT CODES:\n  \
         0   success (including warn-only timing findings)\n  \
         1   runtime error, or `obs diff` timing regression\n  \
         2   `obs diff` hard key-loss only (a metric/span present in BASE\n  \
         \x20    is missing from NEW)\n  \
         64  usage error (EX_USAGE): unknown/missing arguments, or a report\n  \
         \x20    or trace file that cannot be read or parsed\n\n\
         GLOBAL OPTIONS:\n  \
         --trace                print a per-stage span/counter table on exit\n  \
         --metrics-json PATH    write the telemetry report as JSON\n  \
         --trace-out PATH       write the event journal as Chrome trace-event\n  \
         \x20                      JSON (open in about://tracing or Perfetto)\n  \
         --trace-clock SRC      trace timestamps: logical (default; drain\n  \
         \x20                      order, byte-identical across thread counts)\n  \
         \x20                      or wall (real microseconds)\n  \
         --threads N            worker threads for train/batch stages\n  \
         \x20                      (0 = auto; also via STMAKER_THREADS; results\n  \
         \x20                      are identical for every thread count)\n  \
         --sanitize POLICY      ingest hardening for trip files: strict |\n  \
         \x20                      repair | drop (defects counted to stderr;\n  \
         \x20                      without the flag, parsing is strict and\n  \
         \x20                      defective files are rejected with an error)\n  \
         --route-cache N        read-through serving cache holding N routes\n  \
         \x20                      (0 = off, the default; summaries are\n  \
         \x20                      byte-identical with and without it)\n  \
         --spatial-index KIND   spatial index for calibration and map\n  \
         \x20                      matching: rtree (default) | grid; purely a\n  \
         \x20                      latency knob — candidate sets and summaries\n  \
         \x20                      are byte-identical under both"
    );
}

/// Tiny `--key value` parser; flags may appear in any order.
struct Opts<'a> {
    args: &'a [String],
}

impl<'a> Opts<'a> {
    fn new(args: &'a [String]) -> Self {
        Self { args }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(|s| s.as_str())
    }

    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for {key}: {v:?}")),
        }
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required option {key}"))
    }
}

/// World + trained summarizer assembly shared by the subcommands.
struct Stack {
    world: World,
    recorder: Recorder,
    threads: usize,
    route_cache: usize,
    spatial_index: SpatialIndexKind,
}

impl Stack {
    fn from_config(cfg: WorldConfig, obs: &Obs) -> Self {
        eprintln!("building world (seed {})…", cfg.seed);
        let mut world = World::generate(cfg);
        // The registry owns calibration's spatial index; switch it together
        // with the matcher backend so `--spatial-index` governs both.
        world.registry.set_index_kind(obs.spatial_index);
        Self {
            world,
            recorder: obs.recorder.clone(),
            threads: obs.threads,
            route_cache: obs.route_cache,
            spatial_index: obs.spatial_index,
        }
    }

    /// The default pipeline config with this stack's recorder, thread
    /// count and spatial backend attached.
    fn config(&self) -> SummarizerConfig {
        SummarizerConfig::default()
            .with_recorder(self.recorder.clone())
            .with_threads(self.threads)
            .with_route_cache(self.route_cache)
            .with_spatial_index(self.spatial_index)
    }

    fn train(&self, n_train: usize) -> Summarizer<'_> {
        eprintln!("training on {n_train} historical trips…");
        let gen = TripGenerator::new(&self.world, TripConfig::default());
        let training: Vec<RawTrajectory> =
            gen.generate_corpus(n_train, 0x7EA1).into_iter().map(|t| t.raw).collect();
        let features = standard_features();
        let weights = FeatureWeights::uniform(&features);
        Summarizer::train(
            &self.world.net,
            &self.world.registry,
            &training,
            features,
            weights,
            self.config(),
        )
    }

    /// Loads a saved model if `--model` was given; otherwise trains fresh.
    fn summarizer(&self, opts: &Opts<'_>) -> Result<Summarizer<'_>, String> {
        match opts.get("--model") {
            Some(path) => {
                eprintln!("loading model {path}…");
                let model = load_model(path, opts)?;
                if model.registry_len != 0 && model.registry_len != self.world.registry.len() {
                    return Err(format!(
                        "model {path} was trained against a different world \
                         ({} landmarks vs this world's {}); retrain with `train` \
                         or point --dir at the world the model came from",
                        model.registry_len,
                        self.world.registry.len()
                    ));
                }
                let features = standard_features();
                let weights = FeatureWeights::uniform(&features);
                Ok(Summarizer::from_model(
                    &self.world.net,
                    &self.world.registry,
                    model,
                    features,
                    weights,
                    self.config(),
                ))
            }
            None => Ok(self.train(300)),
        }
    }
}

/// Parses the optional `--format json|stc` flag shared by the subcommands
/// that read or write model files. `None` means "decide by sniffing (reads)
/// or by the output extension (writes)".
fn model_format_opt(opts: &Opts<'_>) -> Result<Option<ModelFormat>, String> {
    opts.get("--format").map(|v| v.parse::<ModelFormat>()).transpose()
}

/// Loads a model file of either encoding; `--format` forces a decoder,
/// otherwise the STC1 magic is sniffed and JSON is the fallback.
fn load_model(path: &str, opts: &Opts<'_>) -> Result<stmaker::TrainedModel, String> {
    read_model_file_as(path, model_format_opt(opts)?)
        .map_err(|e| format!("cannot load model {path}: {e}"))
}

fn load_world_config(dir: &Path) -> Result<WorldConfig, String> {
    let path = dir.join("world.json");
    let body = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e} (run `gen` first)", path.display()))?;
    serde_json::from_str(&body).map_err(|e| format!("bad world.json: {e}"))
}

fn trip_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot list {}: {e}", dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.extension().map(|x| x == "csv").unwrap_or(false)
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .map(|n| n.starts_with("trip_"))
                    .unwrap_or(false)
        })
        .collect();
    files.sort();
    Ok(files)
}

/// On-disk trip encodings the CLI reads and writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TripFormat {
    Csv,
    Jsonl,
    Stc,
}

impl TripFormat {
    fn of(path: &Path) -> TripFormat {
        match path.extension().and_then(|x| x.to_str()) {
            Some("jsonl") => TripFormat::Jsonl,
            Some("stc") => TripFormat::Stc,
            _ => TripFormat::Csv,
        }
    }
}

fn open_buffered(path: &Path) -> Result<BufReader<std::fs::File>, String> {
    std::fs::File::open(path)
        .map(BufReader::new)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))
}

/// Strict single-trip read of any trip file. Text formats stream through a
/// buffered reader; an `.stc` container must hold exactly one trip.
fn read_trip_strict(path: &Path) -> Result<RawTrajectory, String> {
    match TripFormat::of(path) {
        TripFormat::Csv => read_trajectory_csv_from(open_buffered(path)?)
            .map_err(|e| format!("{}: {e}", path.display())),
        TripFormat::Jsonl => read_trajectory_jsonl_from(open_buffered(path)?)
            .map_err(|e| format!("{}: {e}", path.display())),
        TripFormat::Stc => {
            let bytes =
                std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let trips = read_trips_stc(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
            single_trip(trips, path)
        }
    }
}

/// Lenient single-trip read: defects survive for the sanitizer.
fn read_trip_lenient(path: &Path) -> Result<Vec<RawPoint>, String> {
    match TripFormat::of(path) {
        TripFormat::Csv => read_raw_points_csv_from(open_buffered(path)?)
            .map_err(|e| format!("{}: {e}", path.display())),
        TripFormat::Jsonl => read_raw_points_jsonl_from(open_buffered(path)?)
            .map_err(|e| format!("{}: {e}", path.display())),
        TripFormat::Stc => {
            let bytes =
                std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let runs =
                read_raw_trips_stc(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
            single_trip(runs, path)
        }
    }
}

/// Writes one trajectory in the encoding named by the path's extension,
/// through a `BufWriter` so text rows don't pay a syscall per line.
fn write_trip_file(path: &Path, traj: &RawTrajectory) -> Result<(), String> {
    write_trip_as(path, traj, TripFormat::of(path))
}

/// [`write_trip_file`] with an explicit encoding (for `convert --to`,
/// where the target may disagree with the output extension).
fn write_trip_as(path: &Path, traj: &RawTrajectory, fmt: TripFormat) -> Result<(), String> {
    let fail = |e: std::io::Error| format!("cannot write {}: {e}", path.display());
    match fmt {
        TripFormat::Stc => {
            std::fs::write(path, write_point_runs_stc([traj.points()])).map_err(fail)
        }
        text => {
            let mut w = BufWriter::new(std::fs::File::create(path).map_err(fail)?);
            match text {
                TripFormat::Csv => write_trajectory_csv_to(&mut w, traj).map_err(fail)?,
                _ => write_trajectory_jsonl_to(&mut w, traj).map_err(fail)?,
            }
            w.flush().map_err(fail)
        }
    }
}

fn single_trip<T>(mut trips: Vec<T>, path: &Path) -> Result<T, String> {
    match trips.len() {
        1 => Ok(trips.remove(0)),
        n => Err(format!(
            "{}: container holds {n} trips; this command takes exactly one \
             (split it with `convert --out-dir`)",
            path.display()
        )),
    }
}

/// Reads a trip file (CSV, JSON-lines, or a single-trip STC1 container)
/// into a sample buffer under the global `--sanitize` policy. Without a
/// policy the strict reader runs and any defect is a hard, line-numbered
/// error; with one, the lenient reader feeds the sanitizer, the report
/// goes to stderr and the recorder, and the longest surviving segment is
/// returned.
fn load_trip_points(path: &Path, obs: &Obs) -> Result<Vec<RawPoint>, String> {
    match obs.sanitize {
        None => Ok(read_trip_strict(path)?.points().to_vec()),
        Some(policy) => {
            let pts = read_trip_lenient(path)?;
            let cfg = SanitizeConfig::with_policy(policy);
            let cleaned = sanitize(&pts, &cfg).map_err(|e| format!("{}: {e}", path.display()))?;
            eprintln!("{}", cleaned.report);
            cleaned.report.record_into(&obs.recorder);
            cleaned
                .longest()
                .map(<[RawPoint]>::to_vec)
                .ok_or_else(|| format!("{}: no usable segment after sanitization", path.display()))
        }
    }
}

/// Summarizes an already-loaded sample buffer through the fallible entry
/// points — a malformed buffer is an error message, never a backtrace.
fn summarize_points_cmd(
    summarizer: &Summarizer<'_>,
    points: Vec<RawPoint>,
    k: usize,
) -> Result<stmaker::Summary, String> {
    if k == 0 {
        summarizer.summarize_points(&points).map_err(|e| e.to_string())
    } else {
        let raw = RawTrajectory::try_new(points).map_err(|e| e.to_string())?;
        summarizer.summarize_k(&raw, k).map_err(|e| e.to_string())
    }
}

fn cmd_demo(args: &[String], obs: &Obs) -> Result<(), String> {
    let opts = Opts::new(args);
    let seed: u64 = opts.parse("--seed", 2024)?;
    let hour: f64 = opts.parse("--hour", 8.5)?;
    let k: usize = opts.parse("--k", 0)?;
    let repeat: usize = opts.parse("--repeat", 1)?;

    // `--trip FILE` summarizes a file against the demo world instead of a
    // generated trip — the smoke path for ingest hardening (the file must
    // come from the same seed's world for calibration to anchor). Loaded
    // before the world build so a bad file fails fast.
    let file_points =
        opts.get("--trip").map(|file| load_trip_points(Path::new(file), obs)).transpose()?;

    let stack = Stack::from_config(WorldConfig::small(seed), obs);
    let summarizer = stack.train(150);

    if let Some(points) = file_points {
        println!("trip: {} samples", points.len());
        let summary = summarize_points_cmd(&summarizer, points, k)?;
        println!("\n{}", summary.text);
        return Ok(());
    }

    let gen = TripGenerator::new(&stack.world, TripConfig::default());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDE60);
    let trip = (0..100)
        .find_map(|_| gen.generate_at(0, hour, &mut rng))
        .ok_or("could not generate a trip")?;
    println!(
        "trip: {} samples, {:.1} km, departing {:02}:{:02}",
        trip.raw.len(),
        trip.raw.length_m() / 1000.0,
        hour as u32,
        ((hour % 1.0) * 60.0) as u32,
    );
    let summary =
        if k == 0 { summarizer.summarize(&trip.raw) } else { summarizer.summarize_k(&trip.raw, k) }
            .map_err(|e| e.to_string())?;
    println!("\n{}", summary.text);

    // `--repeat N` re-summarizes the same trip as an N-copy batch: every
    // copy after the first hits the warm route cache (when enabled), so
    // the printed hit rate shows what a repeated-pair serving workload
    // gets out of `--route-cache`.
    if repeat > 1 {
        let trips = vec![trip.raw.clone(); repeat];
        let t0 = std::time::Instant::now();
        let results = if k == 0 {
            summarizer.summarize_batch(&trips)
        } else {
            summarizer.summarize_batch_k(&trips, k)
        };
        let elapsed = t0.elapsed();
        let ok = results.iter().filter(|r| r.is_ok()).count();
        eprintln!("\nre-summarized {repeat} copies in {elapsed:.1?} ({ok} ok)");
        match summarizer.route_cache_stats() {
            Some(s) => eprintln!(
                "route cache: {} of {} lookups hit ({:.1}% hit rate), {} evictions",
                s.hits,
                s.hits + s.misses,
                100.0 * s.hit_rate(),
                s.evictions
            ),
            None => eprintln!("route cache disabled (enable with --route-cache N)"),
        }
    }
    Ok(())
}

/// Audits (and under repair/drop policies, repairs) a trip file without
/// summarizing it: prints the defect report, per-segment sizes, and
/// optionally writes the longest surviving segment back out as CSV.
fn cmd_sanitize(args: &[String], obs: &Obs) -> Result<(), String> {
    let opts = Opts::new(args);
    let file = PathBuf::from(opts.require("--trip")?);
    let max_speed: f64 = opts.parse("--max-speed", 70.0)?;
    let max_gap: i64 = opts.parse("--max-gap", 1800)?;

    let pts = read_trip_lenient(&file)?;

    let cfg = SanitizeConfig {
        policy: obs.sanitize.unwrap_or_default(),
        max_speed_mps: max_speed,
        max_gap_secs: max_gap,
    };
    let cleaned = sanitize(&pts, &cfg).map_err(|e| format!("{}: {e}", file.display()))?;
    cleaned.report.record_into(&obs.recorder);
    println!("{}", cleaned.report);
    for (i, seg) in cleaned.segments.iter().enumerate() {
        println!(
            "  segment {i}: {} samples, t={}..{}",
            seg.len(),
            seg[0].t.0,
            seg[seg.len() - 1].t.0
        );
    }
    if let Some(out) = opts.get("--out") {
        let longest = cleaned
            .longest()
            .ok_or_else(|| format!("{}: no usable segment to write", file.display()))?;
        let traj = RawTrajectory::try_new(longest.to_vec()).map_err(|e| e.to_string())?;
        write_trip_file(Path::new(out), &traj)?;
        eprintln!("wrote repaired trajectory ({} samples) to {out}", traj.len());
    }
    Ok(())
}

fn cmd_gen(args: &[String], obs: &Obs) -> Result<(), String> {
    let opts = Opts::new(args);
    let dir = PathBuf::from(opts.require("--dir")?);
    let trips: usize = opts.parse("--trips", 20)?;
    let seed: u64 = opts.parse("--seed", 2024)?;

    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let cfg = WorldConfig::small(seed);
    std::fs::write(
        dir.join("world.json"),
        serde_json::to_string_pretty(&cfg).expect("config serializes"),
    )
    .map_err(|e| e.to_string())?;

    let stack = Stack::from_config(cfg, obs);
    let gen = TripGenerator::new(&stack.world, TripConfig::default());
    let corpus = gen.generate_corpus(trips, seed ^ 0x6E6);
    for (i, trip) in corpus.iter().enumerate() {
        let path = dir.join(format!("trip_{i:03}.csv"));
        write_trip_file(&path, &trip.raw)?;
    }
    println!("wrote {} trips and world.json to {}", corpus.len(), dir.display());
    Ok(())
}

/// Target encodings of `convert`. `json` is the model encoding; trips
/// convert between `csv`, `jsonl`, and `stc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConvertTarget {
    Stc,
    Csv,
    Jsonl,
    Json,
}

impl std::str::FromStr for ConvertTarget {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "stc" => Ok(Self::Stc),
            "csv" => Ok(Self::Csv),
            "jsonl" => Ok(Self::Jsonl),
            "json" => Ok(Self::Json),
            other => Err(format!("unknown target {other:?} (expected stc, csv, jsonl, or json)")),
        }
    }
}

fn file_len(path: &Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// Sanitizes one lenient point run down to its longest valid segment.
fn sanitize_run(
    pts: &[RawPoint],
    policy: SanitizePolicy,
    path: &Path,
    obs: &Obs,
) -> Result<RawTrajectory, String> {
    let cfg = SanitizeConfig::with_policy(policy);
    let cleaned = sanitize(pts, &cfg).map_err(|e| format!("{}: {e}", path.display()))?;
    cleaned.report.record_into(&obs.recorder);
    let longest = cleaned
        .longest()
        .ok_or_else(|| format!("{}: no usable segment after sanitization", path.display()))?;
    RawTrajectory::try_new(longest.to_vec()).map_err(|e| format!("{}: {e}", path.display()))
}

/// Re-encodes trips or models between the text formats and STC1.
///
/// ```text
/// convert --dir DIR --out trips.stc                    bundle a corpus
/// convert --in trips.stc --out-dir DIR --to csv        split it back out
/// convert --in trip_000.csv --out trip_000.jsonl       single trip
/// convert --in model.stc --out model.json              model re-encode
/// ```
///
/// Model inputs (`.json`, or an STC1 container whose kind is "model") go
/// through the model codecs; everything else is trips. `--sanitize`
/// applies the usual repair policy per input trip before writing. Emits
/// the `io.*` counters (DESIGN.md §13.4) into the global recorder.
fn cmd_convert(args: &[String], obs: &Obs) -> Result<(), String> {
    let opts = Opts::new(args);
    let out = opts.get("--out").map(PathBuf::from);
    let out_dir = opts.get("--out-dir").map(PathBuf::from);
    if out.is_some() == out_dir.is_some() {
        return Err("convert takes exactly one of --out FILE or --out-dir DIR".to_owned());
    }
    let target = match opts.get("--to") {
        Some(t) => t.parse::<ConvertTarget>()?,
        None => out
            .as_ref()
            .and_then(|p| p.extension().and_then(|x| x.to_str()))
            .and_then(|x| x.parse::<ConvertTarget>().ok())
            .ok_or("cannot infer the target encoding; pass --to stc|csv|jsonl|json")?,
    };

    // Single-file model inputs route through the model codecs.
    if let Some(file) = opts.get("--in") {
        let path = Path::new(file);
        let looks_model = match path.extension().and_then(|x| x.to_str()) {
            Some("json") => true,
            Some("stc") => stc_holds_model(path)?,
            _ => false,
        };
        if looks_model {
            return convert_model(path, target, out.as_deref(), obs);
        }
    }

    let inputs: Vec<PathBuf> = if let Some(dir) = opts.get("--dir") {
        let dir = Path::new(dir);
        let files = trip_files(dir)?;
        if files.is_empty() {
            return Err(format!("no trip_*.csv files in {}", dir.display()));
        }
        files
    } else {
        vec![PathBuf::from(opts.require("--in")?)]
    };

    // Load every trip; an `.stc` input may carry many per file.
    let mut trips: Vec<RawTrajectory> = Vec::new();
    let mut bytes_read = 0u64;
    for path in &inputs {
        bytes_read += file_len(path);
        if TripFormat::of(path) == TripFormat::Stc {
            let bytes =
                std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            match obs.sanitize {
                None => trips.extend(
                    read_trips_stc(&bytes).map_err(|e| format!("{}: {e}", path.display()))?,
                ),
                Some(policy) => {
                    let runs = read_raw_trips_stc(&bytes)
                        .map_err(|e| format!("{}: {e}", path.display()))?;
                    for run in &runs {
                        trips.push(sanitize_run(run, policy, path, obs)?);
                    }
                }
            }
        } else {
            match obs.sanitize {
                None => trips.push(read_trip_strict(path)?),
                Some(policy) => {
                    let pts = read_trip_lenient(path)?;
                    trips.push(sanitize_run(&pts, policy, path, obs)?);
                }
            }
        }
    }
    let points_read: u64 = trips.iter().map(|t| t.len() as u64).sum();
    obs.recorder.add("io.trips_read", trips.len() as u64);
    obs.recorder.add("io.points_read", points_read);
    obs.recorder.add("io.bytes_read", bytes_read);

    let mut outputs: Vec<PathBuf> = Vec::new();
    match (target, &out, &out_dir) {
        (ConvertTarget::Json, _, _) => {
            return Err(
                "json is the model encoding; trips convert to stc, csv, or jsonl".to_owned()
            );
        }
        (ConvertTarget::Stc, Some(path), _) => {
            std::fs::write(path, write_trips_stc(&trips))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            outputs.push(path.clone());
        }
        (ConvertTarget::Stc, None, _) => {
            return Err("--to stc writes one container; pass --out FILE".to_owned());
        }
        (text, Some(path), _) => {
            let [trip] = &trips[..] else {
                return Err(format!(
                    "{} trips to write; pass --out-dir DIR for one file per trip",
                    trips.len()
                ));
            };
            let fmt = if text == ConvertTarget::Csv { TripFormat::Csv } else { TripFormat::Jsonl };
            write_trip_as(path, trip, fmt)?;
            outputs.push(path.clone());
        }
        (text, None, Some(dir)) => {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            let (fmt, ext) = if text == ConvertTarget::Csv {
                (TripFormat::Csv, "csv")
            } else {
                (TripFormat::Jsonl, "jsonl")
            };
            for (i, trip) in trips.iter().enumerate() {
                let path = dir.join(format!("trip_{i:03}.{ext}"));
                write_trip_as(&path, trip, fmt)?;
                outputs.push(path);
            }
        }
        (_, None, None) => unreachable!("out xor out_dir checked above"),
    }
    let bytes_written: u64 = outputs.iter().map(|p| file_len(p)).sum();
    obs.recorder.add("io.trips_written", trips.len() as u64);
    obs.recorder.add("io.points_written", points_read);
    obs.recorder.add("io.bytes_written", bytes_written);
    println!(
        "converted {} trips ({points_read} points, {bytes_read} bytes in) to {} file(s) \
         ({bytes_written} bytes out)",
        trips.len(),
        outputs.len(),
    );
    Ok(())
}

/// True when `path` is an STC1 container of kind "model" (header peek, no
/// full read).
fn stc_holds_model(path: &Path) -> Result<bool, String> {
    use std::io::Read;
    let mut f =
        std::fs::File::open(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut hdr = [0u8; 8];
    let mut filled = 0usize;
    while filled < hdr.len() {
        match f.read(&mut hdr[filled..]) {
            Ok(0) => return Ok(false),
            Ok(n) => filled += n,
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        }
    }
    Ok(hdr[..4] == *b"STC1" && u16::from_le_bytes([hdr[6], hdr[7]]) == stmaker_io::stc::KIND_MODEL)
}

fn convert_model(
    path: &Path,
    target: ConvertTarget,
    out: Option<&Path>,
    obs: &Obs,
) -> Result<(), String> {
    let out = out.ok_or("model conversion writes one file; pass --out FILE")?;
    let format = match target {
        ConvertTarget::Json => ModelFormat::Json,
        ConvertTarget::Stc => ModelFormat::Stc,
        _ => return Err("a model converts to json or stc only".to_owned()),
    };
    let bytes_read = file_len(path);
    let model = read_model_file_as(path, None)
        .map_err(|e| format!("cannot load model {}: {e}", path.display()))?;
    write_model_file(out, &model, format)
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    obs.recorder.add("io.bytes_read", bytes_read);
    obs.recorder.add("io.bytes_written", file_len(out));
    println!("converted model {} to {} ({format})", path.display(), out.display());
    Ok(())
}

fn cmd_train(args: &[String], obs: &Obs) -> Result<(), String> {
    let opts = Opts::new(args);
    let dir = PathBuf::from(opts.require("--dir")?);
    let n_train: usize = opts.parse("--n-train", 300)?;
    let out = opts.get("--out").map(PathBuf::from).unwrap_or_else(|| dir.join("model.json"));
    // `--format` forces the encoding; otherwise an `.stc` extension selects
    // the columnar binary and anything else stays canonical JSON.
    let format = model_format_opt(&opts)?.unwrap_or(
        if out.extension().map(|x| x == "stc").unwrap_or(false) {
            ModelFormat::Stc
        } else {
            ModelFormat::Json
        },
    );

    let stack = Stack::from_config(load_world_config(&dir)?, obs);
    let summarizer = stack.train(n_train);
    write_model_file(&out, summarizer.model(), format)
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "trained on {} trips; model saved to {} ({format})",
        summarizer.model().n_trained,
        out.display()
    );
    Ok(())
}

fn cmd_summarize(args: &[String], obs: &Obs) -> Result<(), String> {
    let opts = Opts::new(args);
    let dir = PathBuf::from(opts.require("--dir")?);
    let trip_file = opts.require("--trip")?;
    let k: usize = opts.parse("--k", 0)?;

    let trip_path = dir.join(trip_file);
    let points = load_trip_points(&trip_path, obs)?;

    let stack = Stack::from_config(load_world_config(&dir)?, obs);
    let summarizer = stack.summarizer(&opts)?;
    let summary = summarize_points_cmd(&summarizer, points, k)?;

    println!("{}", summary.text);
    if let Some(out) = opts.get("--geojson") {
        let gj = summary_to_geojson(&summary, &stack.world.registry);
        std::fs::write(out, serde_json::to_string_pretty(&gj).expect("geojson serializes"))
            .map_err(|e| e.to_string())?;
        eprintln!("wrote {out}");
    }
    Ok(())
}

fn cmd_group(args: &[String], obs: &Obs) -> Result<(), String> {
    let opts = Opts::new(args);
    let dir = PathBuf::from(opts.require("--dir")?);
    let min_share: f64 = opts.parse("--min-share", 0.15)?;

    let files = trip_files(&dir)?;
    if files.is_empty() {
        return Err(format!("no trip_*.csv files in {}", dir.display()));
    }
    // Unparsable files are skipped with a warning — one corrupt upload must
    // not take the whole corridor report down.
    let mut trips: Vec<RawTrajectory> = Vec::new();
    for p in &files {
        match std::fs::read_to_string(p)
            .map_err(|e| e.to_string())
            .and_then(|body| read_trajectory_csv(&body).map_err(|e| e.to_string()))
        {
            Ok(t) => trips.push(t),
            Err(e) => eprintln!("warning: skipping {}: {e}", p.display()),
        }
    }
    if trips.is_empty() {
        return Err("no readable trips in the directory".to_owned());
    }

    let stack = Stack::from_config(load_world_config(&dir)?, obs);
    let summarizer = stack.summarizer(&opts)?;
    let group = summarizer.summarize_group(&trips, min_share).map_err(|e| e.to_string())?;
    println!("{}", group.text);
    println!(
        "\n({} of {} trips summarized; drill-down below)",
        group.n_summarized, group.n_trajectories
    );
    for (i, m) in group.members.iter().enumerate() {
        println!("  [{i:02}] {}", m.text);
    }
    Ok(())
}

fn cmd_search(args: &[String], obs: &Obs) -> Result<(), String> {
    let opts = Opts::new(args);
    let dir = PathBuf::from(opts.require("--dir")?);
    let query = opts.require("--query")?;
    let top: usize = opts.parse("--top", 5)?;

    let files = trip_files(&dir)?;
    if files.is_empty() {
        return Err(format!("no trip_*.csv files in {}", dir.display()));
    }
    let stack = Stack::from_config(load_world_config(&dir)?, obs);
    let summarizer = stack.summarizer(&opts)?;

    let mut names = Vec::new();
    let mut texts = Vec::new();
    for p in &files {
        let parsed = std::fs::read_to_string(p)
            .map_err(|e| e.to_string())
            .and_then(|body| read_trajectory_csv(&body).map_err(|e| e.to_string()));
        let raw = match parsed {
            Ok(raw) => raw,
            Err(e) => {
                eprintln!("warning: skipping {}: {e}", p.display());
                continue;
            }
        };
        if let Ok(s) = summarizer.summarize(&raw) {
            names.push(p.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_owned());
            texts.push(s.text);
        }
    }
    let index = InvertedIndex::build(&texts);
    let hits = index.search(query, top);
    if hits.is_empty() {
        println!("no summaries match {query:?}");
        return Ok(());
    }
    println!("top matches for {query:?}:");
    for (doc, score) in hits {
        println!("  {:.3}  {}  {}", score, names[doc], texts[doc]);
    }
    Ok(())
}

/// Serves the summarization stack over HTTP until `POST /shutdown`.
fn cmd_serve(args: &[String], obs: &Obs) -> Result<(), String> {
    let opts = Opts::new(args);
    let dir = PathBuf::from(opts.require("--dir")?);
    let addr = opts.get("--addr").unwrap_or("127.0.0.1:8080").to_owned();
    let workers: usize = opts.parse("--workers", 0)?;
    let queue_depth: usize = opts.parse("--queue", 64)?;
    let n_train: usize = opts.parse("--n-train", 300)?;

    let mut stack = Stack::from_config(load_world_config(&dir)?, obs);
    // A serving process always publishes `/metrics`: without the global
    // `--trace`/`--metrics-json` flags the CLI recorder is disabled, so
    // force one on rather than serving an empty report.
    if !stack.recorder.is_enabled() {
        stack.recorder = Recorder::enabled();
    }
    let model = match opts.get("--model") {
        Some(path) => {
            eprintln!("loading model {path}…");
            load_model(path, &opts)?
        }
        None => stack.train(n_train).into_model(),
    };
    let cfg = ServeConfig {
        addr,
        workers,
        queue_depth,
        sanitize: obs.sanitize,
        ..ServeConfig::default()
    };
    let server = Server::bind(&stack.world.net, &stack.world.registry, model, stack.config(), cfg)
        .map_err(|e| e.to_string())?;
    eprintln!(
        "serving on http://{} ({} workers, queue {queue_depth}); POST /shutdown to drain",
        server.local_addr(),
        server.worker_count(),
    );
    server.run();
    eprintln!("drained");
    Ok(())
}

// ---------------------------------------------------------------------------
// `obs` — offline report/trace tooling. No world, no recorder; reads the
// files that `--metrics-json` / `--trace-out` wrote.
//
// Exit-code contract (documented in USAGE, covered by the exit_codes
// integration tests):
//   0  — clean, or findings downgraded by `--timing-warn-only`
//   1  — timing regression (`obs diff`), or any generic runtime error
//   2  — hard structural loss ONLY: the new report dropped metrics/spans
//        the base had (`obs diff`)
//   64 — usage error (EX_USAGE): bad/missing flags or arguments, or an
//        unreadable/unparseable report/trace input file. Distinct from 2
//        so CI can tell "the pipeline lost telemetry" from "the diff was
//        invoked wrong / fed a bad file".

/// EX_USAGE from BSD sysexits: the command line (or an input file named on
/// it) was unusable — not a verdict about the data being compared.
const EXIT_USAGE: u8 = 64;

fn usage_error(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::from(EXIT_USAGE)
}

fn cmd_obs(args: &[String]) -> ExitCode {
    match args.first().map(|s| s.as_str()) {
        Some("diff") => cmd_obs_diff(&args[1..]),
        Some("top") => cmd_obs_top(&args[1..]),
        _ => usage_error(
            "usage: stmaker-cli obs <diff BASE.json NEW.json [--threshold X] \
             [--min-base-ms MS] [--timing-warn-only] | top TRACE.json [--depth N]>",
        ),
    }
}

fn load_report(path: &str) -> Result<stmaker_obs::Report, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    stmaker_obs::Report::from_json(&body).map_err(|e| format!("{path}: {e}"))
}

/// Compares two `--metrics-json` reports. Exit codes: 0 = clean (or
/// timing findings under `--timing-warn-only`), 1 = timing regression,
/// 2 = structural loss (missing metric/span), 64 = usage error including
/// a missing/unparseable report file — an unreadable input is not a
/// regression verdict.
fn cmd_obs_diff(args: &[String]) -> ExitCode {
    let mut paths: Vec<&str> = Vec::new();
    let mut opts = stmaker_obs::DiffOptions::default();
    let mut timing_warn_only = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--timing-warn-only" => {
                timing_warn_only = true;
                i += 1;
            }
            key @ ("--threshold" | "--min-base-ms") => {
                let Some(v) = args.get(i + 1) else {
                    return usage_error(&format!("missing value after {key}"));
                };
                let Ok(parsed) = v.parse::<f64>() else {
                    return usage_error(&format!("bad value for {key}: {v:?}"));
                };
                if key == "--threshold" {
                    opts.threshold = parsed;
                } else {
                    opts.min_base_ms = parsed;
                }
                i += 2;
            }
            p => {
                paths.push(p);
                i += 1;
            }
        }
    }
    let [base_path, new_path] = paths[..] else {
        return usage_error("usage: stmaker-cli obs diff BASE.json NEW.json");
    };
    // An input that cannot be read or parsed is a usage error, NOT exit 2:
    // 2 is the "hard key-loss" verdict, and conflating the two would let a
    // typo'd path masquerade as a telemetry regression in CI.
    let (base, new) = match (load_report(base_path), load_report(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => return usage_error(&e),
    };
    print!("{}", stmaker_obs::render_deltas(&base, &new));
    let findings = stmaker_obs::diff(&base, &new, &opts);
    let hard = findings.iter().filter(|f| f.severity == stmaker_obs::Severity::Hard).count();
    let soft = findings.len() - hard;
    for f in &findings {
        let tag = match f.severity {
            stmaker_obs::Severity::Hard => "HARD",
            stmaker_obs::Severity::Soft => "soft",
        };
        println!("{tag}: {}", f.message);
    }
    if hard > 0 {
        eprintln!("{hard} structural regression(s): {new_path} lost metrics {base_path} had");
        ExitCode::from(2)
    } else if soft > 0 && !timing_warn_only {
        eprintln!("{soft} timing regression(s) past {}x", opts.threshold);
        ExitCode::FAILURE
    } else {
        if soft > 0 {
            eprintln!("{soft} timing regression(s) — reported as warnings (--timing-warn-only)");
        } else {
            println!("no regressions");
        }
        ExitCode::SUCCESS
    }
}

/// One aggregated node of the `obs top` tree.
#[derive(Default)]
struct TopNode {
    calls: u64,
    total_us: u64,
    children: std::collections::BTreeMap<String, TopNode>,
}

/// Adds one completed span at `path` (root-to-leaf names).
fn top_record(root: &mut TopNode, path: &[&str], dur_us: u64) {
    let mut node = root;
    for seg in path {
        node = node.children.entry((*seg).to_owned()).or_default();
    }
    node.calls += 1;
    node.total_us += dur_us;
}

/// Aggregates a Chrome trace-event file into a flamegraph-style text
/// tree: per-(pid, tid) begin/end stacks, call paths summed across the
/// run, children sorted slowest-first.
fn top_tree(body: &str, max_depth: usize) -> Result<String, String> {
    let v: serde_json::Value = serde_json::from_str(body).map_err(|e| e.to_string())?;
    let events = v.get("traceEvents").and_then(|e| e.as_array()).ok_or("no traceEvents array")?;
    let mut root = TopNode::default();
    let mut stacks: std::collections::BTreeMap<(u64, u64), Vec<(String, u64)>> =
        std::collections::BTreeMap::new();
    for e in events {
        let ph = e.get("ph").and_then(|p| p.as_str()).unwrap_or("");
        let name = e.get("name").and_then(|n| n.as_str()).unwrap_or("");
        let key = (
            e.get("pid").and_then(|p| p.as_u64()).unwrap_or(0),
            e.get("tid").and_then(|t| t.as_u64()).unwrap_or(0),
        );
        let ts = e.get("ts").and_then(|t| t.as_u64()).unwrap_or(0);
        let stack = stacks.entry(key).or_default();
        match ph {
            "B" => stack.push((name.to_owned(), ts)),
            "E" => {
                if let Some((opened, begin_ts)) = stack.pop() {
                    let path: Vec<&str> =
                        stack.iter().map(|(n, _)| n.as_str()).chain([opened.as_str()]).collect();
                    top_record(&mut root, &path, ts.saturating_sub(begin_ts));
                }
            }
            "X" | "i" => {
                let dur = e.get("dur").and_then(|d| d.as_u64()).unwrap_or(0);
                let path: Vec<&str> = stack.iter().map(|(n, _)| n.as_str()).chain([name]).collect();
                top_record(&mut root, &path, dur);
            }
            _ => {}
        }
    }
    let mut out = String::new();
    render_top(&root, 0, max_depth, &mut out);
    if out.is_empty() {
        out.push_str("(no spans in trace)\n");
    }
    Ok(out)
}

fn render_top(node: &TopNode, depth: usize, max_depth: usize, out: &mut String) {
    if depth >= max_depth {
        return;
    }
    let mut kids: Vec<(&String, &TopNode)> = node.children.iter().collect();
    kids.sort_by(|a, b| b.1.total_us.cmp(&a.1.total_us).then(a.0.cmp(b.0)));
    for (name, child) in kids {
        let ms = child.total_us as f64 / 1e3; // cast-ok: µs total for display
        out.push_str(&format!(
            "{}{name}  calls {}  total {ms:.3} ms\n",
            "  ".repeat(depth),
            child.calls,
        ));
        render_top(child, depth + 1, max_depth, out);
    }
}

/// Prints the aggregated span tree of a `--trace-out` file.
fn cmd_obs_top(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut depth = usize::MAX;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--depth" => {
                let Some(v) = args.get(i + 1) else {
                    return usage_error("missing value after --depth");
                };
                let Ok(parsed) = v.parse::<usize>() else {
                    return usage_error(&format!("bad value for --depth: {v:?}"));
                };
                depth = parsed;
                i += 2;
            }
            p => {
                path = Some(p.to_owned());
                i += 1;
            }
        }
    }
    let Some(path) = path else {
        return usage_error("usage: stmaker-cli obs top TRACE.json [--depth N]");
    };
    let body = match std::fs::read_to_string(&path) {
        Ok(b) => b,
        Err(e) => return usage_error(&format!("cannot read {path}: {e}")),
    };
    match top_tree(&body, depth) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => usage_error(&format!("{path}: {e}")),
    }
}
