//! Map matching: attributing GPS samples to road edges.
//!
//! The routing features of Sec. III-A (grade of road, road width, traffic
//! direction) "can be extracted from the digital map we have" — which
//! presupposes knowing *which road* each part of a trajectory travelled.
//! This crate supplies that substrate with two matchers:
//!
//! * [`MapMatcher::match_nearest`] — per-point nearest-edge assignment, exact and fast
//!   when GPS noise is small relative to block size;
//! * [`MapMatcher::match_hmm`] — a Viterbi matcher in the spirit of Newson & Krumm
//!   (SIGSPATIAL'09, the paper's reference \[24\]): Gaussian emission on
//!   point-to-edge distance, transitions preferring to stay on the same
//!   edge or move to a topologically connected one. Robust to noise spikes
//!   that flip nearest-edge assignments across parallel roads.
//!
//! [`dominant_edge`] reduces a sample run to the single edge carrying most
//! of it — the edge whose attributes become the segment's routing features.

use std::collections::HashMap;

use stmaker_geo::{GridIndex, LocalFrame, RTree, SpatialIndexKind};
use stmaker_road::{EdgeId, RoadNetwork};
use stmaker_trajectory::RawPoint;

/// Tunables for both matchers.
#[derive(Debug, Clone, Copy)]
pub struct MatchParams {
    /// Candidate edges are searched within this radius of each sample, m.
    pub candidate_radius_m: f64,
    /// Gaussian emission sigma (GPS noise scale), metres.
    pub sigma_m: f64,
    /// Log-penalty for transitioning between unconnected edges.
    pub jump_penalty: f64,
    /// Log-penalty for transitioning between distinct but connected edges.
    pub switch_penalty: f64,
}

impl Default for MatchParams {
    fn default() -> Self {
        Self { candidate_radius_m: 200.0, sigma_m: 15.0, jump_penalty: 14.0, switch_penalty: 1.5 }
    }
}

/// The matcher's candidate pre-filter: resampled edge points in a grid, or
/// exact edge segments in a packed R-tree. Either way the hits are only a
/// superset filter — `candidates()` re-refines every edge against its true
/// geometry, so both backends produce identical candidate lists.
enum EdgeIndex {
    Grid(GridIndex<EdgeId>),
    Segments(RTree<EdgeId>),
}

/// A reusable matcher holding the network's spatial index.
pub struct MapMatcher<'a> {
    net: &'a RoadNetwork,
    index: EdgeIndex,
    /// Arc spacing of the indexed edge samples, metres (grid backend only,
    /// but the query padding is kept identical for both backends so the
    /// pre-filter supersets match).
    sample_m: f64,
    params: MatchParams,
}

impl<'a> MapMatcher<'a> {
    /// Builds a matcher with the default spatial backend (R-tree).
    pub fn new(net: &'a RoadNetwork, params: MatchParams) -> Self {
        Self::with_index(net, params, SpatialIndexKind::default())
    }

    /// Builds a matcher with an explicit spatial backend (indexes the
    /// network's edge geometry once).
    pub fn with_index(net: &'a RoadNetwork, params: MatchParams, kind: SpatialIndexKind) -> Self {
        // Sample spacing must be well under the candidate radius: with
        // spacing == radius, a point at perpendicular distance just inside
        // the radius but midway between two samples sits √(r² + (s/2)²) > r
        // from every sample and the edge silently drops out of the
        // candidate set. The index query below pads the radius by the
        // worst-case half-spacing instead of relying on luck. (The segment
        // R-tree needs no such padding — its distances are exact — but it
        // uses the same padded radius so both pre-filters select the same
        // superset of edges.)
        let sample_m = (params.candidate_radius_m / 4.0).clamp(25.0, 100.0);
        let index = match kind {
            SpatialIndexKind::Grid => EdgeIndex::Grid(net.edge_index(sample_m)),
            SpatialIndexKind::Rtree => EdgeIndex::Segments(net.edge_segment_rtree()),
        };
        Self { net, index, sample_m, params }
    }

    /// The underlying network.
    pub fn network(&self) -> &RoadNetwork {
        self.net
    }

    /// Distance from `p` to edge `e`'s geometry, metres.
    fn dist_to_edge(&self, frame: &LocalFrame, p: &RawPoint, e: EdgeId) -> f64 {
        self.net.edge(e).geometry.project(frame, &p.point).distance_m
    }

    /// Candidate edges near `p` with their true geometric distances.
    fn candidates(&self, frame: &LocalFrame, p: &RawPoint) -> Vec<(EdgeId, f64)> {
        let mut seen: Vec<(EdgeId, f64)> = Vec::new();
        let query_radius = self.params.candidate_radius_m + self.sample_m / 2.0;
        let mut hits: Vec<EdgeId> = match &self.index {
            EdgeIndex::Grid(g) => {
                g.within_radius(&p.point, query_radius).into_iter().map(|(e, _)| e).collect()
            }
            EdgeIndex::Segments(t) => {
                t.within_radius(&p.point, query_radius).into_iter().map(|(e, _)| e).collect()
            }
        };
        hits.sort_unstable();
        hits.dedup();
        for e in hits {
            let d = self.dist_to_edge(frame, p, e);
            if d <= self.params.candidate_radius_m {
                seen.push((e, d));
            }
        }
        seen
    }

    /// A local frame anchored at the sample centroid, halving the maximum
    /// equirectangular distortion across a long trajectory compared to
    /// anchoring at the first sample.
    fn frame_for(points: &[RawPoint]) -> LocalFrame {
        let n = points.len() as f64;
        let lat = points.iter().map(|p| p.point.lat).sum::<f64>() / n;
        let lon = points.iter().map(|p| p.point.lon).sum::<f64>() / n;
        LocalFrame::new(stmaker_geo::GeoPoint::new(lat, lon))
    }

    /// Per-point nearest-edge matching. `None` where no edge is within the
    /// candidate radius.
    pub fn match_nearest(&self, points: &[RawPoint]) -> Vec<Option<EdgeId>> {
        if points.is_empty() {
            return Vec::new();
        }
        let frame = Self::frame_for(points);
        points
            .iter()
            .map(|p| {
                self.candidates(&frame, p)
                    .into_iter()
                    .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
                    .map(|(e, _)| e)
            })
            .collect()
    }

    /// Viterbi HMM matching. `None` where no candidates exist; the Viterbi
    /// chain restarts after such gaps.
    pub fn match_hmm(&self, points: &[RawPoint]) -> Vec<Option<EdgeId>> {
        if points.is_empty() {
            return Vec::new();
        }
        let frame = Self::frame_for(points);
        let mut out: Vec<Option<EdgeId>> = vec![None; points.len()];

        // Per-point candidate sets.
        let cands: Vec<Vec<(EdgeId, f64)>> =
            points.iter().map(|p| self.candidates(&frame, p)).collect();

        let sigma2 = 2.0 * self.params.sigma_m * self.params.sigma_m;
        let emission = |d: f64| d * d / sigma2; // negative log-likelihood

        let mut i = 0;
        while i < points.len() {
            if cands[i].is_empty() {
                i += 1;
                continue;
            }
            // Run one Viterbi chain over the maximal candidate-bearing run
            // starting at i.
            let mut run_end = i;
            while run_end + 1 < points.len() && !cands[run_end + 1].is_empty() {
                run_end += 1;
            }
            self.viterbi_run(&cands[i..=run_end], &mut out[i..=run_end], emission);
            i = run_end + 1;
        }
        out
    }

    fn viterbi_run(
        &self,
        cands: &[Vec<(EdgeId, f64)>],
        out: &mut [Option<EdgeId>],
        emission: impl Fn(f64) -> f64,
    ) {
        let n = cands.len();
        // cost[t][k], backpointer[t][k]
        let mut cost: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut back: Vec<Vec<usize>> = Vec::with_capacity(n);
        cost.push(cands[0].iter().map(|(_, d)| emission(*d)).collect());
        back.push(vec![0; cands[0].len()]);

        for t in 1..n {
            let mut c_t = Vec::with_capacity(cands[t].len());
            let mut b_t = Vec::with_capacity(cands[t].len());
            for (e, d) in &cands[t] {
                let mut best = f64::INFINITY;
                let mut arg = 0;
                for (k, (pe, _)) in cands[t - 1].iter().enumerate() {
                    let trans = if pe == e {
                        0.0
                    } else if self.edges_connected(*pe, *e) {
                        self.params.switch_penalty
                    } else {
                        self.params.jump_penalty
                    };
                    let c = cost[t - 1][k] + trans;
                    if c < best {
                        best = c;
                        arg = k;
                    }
                }
                c_t.push(best + emission(*d));
                b_t.push(arg);
            }
            cost.push(c_t);
            back.push(b_t);
        }

        // Backtrack from the best terminal state.
        let mut k = cost[n - 1]
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        for t in (0..n).rev() {
            out[t] = Some(cands[t][k].0);
            k = back[t][k];
        }
    }

    fn edges_connected(&self, a: EdgeId, b: EdgeId) -> bool {
        let ea = self.net.edge(a);
        let eb = self.net.edge(b);
        ea.from == eb.from || ea.from == eb.to || ea.to == eb.from || ea.to == eb.to
    }
}

/// The edge carrying the plurality of matched samples, if any sample matched.
/// Ties break towards the lower edge id for determinism.
pub fn dominant_edge(matches: &[Option<EdgeId>]) -> Option<EdgeId> {
    let mut counts: HashMap<EdgeId, usize> = HashMap::new();
    for e in matches.iter().flatten() {
        *counts.entry(*e).or_insert(0) += 1;
    }
    // lint: ordered — max_by applies a total order (count, then lower edge id) so the reduction is order-free
    counts.into_iter().max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0))).map(|(e, _)| e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmaker_geo::GeoPoint;
    use stmaker_road::{Direction, RoadGrade};
    use stmaker_trajectory::Timestamp;

    fn base() -> GeoPoint {
        GeoPoint::new(39.9, 116.4)
    }

    /// Two parallel east-west roads 200 m apart plus a connector.
    fn parallel_roads() -> (RoadNetwork, EdgeId, EdgeId, EdgeId) {
        let mut net = RoadNetwork::new();
        let a0 = net.add_node(base());
        let a1 = net.add_node(base().destination(90.0, 2000.0));
        let b0 = net.add_node(base().destination(0.0, 200.0));
        let b1 = net.add_node(base().destination(0.0, 200.0).destination(90.0, 2000.0));
        let south = net.add_edge(a0, a1, RoadGrade::National, 16.0, Direction::TwoWay, "South Rd");
        let north = net.add_edge(b0, b1, RoadGrade::County, 9.0, Direction::TwoWay, "North Rd");
        let conn = net.add_edge(a1, b1, RoadGrade::Feeder, 4.5, Direction::TwoWay, "Connector");
        (net, south, north, conn)
    }

    fn pts_along(
        from: GeoPoint,
        bearing: f64,
        n: usize,
        step_m: f64,
        lateral: &[f64],
    ) -> Vec<RawPoint> {
        (0..n)
            .map(|i| {
                let on_road = from.destination(bearing, step_m * i as f64);
                let off = lateral[i % lateral.len()];
                let p = if off == 0.0 {
                    on_road
                } else {
                    on_road.destination(if off > 0.0 { 0.0 } else { 180.0 }, off.abs())
                };
                RawPoint { point: p, t: Timestamp(10 * i as i64) }
            })
            .collect()
    }

    #[test]
    fn nearest_matches_points_on_road() {
        let (net, south, _, _) = parallel_roads();
        let m = MapMatcher::new(&net, MatchParams::default());
        let pts = pts_along(base(), 90.0, 10, 200.0, &[0.0]);
        let got = m.match_nearest(&pts);
        assert!(got.iter().all(|e| *e == Some(south)));
    }

    #[test]
    fn nearest_returns_none_far_from_roads() {
        let (net, _, _, _) = parallel_roads();
        let m = MapMatcher::new(&net, MatchParams::default());
        let far = base().destination(180.0, 3_000.0);
        let pts = pts_along(far, 90.0, 5, 100.0, &[0.0]);
        let got = m.match_nearest(&pts);
        assert!(got.iter().all(|e| e.is_none()));
    }

    #[test]
    fn hmm_smooths_noise_spikes_nearest_cannot() {
        let (net, south, north, _) = parallel_roads();
        let m = MapMatcher::new(&net, MatchParams::default());
        // Drive along the south road, but one sample is shoved 120 m north —
        // past the midpoint between roads, so nearest-edge flips to North Rd
        // (80 m vs 120 m), while for the HMM the emission gap is smaller
        // than two jump penalties and the chain stays put.
        let mut pts = pts_along(base(), 90.0, 15, 120.0, &[0.0]);
        let spiked = pts[7].point.destination(0.0, 120.0);
        pts[7].point = spiked;
        let nearest = m.match_nearest(&pts);
        assert_eq!(nearest[7], Some(north), "sanity: the spike fools nearest-edge");
        let hmm = m.match_hmm(&pts);
        assert!(
            hmm.iter().all(|e| *e == Some(south)),
            "HMM must keep the chain on the south road: {hmm:?}"
        );
    }

    #[test]
    fn hmm_allows_switch_at_connected_corner() {
        let (net, south, _, conn) = parallel_roads();
        let m = MapMatcher::new(&net, MatchParams::default());
        // East along South Rd to its end, then north up the connector.
        let mut pts = pts_along(base(), 90.0, 10, 220.0, &[0.0]);
        let corner = base().destination(90.0, 2000.0);
        for i in 1..=3 {
            pts.push(RawPoint {
                point: corner.destination(0.0, 60.0 * i as f64),
                t: Timestamp(1000 + 10 * i as i64),
            });
        }
        let got = m.match_hmm(&pts);
        assert_eq!(got[0], Some(south));
        assert_eq!(*got.last().unwrap(), Some(conn));
    }

    #[test]
    fn hmm_restarts_after_gap() {
        let (net, south, north, _) = parallel_roads();
        let m = MapMatcher::new(&net, MatchParams::default());
        let mut pts = pts_along(base(), 90.0, 5, 150.0, &[0.0]);
        // A burst of off-map samples (tunnel), then resume on the north road.
        let off_map = base().destination(180.0, 2_000.0);
        for i in 0..3 {
            pts.push(RawPoint { point: off_map, t: Timestamp(500 + i * 10) });
        }
        let north_start = base().destination(0.0, 200.0);
        pts.extend(pts_along(north_start, 90.0, 5, 150.0, &[0.0]).into_iter().map(|mut p| {
            p.t = Timestamp(p.t.0 + 600);
            p
        }));
        let got = m.match_hmm(&pts);
        assert!(got[0..5].iter().all(|e| *e == Some(south)));
        assert!(got[5..8].iter().all(|e| e.is_none()));
        assert!(got[8..].iter().all(|e| *e == Some(north)));
    }

    #[test]
    fn dominant_edge_plurality_and_empty() {
        let (_, south, north, _) = parallel_roads();
        let ms = vec![Some(south), Some(south), Some(north), None, Some(south)];
        assert_eq!(dominant_edge(&ms), Some(south));
        assert_eq!(dominant_edge(&[]), None);
        assert_eq!(dominant_edge(&[None, None]), None);
    }

    #[test]
    fn empty_input_matches_empty() {
        let (net, _, _, _) = parallel_roads();
        let m = MapMatcher::new(&net, MatchParams::default());
        assert!(m.match_nearest(&[]).is_empty());
        assert!(m.match_hmm(&[]).is_empty());
    }

    #[test]
    fn grid_and_rtree_backends_match_identically() {
        let (net, _, _, _) = parallel_roads();
        let grid = MapMatcher::with_index(&net, MatchParams::default(), SpatialIndexKind::Grid);
        let tree = MapMatcher::with_index(&net, MatchParams::default(), SpatialIndexKind::Rtree);
        // A noisy drive that exercises candidates near both roads, the
        // connector corner, and the off-map fallback.
        let mut pts = pts_along(base(), 90.0, 20, 160.0, &[0.0, 40.0, -30.0, 90.0]);
        pts.push(RawPoint { point: base().destination(180.0, 3_000.0), t: Timestamp(10_000) });
        let frame = MapMatcher::frame_for(&pts);
        for p in &pts {
            assert_eq!(grid.candidates(&frame, p), tree.candidates(&frame, p));
        }
        assert_eq!(grid.match_nearest(&pts), tree.match_nearest(&pts));
        assert_eq!(grid.match_hmm(&pts), tree.match_hmm(&pts));
    }
}
