//! Property-based tests for trajectory invariants: stay points, U-turns and
//! speed extraction.

use proptest::prelude::*;
use stmaker_geo::GeoPoint;
use stmaker_trajectory::{
    average_speed_kmh, detect_stay_points, detect_u_turns, speed_profile_kmh, RawPoint,
    RawTrajectory, StayPointParams, Timestamp, UTurnParams,
};

fn base() -> GeoPoint {
    GeoPoint::new(39.9, 116.4)
}

/// A drive composed of random legs `(bearing_choice, length_m, dwell_s)`:
/// after each leg the vehicle may dwell in place.
fn build_trip(legs: &[(u8, f64, i64)], speed_mps: f64) -> RawTrajectory {
    let mut pts = Vec::new();
    let mut pos = base();
    let mut t = 0i64;
    pts.push(RawPoint { point: pos, t: Timestamp(t) });
    for (dir, len, dwell) in legs {
        let bearing = (*dir % 8) as f64 * 45.0;
        let steps = (*len / 50.0).ceil().max(1.0) as usize;
        for _ in 0..steps {
            pos = pos.destination(bearing, len / steps as f64);
            t += ((len / steps as f64) / speed_mps).ceil() as i64;
            pts.push(RawPoint { point: pos, t: Timestamp(t) });
        }
        if *dwell > 0 {
            let reps = (*dwell / 20).max(1);
            for _ in 0..reps {
                t += 20;
                pts.push(RawPoint { point: pos, t: Timestamp(t) });
            }
        }
    }
    RawTrajectory::new(pts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn stay_points_never_overlap_and_respect_thresholds(
        legs in prop::collection::vec((0u8..8, 100.0f64..1500.0, 0i64..500), 1..8),
        speed in 4.0f64..25.0,
    ) {
        let traj = build_trip(&legs, speed);
        let params = StayPointParams::default();
        let stays = detect_stay_points(&traj, params);
        for s in &stays {
            prop_assert!(s.duration_secs() >= params.min_duration_s);
            prop_assert!(s.first_index <= s.last_index);
            // Every member sample is within the anchor radius of the first.
            let anchor = traj.points()[s.first_index].point;
            for p in &traj.points()[s.first_index..=s.last_index] {
                prop_assert!(anchor.haversine_m(&p.point) <= params.max_radius_m + 1e-6);
            }
        }
        for w in stays.windows(2) {
            prop_assert!(w[0].last_index < w[1].first_index, "stays overlap");
        }
    }

    #[test]
    fn long_dwells_are_always_found(
        pre in 200.0f64..2000.0,
        dwell in 150i64..900,
        post in 200.0f64..2000.0,
    ) {
        let traj = build_trip(&[(2, pre, dwell), (2, post, 0)], 12.0);
        let stays = detect_stay_points(&traj, StayPointParams::default());
        prop_assert!(!stays.is_empty(), "a {dwell}-second dwell must be detected");
        let total: i64 = stays.iter().map(|s| s.duration_secs()).sum();
        prop_assert!(total >= dwell - 40, "detected {total} s of {dwell} s dwell");
    }

    #[test]
    fn straight_drives_yield_no_events(
        len in 1_000.0f64..10_000.0,
        speed in 5.0f64..30.0,
    ) {
        let traj = build_trip(&[(2, len, 0)], speed);
        prop_assert!(detect_stay_points(&traj, StayPointParams::default()).is_empty());
        prop_assert!(detect_u_turns(&traj, UTurnParams::default()).is_empty());
    }

    #[test]
    fn out_and_back_always_has_a_u_turn(
        out in 400.0f64..3000.0,
        back in 400.0f64..3000.0,
        dir in 0u8..8,
    ) {
        let traj = build_trip(&[(dir, out, 0), (dir + 4, back, 0)], 12.0);
        let turns = detect_u_turns(&traj, UTurnParams::default());
        prop_assert_eq!(turns.len(), 1, "expected exactly one U-turn");
        // The pivot is near the turnaround point.
        let apex = base().destination((dir % 8) as f64 * 45.0, out);
        prop_assert!(turns[0].point.haversine_m(&apex) < 150.0);
    }

    #[test]
    fn speed_profile_is_consistent_with_average(
        legs in prop::collection::vec((0u8..8, 100.0f64..1200.0, 0i64..100), 1..6),
        speed in 4.0f64..25.0,
    ) {
        let traj = build_trip(&legs, speed);
        let profile = speed_profile_kmh(traj.points());
        prop_assert!(profile.iter().all(|v| *v >= 0.0 && v.is_finite()));
        let avg = average_speed_kmh(traj.points());
        let max = profile.iter().fold(0.0f64, |m, v| m.max(*v));
        // The distance-weighted average cannot exceed the fastest hop.
        prop_assert!(avg <= max + 1e-9, "avg {avg} > max hop {max}");
    }

    #[test]
    fn slice_time_partitions_the_samples(
        legs in prop::collection::vec((0u8..8, 100.0f64..800.0, 0i64..60), 1..5),
        cut_frac in 0.1f64..0.9,
    ) {
        let traj = build_trip(&legs, 10.0);
        let t0 = traj.start().t;
        let t1 = traj.end().t;
        let cut = Timestamp(t0.0 + ((t1.0 - t0.0) as f64 * cut_frac) as i64);
        let left = traj.slice_time(t0, cut);
        let right = traj.slice_time(Timestamp(cut.0 + 1), t1);
        prop_assert_eq!(left.len() + right.len(), traj.len());
    }
}
