//! Trajectory simplification (Douglas–Peucker).
//!
//! The paper's second motivation (Sec. I) is *data volume*: raw and semantic
//! trajectories are "excessive for storage, processing and communication".
//! Summaries are the headline answer; geometric simplification is the
//! standard complementary tool for the raw points themselves, and any
//! trajectory library a deployment would adopt ships one. The implementation
//! is the classic Douglas–Peucker algorithm over the local-frame geometry,
//! keeping the timestamped samples (a sample survives or is dropped whole —
//! no resampling).

use crate::raw::{RawPoint, RawTrajectory};
use stmaker_geo::LocalFrame;

/// Simplifies a trajectory with the Douglas–Peucker algorithm: the result
/// keeps every sample whose removal would displace the polyline by more than
/// `epsilon_m` metres. First and last samples always survive.
pub fn simplify(traj: &RawTrajectory, epsilon_m: f64) -> RawTrajectory {
    assert!(epsilon_m >= 0.0, "epsilon must be non-negative");
    let pts = traj.points();
    if pts.len() <= 2 {
        return traj.clone();
    }
    let frame = LocalFrame::new(pts[0].point);
    let mut keep = vec![false; pts.len()];
    keep[0] = true;
    keep[pts.len() - 1] = true;

    // Iterative Douglas–Peucker (explicit stack; recursion depth on GPS
    // traces can reach the sample count).
    let mut stack = vec![(0usize, pts.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (mut worst, mut worst_d) = (lo + 1, -1.0f64);
        for i in lo + 1..hi {
            let (_, d) = frame.project_onto_segment(&pts[i].point, &pts[lo].point, &pts[hi].point);
            if d > worst_d {
                worst_d = d;
                worst = i;
            }
        }
        if worst_d > epsilon_m {
            keep[worst] = true;
            stack.push((lo, worst));
            stack.push((worst, hi));
        }
    }

    let kept: Vec<RawPoint> = pts.iter().zip(&keep).filter(|(_, k)| **k).map(|(p, _)| *p).collect();
    RawTrajectory::new(kept)
}

/// The maximum displacement (metres) of `simplified` from `original`:
/// the largest distance from any original sample to the simplified
/// polyline. Useful for asserting simplification quality.
pub fn max_deviation_m(original: &RawTrajectory, simplified: &RawTrajectory) -> f64 {
    let frame = LocalFrame::new(original.start().point);
    let poly = simplified.polyline();
    original.points().iter().map(|p| poly.project(&frame, &p.point).distance_m).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::Timestamp;
    use stmaker_geo::GeoPoint;

    fn base() -> GeoPoint {
        GeoPoint::new(39.9, 116.4)
    }

    fn pt(p: GeoPoint, t: i64) -> RawPoint {
        RawPoint { point: p, t: Timestamp(t) }
    }

    /// A straight east line with sub-metre jitter: collapses to 2 points.
    fn jittery_line(n: usize) -> RawTrajectory {
        RawTrajectory::new(
            (0..n)
                .map(|i| {
                    let on = base().destination(90.0, 50.0 * i as f64);
                    let off = if i % 2 == 0 { 0.4 } else { 0.0 };
                    pt(on.destination(0.0, off + 0.001), 10 * i as i64)
                })
                .collect(),
        )
    }

    #[test]
    fn straight_line_collapses_to_endpoints() {
        let traj = jittery_line(50);
        let s = simplify(&traj, 5.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.start(), traj.start());
        assert_eq!(s.end(), traj.end());
    }

    #[test]
    fn corners_are_preserved() {
        // An L: east 1 km then north 1 km.
        let mut pts = Vec::new();
        for i in 0..=20 {
            pts.push(pt(base().destination(90.0, 50.0 * i as f64), i));
        }
        let corner = base().destination(90.0, 1000.0);
        for i in 1..=20 {
            pts.push(pt(corner.destination(0.0, 50.0 * i as f64), 20 + i));
        }
        let traj = RawTrajectory::new(pts);
        let s = simplify(&traj, 10.0);
        assert_eq!(s.len(), 3, "endpoints + the corner");
        assert!(s.points()[1].point.haversine_m(&corner) < 1.0);
    }

    #[test]
    fn epsilon_zero_keeps_meaningful_points() {
        let traj = jittery_line(10);
        let s = simplify(&traj, 0.0);
        // Every jittered point deviates > 0, so all survive.
        assert_eq!(s.len(), traj.len());
    }

    #[test]
    fn deviation_bound_holds() {
        // A wiggly path: simplification must never deviate beyond epsilon.
        let mut pts = Vec::new();
        for i in 0..60 {
            let on = base().destination(90.0, 40.0 * i as f64);
            let off = 25.0 * ((i as f64) * 0.7).sin();
            let p = if off >= 0.0 { on.destination(0.0, off) } else { on.destination(180.0, -off) };
            pts.push(pt(p, i));
        }
        let traj = RawTrajectory::new(pts);
        for eps in [5.0, 15.0, 40.0] {
            let s = simplify(&traj, eps);
            let dev = max_deviation_m(&traj, &s);
            assert!(dev <= eps + 0.5, "eps {eps}: deviation {dev}");
            assert!(s.len() <= traj.len());
        }
    }

    #[test]
    fn larger_epsilon_keeps_fewer_points() {
        let mut pts = Vec::new();
        for i in 0..60 {
            let on = base().destination(90.0, 40.0 * i as f64);
            let off = 30.0 * ((i as f64) * 0.9).sin().abs();
            pts.push(pt(on.destination(0.0, off), i));
        }
        let traj = RawTrajectory::new(pts);
        let fine = simplify(&traj, 2.0);
        let coarse = simplify(&traj, 50.0);
        assert!(coarse.len() < fine.len());
    }

    #[test]
    fn two_point_trajectory_is_unchanged() {
        let traj = RawTrajectory::new(vec![pt(base(), 0), pt(base().destination(90.0, 100.0), 10)]);
        assert_eq!(simplify(&traj, 10.0), traj);
    }

    #[test]
    fn timestamps_survive_simplification() {
        let traj = jittery_line(30);
        let s = simplify(&traj, 5.0);
        // Kept samples are a subsequence of the original.
        let mut iter = traj.points().iter();
        for kept in s.points() {
            assert!(iter.any(|p| p == kept), "simplified point not in original");
        }
    }
}
