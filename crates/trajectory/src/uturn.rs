//! U-turn detection.
//!
//! Sec. III-B: "A U-turn is a sharp directional change of the moving object
//! … people often make a U-turn when they realize they are moving in wrong
//! direction or have missed the destination."
//!
//! Headings are computed over *distance-smoothed* point pairs (points at
//! least `min_leg_m` apart) so that GPS jitter at low speed does not fake
//! reversals; a U-turn is a heading change of at least `min_angle_deg`
//! completed within `max_turn_span_m` of travel.

use crate::raw::{RawPoint, RawTrajectory, Timestamp};
use serde::{Deserialize, Serialize};
use stmaker_geo::{heading_diff_deg, GeoPoint};

/// Thresholds for U-turn detection.
#[derive(Debug, Clone, Copy)]
pub struct UTurnParams {
    /// Minimum heading reversal to call a U-turn, degrees.
    pub min_angle_deg: f64,
    /// Legs shorter than this are merged before heading is measured, metres.
    pub min_leg_m: f64,
    /// The reversal must complete within this much travel, metres.
    pub max_turn_span_m: f64,
}

impl Default for UTurnParams {
    fn default() -> Self {
        Self { min_angle_deg: 150.0, min_leg_m: 30.0, max_turn_span_m: 250.0 }
    }
}

/// A detected U-turn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UTurn {
    /// Where the reversal happened (the pivot sample).
    pub point: GeoPoint,
    /// When it happened.
    pub t: Timestamp,
    /// Index of the pivot sample in the source trajectory.
    pub index: usize,
}

/// Detects U-turns in a raw trajectory.
pub fn detect_u_turns(traj: &RawTrajectory, params: UTurnParams) -> Vec<UTurn> {
    detect_u_turns_in(traj.points(), params)
}

/// U-turn detection over an arbitrary sample slice (used per segment).
pub fn detect_u_turns_in(points: &[RawPoint], params: UTurnParams) -> Vec<UTurn> {
    assert!(params.min_angle_deg > 90.0, "a U-turn needs a reversal, not a turn");
    // Distance-smoothed waypoint chain: indexes into `points` where each
    // consecutive pair is at least `min_leg_m` apart.
    let mut way: Vec<usize> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        match way.last() {
            None => way.push(i),
            Some(&last) => {
                if points[last].point.haversine_m(&p.point) >= params.min_leg_m {
                    way.push(i);
                }
            }
        }
    }
    if way.len() < 3 {
        return Vec::new();
    }

    let mut out: Vec<UTurn> = Vec::new();
    let mut last_pivot_pos: Option<usize> = None; // position within `way`
    for (wi, w) in way.windows(3).enumerate() {
        let (a, b, c) = (w[0], w[1], w[2]);
        let h1 = points[a].point.bearing_deg(&points[b].point);
        let h2 = points[b].point.bearing_deg(&points[c].point);
        let span = points[a].point.haversine_m(&points[b].point)
            + points[b].point.haversine_m(&points[c].point);
        if heading_diff_deg(h1, h2) >= params.min_angle_deg && span <= params.max_turn_span_m {
            let pivot_pos = wi + 1;
            // Merge only reversals detected on *adjacent* smoothed pivots —
            // one physical turn can trip the detector on two or three
            // consecutive windows. A later reversal at the same place (the
            // driver came back and turned again) is a separate U-turn, so
            // spatial proximity alone must not suppress it.
            let dup = last_pivot_pos
                .map(|prev| {
                    pivot_pos - prev <= 2
                        && out
                            .last()
                            .map(|u| points[b].point.haversine_m(&u.point) < params.max_turn_span_m)
                            .unwrap_or(false)
                })
                .unwrap_or(false);
            if !dup {
                out.push(UTurn { point: points[b].point, t: points[b].t, index: b });
            }
            last_pivot_pos = Some(pivot_pos);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> GeoPoint {
        GeoPoint::new(39.9, 116.4)
    }

    fn pt(p: GeoPoint, t: i64) -> RawPoint {
        RawPoint { point: p, t: Timestamp(t) }
    }

    /// Drive east `out_m`, turn around, drive back west `back_m`.
    fn out_and_back(out_m: f64, back_m: f64) -> RawTrajectory {
        let mut pts = Vec::new();
        let step = 50.0;
        let mut t = 0i64;
        let n_out = (out_m / step) as usize;
        for i in 0..=n_out {
            pts.push(pt(base().destination(90.0, step * i as f64), t));
            t += 5;
        }
        let turn_at = base().destination(90.0, out_m);
        let n_back = (back_m / step) as usize;
        for i in 1..=n_back {
            pts.push(pt(turn_at.destination(270.0, step * i as f64), t));
            t += 5;
        }
        RawTrajectory::new(pts)
    }

    #[test]
    fn single_reversal_detected_once() {
        let traj = out_and_back(1000.0, 800.0);
        let turns = detect_u_turns(&traj, UTurnParams::default());
        assert_eq!(turns.len(), 1);
        let turn_at = base().destination(90.0, 1000.0);
        assert!(turns[0].point.haversine_m(&turn_at) < 120.0);
    }

    #[test]
    fn straight_drive_has_no_u_turn() {
        let pts: Vec<RawPoint> =
            (0..40).map(|i| pt(base().destination(90.0, 60.0 * i as f64), 5 * i as i64)).collect();
        assert!(detect_u_turns(&RawTrajectory::new(pts), UTurnParams::default()).is_empty());
    }

    #[test]
    fn right_angle_turn_is_not_a_u_turn() {
        let mut pts = Vec::new();
        let mut t = 0i64;
        for i in 0..10 {
            pts.push(pt(base().destination(90.0, 60.0 * i as f64), t));
            t += 5;
        }
        let corner = base().destination(90.0, 540.0);
        for i in 1..10 {
            pts.push(pt(corner.destination(0.0, 60.0 * i as f64), t));
            t += 5;
        }
        assert!(detect_u_turns(&RawTrajectory::new(pts), UTurnParams::default()).is_empty());
    }

    #[test]
    fn gps_jitter_at_stop_is_not_a_u_turn() {
        // Parked with 10 m jitter: headings flap wildly but legs are shorter
        // than min_leg_m, so smoothing suppresses them.
        let mut pts = vec![pt(base(), 0), pt(base().destination(90.0, 200.0), 20)];
        let stop = base().destination(90.0, 230.0);
        for k in 0..20 {
            pts.push(pt(stop.destination((k * 73) as f64 % 360.0, 10.0), 25 + k * 10));
        }
        pts.push(pt(stop.destination(90.0, 200.0), 300));
        assert!(detect_u_turns(&RawTrajectory::new(pts), UTurnParams::default()).is_empty());
    }

    #[test]
    fn two_distant_reversals_both_detected() {
        // East 1 km, back 1 km, east again 1 km: two U-turns ~1 km apart.
        let step = 50.0;
        let mut pts = Vec::new();
        let mut t = 0i64;
        for i in 0..=20 {
            pts.push(pt(base().destination(90.0, step * i as f64), t));
            t += 5;
        }
        for i in (0..20).rev() {
            pts.push(pt(base().destination(90.0, step * i as f64), t));
            t += 5;
        }
        for i in 1..=20 {
            pts.push(pt(base().destination(90.0, step * i as f64), t));
            t += 5;
        }
        let turns = detect_u_turns(&RawTrajectory::new(pts), UTurnParams::default());
        assert_eq!(turns.len(), 2);
    }

    #[test]
    fn repeated_reversals_at_the_same_spot_are_all_counted() {
        // Out 1 km, back 300 m, out again 300 m, back 1 km: three genuine
        // reversals, the later two at nearly the same place as each other.
        let step = 50.0;
        let mut pts = Vec::new();
        let mut t = 0i64;
        let mut push_run = |pts: &mut Vec<RawPoint>, from: f64, to: f64| {
            let n = ((to - from).abs() / step) as i64;
            let dir = if to > from { step } else { -step };
            for k in 1..=n {
                pts.push(pt(base().destination(90.0, from + dir * k as f64), t));
                t += 5;
            }
        };
        pts.push(pt(base(), 0));
        push_run(&mut pts, 0.0, 1000.0);
        push_run(&mut pts, 1000.0, 700.0);
        push_run(&mut pts, 700.0, 1000.0);
        push_run(&mut pts, 1000.0, 0.0);
        let turns = detect_u_turns(&RawTrajectory::new(pts), UTurnParams::default());
        assert_eq!(turns.len(), 3, "{turns:?}");
    }

    #[test]
    fn wide_turnaround_beyond_span_is_ignored() {
        // A gentle 180° loop spread over ~1.6 km of travel (an interchange
        // ramp, not an abrupt U-turn): each smoothed heading step is small.
        let mut pts = Vec::new();
        let mut t = 0i64;
        let center = base().destination(0.0, 800.0);
        for k in 0..=36 {
            let ang = -90.0 + 5.0 * k as f64; // sweep half circle, r = 800 m
            pts.push(pt(center.destination(ang, 800.0), t));
            t += 5;
        }
        let turns = detect_u_turns(&RawTrajectory::new(pts), UTurnParams::default());
        assert!(turns.is_empty(), "gentle loop misdetected: {turns:?}");
    }
}
