//! Trajectory types and moving-feature extraction.
//!
//! Implements the paper's data model (Sec. II) and the moving-feature
//! extractors of Sec. III-B:
//!
//! * [`RawTrajectory`] — Definition 1: a timestamped location sequence as it
//!   arrives from a GPS device;
//! * [`SymbolicTrajectory`] / [`TrajectorySegment`] — Definitions 3 and 4: a
//!   landmark sequence produced by calibration, and the segments connecting
//!   consecutive landmarks, which are "the basic atoms" of partitioning;
//! * [`staypoint`] — stay-point detection ("places where the moving object
//!   stays for a long time", caused by lights, jams, temporary parking);
//! * [`uturn`] — U-turn detection ("a sharp directional change");
//! * [`speed`] — speed profiles, average speeds, and sharp-speed-change
//!   counting (the `SpeC` custom feature exercised in Fig. 10);
//! * [`sanitize`] — ingest hardening for real-world feeds: defect taxonomy,
//!   Strict/Repair/DropBad policies, and the [`SanitizeReport`] audit trail
//!   behind the fallible constructors ([`RawTrajectory::try_new`]).

pub mod raw;
pub mod sanitize;
pub mod simplify;
pub mod speed;
pub mod staypoint;
pub mod symbolic;
pub mod uturn;

pub use raw::{RawPoint, RawTrajectory, RawView, Timestamp};
pub use sanitize::{
    sanitize, sanitize_to_trajectories, SanitizeConfig, SanitizePolicy, SanitizeReport, Sanitized,
    TrajectoryError,
};
pub use simplify::{max_deviation_m, simplify};
pub use speed::{average_speed_kmh, sharp_speed_changes, speed_profile_kmh, SpeedChangeParams};
pub use staypoint::{detect_stay_points, detect_stay_points_in, StayPoint, StayPointParams};
pub use symbolic::{SymbolicPoint, SymbolicTrajectory, TrajectorySegment};
pub use uturn::{detect_u_turns, detect_u_turns_in, UTurn, UTurnParams};
