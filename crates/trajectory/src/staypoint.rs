//! Stay-point detection.
//!
//! Sec. III-B: "Stay points are places where the moving object stays for a
//! long time. The occurrence of stay point is usually caused by traffic
//! lights or some contingency events, such as traffic jam, temporal parking
//! for buying a newspaper."
//!
//! We use the classic sliding-window definition (after Zheng et al. \[41\]): a
//! maximal run of samples whose pairwise anchor distance stays below a
//! diameter threshold and whose elapsed time meets a duration threshold.

use crate::raw::{RawPoint, RawTrajectory, Timestamp};
use serde::{Deserialize, Serialize};
use stmaker_geo::GeoPoint;

/// Thresholds for stay-point detection.
#[derive(Debug, Clone, Copy)]
pub struct StayPointParams {
    /// Maximum distance from the window anchor for membership, metres.
    pub max_radius_m: f64,
    /// Minimum dwell time for a window to count as a stay, seconds.
    pub min_duration_s: i64,
}

impl Default for StayPointParams {
    fn default() -> Self {
        Self { max_radius_m: 100.0, min_duration_s: 120 }
    }
}

/// A detected stay: the object lingered around `centroid` for
/// `duration_secs`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StayPoint {
    /// Mean location of the member samples.
    pub centroid: GeoPoint,
    /// Timestamp of the first member sample.
    pub start: Timestamp,
    /// Timestamp of the last member sample.
    pub end: Timestamp,
    /// Index of the first member sample, relative to the slice the detector
    /// ran over (the whole trajectory for [`detect_stay_points`], a segment
    /// window for [`detect_stay_points_in`]).
    pub first_index: usize,
    /// Index of the last member sample, relative to the same slice.
    pub last_index: usize,
}

impl StayPoint {
    /// Dwell time in seconds.
    pub fn duration_secs(&self) -> i64 {
        self.start.delta_secs(&self.end)
    }
}

/// Detects stay points in a raw trajectory.
///
/// Windows are anchored at their first sample: a window `[i, j]` is valid
/// while every sample `i..=j` is within `max_radius_m` of sample `i`. The
/// scan resumes after each emitted stay, so stays never overlap.
pub fn detect_stay_points(traj: &RawTrajectory, params: StayPointParams) -> Vec<StayPoint> {
    detect_stay_points_in(traj.points(), params)
}

/// Stay-point detection over an arbitrary sample slice (used to count stays
/// inside a single symbolic segment's time window).
pub fn detect_stay_points_in(points: &[RawPoint], params: StayPointParams) -> Vec<StayPoint> {
    assert!(params.max_radius_m > 0.0 && params.min_duration_s > 0);
    let n = points.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        let anchor = points[i].point;
        let mut j = i;
        while j + 1 < n && anchor.haversine_m(&points[j + 1].point) <= params.max_radius_m {
            j += 1;
        }
        let dwell = points[i].t.delta_secs(&points[j].t);
        if j > i && dwell >= params.min_duration_s {
            let (mut lat, mut lon) = (0.0, 0.0);
            for p in &points[i..=j] {
                lat += p.point.lat;
                lon += p.point.lon;
            }
            let m = (j - i + 1) as f64;
            out.push(StayPoint {
                centroid: GeoPoint { lat: lat / m, lon: lon / m },
                start: points[i].t,
                end: points[j].t,
                first_index: i,
                last_index: j,
            });
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> GeoPoint {
        GeoPoint::new(39.9, 116.4)
    }

    /// Drive 500 m, dwell `dwell_s` seconds jittering within 20 m, drive on.
    fn trip_with_stop(dwell_s: i64) -> RawTrajectory {
        let mut pts = Vec::new();
        let mut t = 0i64;
        for i in 0..6 {
            pts.push(RawPoint {
                point: base().destination(90.0, 100.0 * i as f64),
                t: Timestamp(t),
            });
            t += 10;
        }
        let stop = base().destination(90.0, 520.0);
        let steps = (dwell_s / 15).max(1);
        for k in 0..=steps {
            pts.push(RawPoint {
                point: stop.destination((k * 60) as f64 % 360.0, 12.0),
                t: Timestamp(t + k * 15),
            });
        }
        t += dwell_s + 15;
        for i in 0..6 {
            pts.push(RawPoint {
                point: stop.destination(90.0, 100.0 * (i + 1) as f64),
                t: Timestamp(t + 10 * i),
            });
        }
        RawTrajectory::new(pts)
    }

    #[test]
    fn long_dwell_is_detected() {
        let traj = trip_with_stop(300);
        let stays = detect_stay_points(&traj, StayPointParams::default());
        assert_eq!(stays.len(), 1);
        let s = &stays[0];
        assert!(s.duration_secs() >= 300, "dwell {}", s.duration_secs());
        let stop = base().destination(90.0, 520.0);
        assert!(s.centroid.haversine_m(&stop) < 25.0);
    }

    #[test]
    fn short_dwell_is_ignored() {
        let traj = trip_with_stop(60);
        let stays = detect_stay_points(&traj, StayPointParams::default());
        assert!(stays.is_empty());
    }

    #[test]
    fn continuous_motion_has_no_stays() {
        let pts: Vec<RawPoint> = (0..50)
            .map(|i| RawPoint {
                point: base().destination(90.0, 150.0 * i as f64),
                t: Timestamp(10 * i as i64),
            })
            .collect();
        let stays = detect_stay_points(&RawTrajectory::new(pts), StayPointParams::default());
        assert!(stays.is_empty());
    }

    #[test]
    fn two_separate_stops_detected_without_overlap() {
        let mut pts = Vec::new();
        let mut t = 0i64;
        let push_dwell = |pts: &mut Vec<RawPoint>, at: GeoPoint, t0: i64| -> i64 {
            for k in 0..10 {
                pts.push(RawPoint {
                    point: at.destination((k * 40) as f64, 8.0),
                    t: Timestamp(t0 + k * 20),
                });
            }
            t0 + 200
        };
        pts.push(RawPoint { point: base(), t: Timestamp(t) });
        t += 10;
        t = push_dwell(&mut pts, base().destination(90.0, 200.0), t);
        // drive 1 km
        for i in 0..10 {
            pts.push(RawPoint {
                point: base().destination(90.0, 300.0 + 100.0 * i as f64),
                t: Timestamp(t + 10 * i),
            });
        }
        t += 110;
        t = push_dwell(&mut pts, base().destination(90.0, 1400.0), t);
        pts.push(RawPoint { point: base().destination(90.0, 1600.0), t: Timestamp(t + 20) });
        let traj = RawTrajectory::new(pts);
        let stays = detect_stay_points(&traj, StayPointParams::default());
        assert_eq!(stays.len(), 2);
        assert!(stays[0].last_index < stays[1].first_index, "stays must not overlap");
    }

    #[test]
    fn slow_crawl_within_radius_counts_as_stay() {
        // A traffic jam: creeping 5 m per 30 s for 5 minutes stays inside
        // the 100 m anchor radius and must be flagged.
        let pts: Vec<RawPoint> = (0..11)
            .map(|i| RawPoint {
                point: base().destination(90.0, 5.0 * i as f64),
                t: Timestamp(30 * i as i64),
            })
            .collect();
        let stays = detect_stay_points(&RawTrajectory::new(pts), StayPointParams::default());
        assert_eq!(stays.len(), 1);
        assert_eq!(stays[0].duration_secs(), 300);
    }
}
