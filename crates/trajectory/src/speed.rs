//! Speed profiles and sharp-speed-change counting.
//!
//! Sec. III-B calls speed "one of the most important moving features"; the
//! intro additionally motivates *sharp speed change* as a behaviour worth
//! summarizing, and Fig. 10(b) reports a `SpeC` feature. The extractors here
//! serve both the built-in speed feature and the SpeC custom-feature
//! demonstration of Sec. VI-B.

use crate::raw::RawPoint;

/// Per-hop speeds in km/h: `out[i]` is the mean speed between samples `i`
/// and `i + 1`. Hops with zero elapsed time are skipped (their index is
/// simply absent from motion statistics — callers receive one entry per
/// *positive-duration* hop), as are hops whose speed comes out non-finite
/// (a NaN coordinate that slipped past sanitization must not poison every
/// downstream aggregate).
pub fn speed_profile_kmh(points: &[RawPoint]) -> Vec<f64> {
    points
        .windows(2)
        .filter_map(|w| {
            let dt = w[0].t.delta_secs(&w[1].t);
            if dt <= 0 {
                return None;
            }
            let d = w[0].point.haversine_m(&w[1].point);
            let v = d / dt as f64 * 3.6;
            v.is_finite().then_some(v)
        })
        .collect()
}

/// Distance-weighted average speed over the samples, km/h.
///
/// Returns 0 for windows with no elapsed time (e.g. a single sample).
pub fn average_speed_kmh(points: &[RawPoint]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let dist: f64 = points.windows(2).map(|w| w[0].point.haversine_m(&w[1].point)).sum();
    let secs = points[0].t.delta_secs(&points[points.len() - 1].t);
    if secs <= 0 || !dist.is_finite() {
        return 0.0;
    }
    dist / secs as f64 * 3.6
}

/// Thresholds for sharp-speed-change detection.
#[derive(Debug, Clone, Copy)]
pub struct SpeedChangeParams {
    /// Minimum |Δv| between consecutive hops to count, km/h.
    pub min_delta_kmh: f64,
}

impl Default for SpeedChangeParams {
    fn default() -> Self {
        Self { min_delta_kmh: 30.0 }
    }
}

/// Counts sharp speed changes: hop-to-hop speed jumps of at least
/// `min_delta_kmh`. This is the `SpeC` feature of Fig. 10(b).
pub fn sharp_speed_changes(points: &[RawPoint], params: SpeedChangeParams) -> usize {
    let profile = speed_profile_kmh(points);
    profile.windows(2).filter(|w| (w[1] - w[0]).abs() >= params.min_delta_kmh).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::Timestamp;
    use stmaker_geo::GeoPoint;

    fn base() -> GeoPoint {
        GeoPoint::new(39.9, 116.4)
    }

    fn pt(dist_m: f64, t: i64) -> RawPoint {
        RawPoint { point: base().destination(90.0, dist_m), t: Timestamp(t) }
    }

    #[test]
    fn constant_speed_profile() {
        // 100 m per 10 s = 36 km/h.
        let pts: Vec<RawPoint> = (0..5).map(|i| pt(100.0 * i as f64, 10 * i as i64)).collect();
        let prof = speed_profile_kmh(&pts);
        assert_eq!(prof.len(), 4);
        for v in &prof {
            assert!((v - 36.0).abs() < 0.2, "{v}");
        }
        assert!((average_speed_kmh(&pts) - 36.0).abs() < 0.2);
    }

    #[test]
    fn zero_duration_hops_are_skipped() {
        let pts = vec![pt(0.0, 0), pt(50.0, 0), pt(150.0, 10)];
        let prof = speed_profile_kmh(&pts);
        assert_eq!(prof.len(), 1);
        assert!((prof[0] - 36.0).abs() < 0.5);
    }

    #[test]
    fn average_speed_degenerate_cases() {
        assert_eq!(average_speed_kmh(&[]), 0.0);
        assert_eq!(average_speed_kmh(&[pt(0.0, 0)]), 0.0);
        assert_eq!(average_speed_kmh(&[pt(0.0, 5), pt(100.0, 5)]), 0.0);
    }

    #[test]
    fn emitted_speeds_are_always_finite() {
        // Regression: duplicate-timestamp samples produce dt = 0 hops and a
        // NaN coordinate produces a NaN haversine distance; neither may leak
        // a non-finite value into the profile or the average.
        let mut pts = vec![
            pt(0.0, 0),
            pt(50.0, 10),
            pt(50.0, 10), // duplicate timestamp: dt = 0
            pt(150.0, 20),
        ];
        // Direct field write: GeoPoint::new asserts, but serde and struct
        // literals can still smuggle a NaN in.
        pts.push(RawPoint { point: GeoPoint { lat: f64::NAN, lon: 116.4 }, t: Timestamp(30) });
        pts.push(pt(250.0, 40));
        let prof = speed_profile_kmh(&pts);
        assert!(!prof.is_empty());
        assert!(prof.iter().all(|v| v.is_finite()), "{prof:?}");
        assert!(average_speed_kmh(&pts).is_finite());
        // The poisoned input still counts sharp changes without panicking.
        let _ = sharp_speed_changes(&pts, SpeedChangeParams::default());
    }

    #[test]
    fn sharp_changes_counted() {
        // 36 km/h, 36, 108 (jump +72), 108, 36 (jump −72).
        let pts = vec![
            pt(0.0, 0),
            pt(100.0, 10),
            pt(200.0, 20),
            pt(500.0, 30),
            pt(800.0, 40),
            pt(900.0, 50),
        ];
        let n = sharp_speed_changes(&pts, SpeedChangeParams::default());
        assert_eq!(n, 2);
    }

    #[test]
    fn gentle_acceleration_not_counted() {
        // +7 km/h per hop, below the default 30 km/h threshold.
        let mut pts = Vec::new();
        let mut d = 0.0;
        for i in 0..10 {
            pts.push(pt(d, 10 * i as i64));
            d += 100.0 + 20.0 * i as f64;
        }
        assert_eq!(sharp_speed_changes(&pts, SpeedChangeParams::default()), 0);
    }
}
