//! Symbolic trajectories and trajectory segments (Definitions 3 and 4).

use crate::raw::Timestamp;
use serde::{Deserialize, Serialize};
use stmaker_poi::LandmarkId;

/// One landmark visit of a symbolic trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolicPoint {
    pub landmark: LandmarkId,
    pub t: Timestamp,
}

/// Definition 3: "A symbolic trajectory T̄ is a sequence of landmarks and
/// their corresponding time-stamps."
///
/// Produced by calibration; consumed by partitioning, popular-route mining
/// and the historical feature map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymbolicTrajectory {
    points: Vec<SymbolicPoint>,
}

impl SymbolicTrajectory {
    /// Creates a symbolic trajectory.
    ///
    /// # Panics
    /// Panics if fewer than two landmarks are supplied, timestamps decrease,
    /// or the same landmark appears twice consecutively.
    pub fn new(points: Vec<SymbolicPoint>) -> Self {
        assert!(points.len() >= 2, "a symbolic trajectory needs at least two landmarks");
        assert!(points.windows(2).all(|w| w[0].t <= w[1].t), "timestamps must be non-decreasing");
        assert!(
            points.windows(2).all(|w| w[0].landmark != w[1].landmark),
            "consecutive duplicate landmarks must be collapsed by calibration"
        );
        Self { points }
    }

    /// The landmark visits.
    pub fn points(&self) -> &[SymbolicPoint] {
        &self.points
    }

    /// `|T̄|`: the number of landmarks.
    pub fn size(&self) -> usize {
        self.points.len()
    }

    /// The landmark id sequence (used as the key for route mining).
    pub fn landmark_seq(&self) -> Vec<LandmarkId> {
        self.points.iter().map(|p| p.landmark).collect()
    }

    /// The `|T̄| − 1` segments connecting consecutive landmarks.
    pub fn segments(&self) -> Vec<TrajectorySegment> {
        self.points
            .windows(2)
            .enumerate()
            .map(|(i, w)| TrajectorySegment { index: i, from: w[0], to: w[1] })
            .collect()
    }

    /// Segment accessor: segment `i` connects landmarks `i` and `i + 1`.
    pub fn segment(&self, i: usize) -> TrajectorySegment {
        TrajectorySegment { index: i, from: self.points[i], to: self.points[i + 1] }
    }

    /// Number of segments (`size() − 1`).
    pub fn segment_count(&self) -> usize {
        self.points.len() - 1
    }

    /// Total elapsed time in seconds.
    pub fn duration_secs(&self) -> i64 {
        self.points[0].t.delta_secs(&self.points.last().expect("non-empty").t)
    }
}

/// Definition 4: a segment `TSᵢ` connects two consecutive landmarks of a
/// symbolic trajectory. Segments are "the basic atoms" partitioned in Sec. IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrajectorySegment {
    /// Position within the parent trajectory (0-based).
    pub index: usize,
    pub from: SymbolicPoint,
    pub to: SymbolicPoint,
}

impl TrajectorySegment {
    /// Elapsed seconds on this segment.
    pub fn duration_secs(&self) -> i64 {
        self.from.t.delta_secs(&self.to.t)
    }

    /// Whether `other` immediately follows `self`, sharing a landmark
    /// ("contiguous segments" in the paper's terms).
    pub fn is_contiguous_with(&self, other: &TrajectorySegment) -> bool {
        self.to.landmark == other.from.landmark && other.index == self.index + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(l: u32, t: i64) -> SymbolicPoint {
        SymbolicPoint { landmark: LandmarkId(l), t: Timestamp(t) }
    }

    fn sample() -> SymbolicTrajectory {
        SymbolicTrajectory::new(vec![sp(0, 0), sp(3, 60), sp(1, 150), sp(7, 300)])
    }

    #[test]
    fn size_and_segments() {
        let t = sample();
        assert_eq!(t.size(), 4);
        assert_eq!(t.segment_count(), 3);
        let segs = t.segments();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].from.landmark, LandmarkId(0));
        assert_eq!(segs[0].to.landmark, LandmarkId(3));
        assert_eq!(segs[2].index, 2);
        assert_eq!(t.duration_secs(), 300);
    }

    #[test]
    fn contiguity_matches_paper_definition() {
        let t = sample();
        let segs = t.segments();
        assert!(segs[0].is_contiguous_with(&segs[1]));
        assert!(segs[1].is_contiguous_with(&segs[2]));
        assert!(!segs[0].is_contiguous_with(&segs[2]));
        assert!(!segs[1].is_contiguous_with(&segs[0]));
    }

    #[test]
    fn segment_durations() {
        let t = sample();
        assert_eq!(t.segment(0).duration_secs(), 60);
        assert_eq!(t.segment(1).duration_secs(), 90);
        assert_eq!(t.segment(2).duration_secs(), 150);
    }

    #[test]
    fn landmark_seq_projects_ids() {
        assert_eq!(
            sample().landmark_seq(),
            vec![LandmarkId(0), LandmarkId(3), LandmarkId(1), LandmarkId(7)]
        );
    }

    #[test]
    #[should_panic(expected = "consecutive duplicate")]
    fn rejects_consecutive_duplicates() {
        SymbolicTrajectory::new(vec![sp(0, 0), sp(0, 10)]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_landmark() {
        SymbolicTrajectory::new(vec![sp(0, 0)]);
    }
}
