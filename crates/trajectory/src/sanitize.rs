//! Ingest hardening: audit and repair raw GPS point streams.
//!
//! The paper assumes clean `(lat, lon, t)` input (Definition 1, Table I);
//! production feeds do not cooperate. Real GPS uploads contain non-finite
//! coordinates (receiver glitches serialized as NaN), duplicated and
//! out-of-order timestamps (retransmits, clock steps), and teleport spikes
//! (multipath fixes kilometres off the route). Any of these used to panic
//! the pipeline or silently poison feature values; this module quarantines
//! them *before* a [`RawTrajectory`] ever exists.
//!
//! The defect taxonomy:
//!
//! | defect | detection | Strict | Repair | DropBad |
//! |---|---|---|---|---|
//! | non-finite coordinate | `!lat.is_finite()` etc. | error | drop point | drop point |
//! | out-of-range coordinate | `\|lat\| > 90`, `\|lon\| > 180` | error | drop point | drop point |
//! | out-of-order timestamp | `t < running max t` | error | stable re-sort by `t` | drop late point |
//! | duplicate timestamp | consecutive equal `t` | error | keep first | keep first |
//! | teleport spike | hop speed over [`SanitizeConfig::max_speed_mps`] | error | split segment | split segment |
//! | long time gap | hop `dt` over [`SanitizeConfig::max_gap_secs`] | allowed | split segment | split segment |
//! | too few points | `< 2` samples (whole input or a split product) | error | drop segment | drop segment |
//!
//! [`sanitize`] returns the surviving point runs as separate segments
//! (splitting is how a teleport spike or a multi-hour parking gap is
//! neutralised without inventing data) plus a [`SanitizeReport`] counting
//! every repair, which can be [`SanitizeReport::record_into`] any
//! `stmaker-obs` recorder for fleet-level telemetry.

use crate::raw::{RawPoint, RawTrajectory};
use stmaker_obs::Recorder;

/// Why a point buffer is not (or could not be made into) a valid trajectory.
///
/// Returned by the fallible constructors ([`RawTrajectory::try_new`],
/// [`RawView::try_new`]) for the structural defects, and by [`sanitize`]
/// under [`SanitizePolicy::Strict`] for the full taxonomy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrajectoryError {
    /// Fewer than two samples: no segment, no duration, nothing to describe.
    TooFewPoints {
        /// Number of samples supplied.
        got: usize,
    },
    /// A coordinate is NaN or ±infinity.
    NonFiniteCoordinate {
        /// Index of the offending sample.
        index: usize,
    },
    /// A coordinate is finite but outside `[-90, 90]` × `[-180, 180]`.
    OutOfRangeCoordinate {
        /// Index of the offending sample.
        index: usize,
        /// The latitude found.
        lat: f64,
        /// The longitude found.
        lon: f64,
    },
    /// A timestamp decreases relative to an earlier sample.
    OutOfOrderTimestamp {
        /// Index of the late sample.
        index: usize,
        /// The largest timestamp seen before it, seconds.
        prev_t: i64,
        /// The late sample's timestamp, seconds.
        got_t: i64,
    },
    /// Two samples share a timestamp (zero-duration hop). Only reported by
    /// [`sanitize`] under [`SanitizePolicy::Strict`]; repeated timestamps
    /// are otherwise legal in a [`RawTrajectory`].
    DuplicateTimestamp {
        /// Index of the repeating sample.
        index: usize,
        /// The repeated timestamp, seconds.
        t: i64,
    },
    /// A hop implies an implausible speed (GPS teleport). Only reported by
    /// [`sanitize`] under [`SanitizePolicy::Strict`].
    Teleport {
        /// Index of the sample the spike lands on.
        index: usize,
        /// The implied speed, metres per second.
        speed_mps: f64,
        /// The configured gate, metres per second.
        limit_mps: f64,
    },
}

impl std::fmt::Display for TrajectoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrajectoryError::TooFewPoints { got } => {
                write!(f, "a trajectory needs at least two samples, got {got}")
            }
            TrajectoryError::NonFiniteCoordinate { index } => {
                write!(f, "sample {index} has a non-finite coordinate")
            }
            TrajectoryError::OutOfRangeCoordinate { index, lat, lon } => {
                write!(f, "sample {index} is out of range: lat {lat}, lon {lon}")
            }
            TrajectoryError::OutOfOrderTimestamp { index, prev_t, got_t } => {
                write!(
                    f,
                    "timestamps must be non-decreasing: sample {index} at t={got_t} \
                     follows t={prev_t}"
                )
            }
            TrajectoryError::DuplicateTimestamp { index, t } => {
                write!(f, "sample {index} repeats timestamp t={t}")
            }
            TrajectoryError::Teleport { index, speed_mps, limit_mps } => {
                write!(
                    f,
                    "sample {index} implies {speed_mps:.0} m/s, over the {limit_mps:.0} m/s \
                     teleport gate"
                )
            }
        }
    }
}

impl std::error::Error for TrajectoryError {}

/// What to do with a defective input stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SanitizePolicy {
    /// Reject on the first defect with a typed [`TrajectoryError`]. Use at
    /// trusted boundaries where a defect means an upstream bug.
    Strict,
    /// Fix what can be fixed without inventing data: re-sort out-of-order
    /// samples, drop non-finite/duplicate points, split on teleports and
    /// gaps. The default for untrusted feeds.
    #[default]
    Repair,
    /// Like [`SanitizePolicy::Repair`] but never reorders: late samples are
    /// dropped instead of re-sorted. Use when sample order carries meaning
    /// (e.g. sequence numbers from a device under test).
    DropBad,
}

impl std::str::FromStr for SanitizePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "strict" => Ok(SanitizePolicy::Strict),
            "repair" => Ok(SanitizePolicy::Repair),
            "drop" | "dropbad" | "drop-bad" => Ok(SanitizePolicy::DropBad),
            other => Err(format!("unknown sanitize policy {other:?} (strict|repair|drop-bad)")),
        }
    }
}

impl std::fmt::Display for SanitizePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SanitizePolicy::Strict => "strict",
            SanitizePolicy::Repair => "repair",
            SanitizePolicy::DropBad => "drop-bad",
        })
    }
}

/// Tunables for [`sanitize`].
#[derive(Debug, Clone, Copy)]
pub struct SanitizeConfig {
    /// How defects are handled.
    pub policy: SanitizePolicy,
    /// Hops faster than this are teleports, metres per second. `70` (252
    /// km/h) comfortably clears any road vehicle while catching multipath
    /// jumps. Non-positive or non-finite disables the gate.
    pub max_speed_mps: f64,
    /// Hops longer than this split the stream into separate trips, seconds
    /// (the device parked, lost power, or left coverage). Non-positive
    /// disables gap splitting.
    pub max_gap_secs: i64,
}

impl Default for SanitizeConfig {
    fn default() -> Self {
        Self { policy: SanitizePolicy::Repair, max_speed_mps: 70.0, max_gap_secs: 1800 }
    }
}

impl SanitizeConfig {
    /// The default gates under `policy`.
    #[must_use]
    pub fn with_policy(policy: SanitizePolicy) -> Self {
        Self { policy, ..Self::default() }
    }
}

/// Counts per defect class from one [`sanitize`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SanitizeReport {
    /// Samples supplied.
    pub points_in: usize,
    /// Samples surviving into the output segments.
    pub points_out: usize,
    /// Output segments (0 when nothing survived).
    pub segments_out: usize,
    /// Samples dropped for NaN/±inf coordinates.
    pub non_finite: usize,
    /// Samples dropped for finite but out-of-range coordinates.
    pub out_of_range: usize,
    /// Samples observed behind the running timestamp maximum (re-sorted
    /// under Repair, dropped under DropBad).
    pub out_of_order: usize,
    /// Samples dropped for repeating the previous timestamp.
    pub duplicate_t: usize,
    /// Segment splits forced by the teleport speed gate.
    pub teleports: usize,
    /// Segment splits forced by long time gaps.
    pub gap_splits: usize,
    /// Split products dropped for having fewer than two samples.
    pub short_segments_dropped: usize,
}

impl SanitizeReport {
    /// Total defective samples/hops (gap splits are not defects — a parked
    /// car is not an error — but they do appear in [`std::fmt::Display`]).
    pub fn defects(&self) -> usize {
        self.non_finite + self.out_of_range + self.out_of_order + self.duplicate_t + self.teleports
    }

    /// Whether the input needed no repair at all.
    pub fn is_clean(&self) -> bool {
        self.defects() == 0 && self.gap_splits == 0 && self.short_segments_dropped == 0
    }

    /// Accumulates the counts into `obs` under the `sanitize.*` namespace,
    /// so fleet ingest dashboards see per-defect-class rates.
    pub fn record_into(&self, obs: &Recorder) {
        // cast-ok below: sample counts.
        obs.add("sanitize.points_in", self.points_in as u64);
        obs.add("sanitize.points_out", self.points_out as u64);
        obs.add("sanitize.segments_out", self.segments_out as u64);
        for (name, n) in [
            ("sanitize.non_finite", self.non_finite),
            ("sanitize.out_of_range", self.out_of_range),
            ("sanitize.out_of_order", self.out_of_order),
            ("sanitize.duplicate_t", self.duplicate_t),
            ("sanitize.teleports", self.teleports),
            ("sanitize.gap_splits", self.gap_splits),
            ("sanitize.short_segments_dropped", self.short_segments_dropped),
        ] {
            if n > 0 {
                obs.add(name, n as u64); // cast-ok: defect count
            }
        }
    }
}

impl std::fmt::Display for SanitizeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sanitize: {} defect(s) in {} point(s) -> {} point(s) in {} segment(s) \
             [non-finite {}, out-of-range {}, out-of-order {}, duplicate-t {}, \
             teleports {}, gap-splits {}, short-dropped {}]",
            self.defects(),
            self.points_in,
            self.points_out,
            self.segments_out,
            self.non_finite,
            self.out_of_range,
            self.out_of_order,
            self.duplicate_t,
            self.teleports,
            self.gap_splits,
            self.short_segments_dropped,
        )
    }
}

/// The outcome of a successful [`sanitize`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct Sanitized {
    /// The surviving point runs, each individually a valid trajectory
    /// (≥ 2 samples, finite in-range coordinates, non-decreasing unique
    /// timestamps, no hop over the speed gate). Ordered as encountered.
    pub segments: Vec<Vec<RawPoint>>,
    /// Counts per defect class.
    pub report: SanitizeReport,
}

impl Sanitized {
    /// The longest surviving segment — the usual choice when a caller wants
    /// "the trip" out of a noisy upload.
    pub fn longest(&self) -> Option<&[RawPoint]> {
        self.segments.iter().max_by_key(|s| s.len()).map(|s| s.as_slice())
    }

    /// Converts every segment into an owned [`RawTrajectory`].
    ///
    /// Segments satisfy the construction invariants by construction; a
    /// segment that still fails (impossible unless [`Sanitized`] was
    /// hand-built) is silently skipped.
    pub fn into_trajectories(self) -> (Vec<RawTrajectory>, SanitizeReport) {
        let report = self.report;
        let trajs =
            self.segments.into_iter().filter_map(|s| RawTrajectory::try_new(s).ok()).collect();
        (trajs, report)
    }
}

/// Audits (and under Repair/DropBad, repairs) a raw point stream.
///
/// Under [`SanitizePolicy::Strict`] the first defect returns its typed
/// [`TrajectoryError`] and a clean input comes back as one segment. Under
/// the lenient policies the function never errors: defective points are
/// dropped or reordered, teleports and long gaps split the stream, and
/// split products with fewer than two samples are discarded — so every
/// returned segment is accepted by [`RawView::try_new`].
pub fn sanitize(points: &[RawPoint], cfg: &SanitizeConfig) -> Result<Sanitized, TrajectoryError> {
    let strict = cfg.policy == SanitizePolicy::Strict;
    let mut report = SanitizeReport { points_in: points.len(), ..SanitizeReport::default() };

    if strict && points.len() < 2 {
        return Err(TrajectoryError::TooFewPoints { got: points.len() });
    }

    // Pass 1 — per-point validity, preserving original indices for error
    // reporting.
    let mut kept: Vec<(usize, RawPoint)> = Vec::with_capacity(points.len());
    for (i, p) in points.iter().enumerate() {
        if !p.point.lat.is_finite() || !p.point.lon.is_finite() {
            if strict {
                return Err(TrajectoryError::NonFiniteCoordinate { index: i });
            }
            report.non_finite += 1;
            continue;
        }
        if !(-90.0..=90.0).contains(&p.point.lat) || !(-180.0..=180.0).contains(&p.point.lon) {
            if strict {
                return Err(TrajectoryError::OutOfRangeCoordinate {
                    index: i,
                    lat: p.point.lat,
                    lon: p.point.lon,
                });
            }
            report.out_of_range += 1;
            continue;
        }
        kept.push((i, *p));
    }

    // Pass 2 — temporal ordering. Count samples observed behind the running
    // maximum, then repair per policy.
    let mut max_t = i64::MIN;
    for (i, p) in &kept {
        if p.t.0 < max_t {
            if strict {
                return Err(TrajectoryError::OutOfOrderTimestamp {
                    index: *i,
                    prev_t: max_t,
                    got_t: p.t.0,
                });
            }
            report.out_of_order += 1;
        } else {
            max_t = p.t.0;
        }
    }
    if report.out_of_order > 0 {
        match cfg.policy {
            // Stable by-timestamp sort: same-t samples keep arrival order,
            // so the later duplicate pass is deterministic.
            SanitizePolicy::Repair => kept.sort_by(|a, b| a.1.t.cmp(&b.1.t)),
            SanitizePolicy::DropBad => {
                let mut max_t = i64::MIN;
                kept.retain(|(_, p)| {
                    let ok = p.t.0 >= max_t;
                    if ok {
                        max_t = p.t.0;
                    }
                    ok
                });
            }
            SanitizePolicy::Strict => {} // unreachable: strict returned above
        }
    }

    // Pass 3 — duplicate timestamps: keep the first sample of each run.
    // Zero-duration hops otherwise feed division-hazard dt=0 into speed
    // features and defeat the teleport gate below.
    let mut dedup: Vec<(usize, RawPoint)> = Vec::with_capacity(kept.len());
    for (i, p) in kept {
        if let Some((_, last)) = dedup.last() {
            if last.t == p.t {
                if strict {
                    return Err(TrajectoryError::DuplicateTimestamp { index: i, t: p.t.0 });
                }
                report.duplicate_t += 1;
                continue;
            }
        }
        dedup.push((i, p));
    }

    // Pass 4 — teleport gate and gap splitting. A lone spike point becomes
    // its own 1-sample segment (split on the way in *and* out) and is then
    // discarded by the short-segment filter: outlier removal by splitting,
    // never by inventing replacement fixes.
    let speed_gated = cfg.max_speed_mps > 0.0 && cfg.max_speed_mps.is_finite();
    let gap_gated = cfg.max_gap_secs > 0;
    let mut segments: Vec<Vec<RawPoint>> = Vec::new();
    let mut cur: Vec<RawPoint> = Vec::new();
    let mut close = |cur: &mut Vec<RawPoint>, report: &mut SanitizeReport| {
        if cur.len() >= 2 {
            segments.push(std::mem::take(cur));
        } else {
            if !cur.is_empty() {
                report.short_segments_dropped += 1;
            }
            cur.clear();
        }
    };
    let mut prev: Option<(usize, RawPoint)> = None;
    for (i, p) in dedup {
        if let Some((_, a)) = prev {
            let dt = a.t.delta_secs(&p.t); // > 0 after the duplicate pass
            let dist = a.point.haversine_m(&p.point);
            let speed = dist / dt as f64;
            if speed_gated && speed > cfg.max_speed_mps {
                if strict {
                    return Err(TrajectoryError::Teleport {
                        index: i,
                        speed_mps: speed,
                        limit_mps: cfg.max_speed_mps,
                    });
                }
                report.teleports += 1;
                close(&mut cur, &mut report);
            } else if !strict && gap_gated && dt > cfg.max_gap_secs {
                report.gap_splits += 1;
                close(&mut cur, &mut report);
            }
        }
        cur.push(p);
        prev = Some((i, p));
    }
    close(&mut cur, &mut report);

    report.points_out = segments.iter().map(Vec::len).sum();
    report.segments_out = segments.len();
    Ok(Sanitized { segments, report })
}

/// [`sanitize`], returning owned [`RawTrajectory`] values per segment.
pub fn sanitize_to_trajectories(
    points: &[RawPoint],
    cfg: &SanitizeConfig,
) -> Result<(Vec<RawTrajectory>, SanitizeReport), TrajectoryError> {
    sanitize(points, cfg).map(Sanitized::into_trajectories)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::{RawView, Timestamp};
    use stmaker_geo::GeoPoint;

    fn base() -> GeoPoint {
        GeoPoint::new(39.9, 116.4)
    }

    /// One point every 10 s, 100 m apart (36 km/h — well under the gate).
    fn clean(n: usize) -> Vec<RawPoint> {
        (0..n)
            .map(|i| RawPoint {
                point: base().destination(90.0, 100.0 * i as f64),
                t: Timestamp(10 * i as i64),
            })
            .collect()
    }

    fn repair() -> SanitizeConfig {
        SanitizeConfig::default()
    }

    fn strict() -> SanitizeConfig {
        SanitizeConfig::with_policy(SanitizePolicy::Strict)
    }

    #[test]
    fn clean_input_passes_every_policy_untouched() {
        let pts = clean(10);
        for policy in [SanitizePolicy::Strict, SanitizePolicy::Repair, SanitizePolicy::DropBad] {
            let out = sanitize(&pts, &SanitizeConfig::with_policy(policy)).expect("clean");
            assert!(out.report.is_clean(), "{policy}: {}", out.report);
            assert_eq!(out.segments, vec![pts.clone()], "{policy}");
            assert_eq!(out.report.points_out, 10);
            assert_eq!(out.report.segments_out, 1);
        }
    }

    #[test]
    fn strict_rejects_every_defect_class_with_typed_errors() {
        // NaN coordinate.
        let mut pts = clean(5);
        pts[2].point.lat = f64::NAN;
        assert_eq!(
            sanitize(&pts, &strict()).unwrap_err(),
            TrajectoryError::NonFiniteCoordinate { index: 2 }
        );
        // Out-of-range coordinate.
        let mut pts = clean(5);
        pts[3].point.lon = 231.0;
        assert!(matches!(
            sanitize(&pts, &strict()).unwrap_err(),
            TrajectoryError::OutOfRangeCoordinate { index: 3, .. }
        ));
        // Out-of-order timestamp.
        let mut pts = clean(5);
        pts.swap(1, 3);
        assert!(matches!(
            sanitize(&pts, &strict()).unwrap_err(),
            TrajectoryError::OutOfOrderTimestamp { .. }
        ));
        // Duplicate timestamp.
        let mut pts = clean(5);
        pts[2].t = pts[1].t;
        assert_eq!(
            sanitize(&pts, &strict()).unwrap_err(),
            TrajectoryError::DuplicateTimestamp { index: 2, t: pts[1].t.0 }
        );
        // Teleport spike.
        let mut pts = clean(5);
        pts[2].point = base().destination(0.0, 50_000.0);
        assert!(matches!(sanitize(&pts, &strict()).unwrap_err(), TrajectoryError::Teleport { .. }));
        // Too few points.
        assert_eq!(
            sanitize(&clean(1), &strict()).unwrap_err(),
            TrajectoryError::TooFewPoints { got: 1 }
        );
    }

    #[test]
    fn repair_drops_non_finite_and_out_of_range_points() {
        let mut pts = clean(6);
        pts[1].point.lat = f64::NAN;
        pts[4].point.lon = -191.0;
        let out = sanitize(&pts, &repair()).expect("repairable");
        assert_eq!(out.report.non_finite, 1);
        assert_eq!(out.report.out_of_range, 1);
        assert_eq!(out.report.points_out, 4);
        assert_eq!(out.segments.len(), 1);
        RawView::try_new(&out.segments[0]).expect("repaired segment is valid");
    }

    #[test]
    fn repair_reorders_but_dropbad_drops_late_samples() {
        let mut pts = clean(6);
        pts.swap(2, 4); // two inversions relative to the running max
        let repaired = sanitize(&pts, &repair()).expect("repairable");
        assert!(repaired.report.out_of_order > 0);
        assert_eq!(repaired.segments, vec![clean(6)], "repair restores the original order");

        let dropped = sanitize(&pts, &SanitizeConfig::with_policy(SanitizePolicy::DropBad))
            .expect("droppable");
        assert!(dropped.report.out_of_order > 0);
        assert_eq!(dropped.report.points_out + dropped.report.out_of_order, 6);
        // Never reordered: surviving timestamps strictly increase in arrival
        // order.
        for seg in &dropped.segments {
            assert!(seg.windows(2).all(|w| w[0].t < w[1].t));
        }
    }

    #[test]
    fn repair_dedupes_equal_timestamps_keeping_first() {
        let mut pts = clean(5);
        pts[2].t = pts[1].t; // same t, different place
        let out = sanitize(&pts, &repair()).expect("repairable");
        assert_eq!(out.report.duplicate_t, 1);
        let seg = &out.segments[0];
        assert!(seg.windows(2).all(|w| w[0].t < w[1].t), "unique timestamps after dedupe");
        assert_eq!(seg[1].point, pts[1].point, "first of the duplicate run wins");
    }

    #[test]
    fn teleport_spike_is_amputated_by_splitting() {
        let mut pts = clean(9);
        pts[4].point = base().destination(0.0, 80_000.0); // 80 km off-route
        let out = sanitize(&pts, &repair()).expect("repairable");
        assert_eq!(out.report.teleports, 2, "split on the way in and out of the spike");
        assert_eq!(out.report.short_segments_dropped, 1, "the lone spike point is discarded");
        assert_eq!(out.segments.len(), 2);
        for seg in &out.segments {
            let v = RawView::try_new(seg).expect("valid");
            // No residual teleport hop inside any segment.
            for w in v.points().windows(2) {
                let dt = w[0].t.delta_secs(&w[1].t) as f64;
                assert!(w[0].point.haversine_m(&w[1].point) / dt <= 70.0);
            }
        }
        assert_eq!(out.longest().map(<[RawPoint]>::len), Some(4));
    }

    #[test]
    fn long_gap_splits_into_separate_trips() {
        let mut pts = clean(4);
        let mut second: Vec<RawPoint> = clean(4)
            .into_iter()
            .map(|mut p| {
                p.t = Timestamp(p.t.0 + 10_000); // 10 000 s later, same place
                p
            })
            .collect();
        pts.append(&mut second);
        let out = sanitize(&pts, &repair()).expect("repairable");
        assert_eq!(out.report.gap_splits, 1);
        assert_eq!(out.segments.len(), 2);
        assert_eq!(out.report.points_out, 8);
        // Strict treats a parked car as legal: same input, no error.
        let strict_out = sanitize(&pts, &strict()).expect("gaps are not defects");
        assert_eq!(strict_out.segments.len(), 1);
    }

    #[test]
    fn lenient_policies_never_error_even_on_garbage() {
        let mut pts = clean(3);
        pts[0].point.lat = f64::INFINITY;
        pts[1].point.lon = 500.0;
        pts[2].point.lat = f64::NAN;
        for policy in [SanitizePolicy::Repair, SanitizePolicy::DropBad] {
            let out = sanitize(&pts, &SanitizeConfig::with_policy(policy)).expect("never errors");
            assert!(out.segments.is_empty());
            assert_eq!(out.report.points_out, 0);
            assert_eq!(out.report.segments_out, 0);
        }
        // Empty input, ditto.
        let out = sanitize(&[], &repair()).expect("empty is not an error when repairing");
        assert!(out.segments.is_empty());
    }

    #[test]
    fn report_renders_and_records_into_obs() {
        let mut pts = clean(6);
        pts[1].point.lat = f64::NAN;
        pts[3].t = pts[2].t;
        let out = sanitize(&pts, &repair()).expect("repairable");
        assert_eq!(out.report.defects(), 2);
        let line = out.report.to_string();
        assert!(line.contains("2 defect(s)"), "{line}");
        assert!(line.contains("non-finite 1"), "{line}");
        assert!(line.contains("duplicate-t 1"), "{line}");

        let obs = Recorder::enabled();
        out.report.record_into(&obs);
        let report = obs.report();
        assert_eq!(report.counters.get("sanitize.points_in"), Some(&6));
        assert_eq!(report.counters.get("sanitize.non_finite"), Some(&1));
        assert_eq!(report.counters.get("sanitize.duplicate_t"), Some(&1));
        assert_eq!(report.counters.get("sanitize.out_of_range"), None, "zero counts stay absent");
    }

    #[test]
    fn into_trajectories_round_trips() {
        let mut pts = clean(8);
        pts[2].point.lat = f64::NAN;
        let (trajs, report) = sanitize_to_trajectories(&pts, &repair()).expect("repairable");
        assert_eq!(trajs.len(), 1);
        assert_eq!(trajs[0].len(), 7);
        assert_eq!(report.points_out, 7);
    }

    #[test]
    fn policy_parses_from_cli_spellings() {
        for (s, want) in [
            ("strict", SanitizePolicy::Strict),
            ("Repair", SanitizePolicy::Repair),
            ("drop", SanitizePolicy::DropBad),
            ("drop-bad", SanitizePolicy::DropBad),
            ("dropbad", SanitizePolicy::DropBad),
        ] {
            assert_eq!(s.parse::<SanitizePolicy>(), Ok(want), "{s}");
        }
        assert!("fix-everything".parse::<SanitizePolicy>().is_err());
    }
}
