//! Raw trajectories: Definition 1 of the paper.

use crate::sanitize::TrajectoryError;
use serde::{Deserialize, Serialize};
use stmaker_geo::{GeoPoint, Polyline};

/// A point in time, in whole seconds since an arbitrary epoch.
///
/// The experiments only ever need durations and time-of-day buckets, so a
/// plain second counter (with day-wrapping helpers) is sufficient and keeps
/// the stack free of external datetime dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// Seconds elapsed from `self` to `later` (may be negative).
    pub fn delta_secs(&self, later: &Timestamp) -> i64 {
        later.0 - self.0
    }

    /// Hour of day in `[0, 24)` (the epoch is taken to be midnight).
    pub fn hour_of_day(&self) -> f64 {
        (self.0.rem_euclid(86_400)) as f64 / 3600.0
    }

    /// The paper's Fig. 8 buckets: 12 two-hour bins, `0` = 00:00–02:00 …
    /// `11` = 22:00–24:00.
    pub fn two_hour_bucket(&self) -> usize {
        (self.hour_of_day() / 2.0) as usize % 12
    }

    /// A timestamp at `day` days plus `hour` hours after the epoch.
    pub fn at(day: i64, hour: f64) -> Timestamp {
        Timestamp(day * 86_400 + (hour * 3600.0) as i64)
    }
}

/// One GPS sample: location plus timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RawPoint {
    pub point: GeoPoint,
    pub t: Timestamp,
}

/// Definition 1: "A trajectory T is a finite sequence of locations sampled
/// from the original route of a moving object and their associated
/// time-stamps."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawTrajectory {
    points: Vec<RawPoint>,
}

impl RawTrajectory {
    /// Creates a trajectory, validating temporal ordering.
    ///
    /// Prefer [`RawTrajectory::try_new`] for untrusted input — this
    /// constructor is for data whose validity is already established (test
    /// fixtures, the trip generator, sanitized segments).
    ///
    /// # Panics
    /// Panics if fewer than two samples are supplied, timestamps decrease,
    /// or a coordinate is non-finite.
    pub fn new(points: Vec<RawPoint>) -> Self {
        RawView::validate(&points);
        Self { points }
    }

    /// Fallible construction: full invariant check (≥ 2 samples, finite
    /// in-range coordinates, non-decreasing timestamps) with a typed
    /// [`TrajectoryError`] instead of a panic.
    pub fn try_new(points: Vec<RawPoint>) -> Result<Self, TrajectoryError> {
        RawView::check(&points)?;
        Ok(Self { points })
    }

    /// A zero-copy borrowed view over this trajectory's samples. All
    /// read-only trajectory operations live on [`RawView`]; the owning
    /// methods below delegate to it.
    pub fn view(&self) -> RawView<'_> {
        RawView { points: &self.points }
    }

    /// The GPS samples.
    pub fn points(&self) -> &[RawPoint] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Never true (construction requires ≥ 2 samples); kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// First sample.
    pub fn start(&self) -> &RawPoint {
        &self.points[0]
    }

    /// Last sample.
    pub fn end(&self) -> &RawPoint {
        self.points.last().expect("non-empty by construction")
    }

    /// Total elapsed time in seconds.
    pub fn duration_secs(&self) -> i64 {
        self.view().duration_secs()
    }

    /// Total geometric length in metres.
    pub fn length_m(&self) -> f64 {
        self.view().length_m()
    }

    /// Spatial shape of the trajectory.
    pub fn polyline(&self) -> Polyline {
        self.view().polyline()
    }

    /// The samples with timestamps in `[t0, t1]` (inclusive).
    ///
    /// Used to attribute raw samples to a symbolic segment when extracting
    /// its moving features. Returns an empty slice if no samples fall inside.
    pub fn slice_time(&self, t0: Timestamp, t1: Timestamp) -> &[RawPoint] {
        self.view().slice_time(t0, t1)
    }

    /// The half-open index range of samples with timestamps in `[t0, t1]`.
    pub fn time_range_indices(&self, t0: Timestamp, t1: Timestamp) -> (usize, usize) {
        self.view().time_range_indices(t0, t1)
    }

    /// Interpolated position at time `t` (clamped to the trajectory's span).
    pub fn position_at(&self, t: Timestamp) -> GeoPoint {
        self.view().position_at(t)
    }
}

/// A borrowed, zero-copy view of a raw trajectory: the same invariants as
/// [`RawTrajectory`] (≥ 2 samples, non-decreasing timestamps) over a slice
/// someone else owns. `Copy`, so it passes through pipelines by value.
///
/// This lets streaming and batch callers summarize straight out of a sample
/// buffer without cloning it into an owned `RawTrajectory` first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawView<'a> {
    points: &'a [RawPoint],
}

impl<'a> RawView<'a> {
    /// Creates a view, validating temporal ordering.
    ///
    /// Prefer [`RawView::try_new`] for untrusted input.
    ///
    /// # Panics
    /// Panics if fewer than two samples are supplied, timestamps decrease,
    /// or a coordinate is non-finite.
    pub fn new(points: &'a [RawPoint]) -> Self {
        Self::validate(points);
        Self { points }
    }

    /// Fallible construction: [`RawView::check`] with a typed error instead
    /// of a panic.
    pub fn try_new(points: &'a [RawPoint]) -> Result<Self, TrajectoryError> {
        Self::check(points)?;
        Ok(Self { points })
    }

    /// Shared invariant check for owned and borrowed construction
    /// (panicking form, kept for the trusted constructors).
    fn validate(points: &[RawPoint]) {
        assert!(points.len() >= 2, "a trajectory needs at least two samples");
        assert!(points.windows(2).all(|w| w[0].t <= w[1].t), "timestamps must be non-decreasing");
        assert!(
            points.iter().all(|p| p.point.lat.is_finite() && p.point.lon.is_finite()),
            "coordinates must be finite"
        );
    }

    /// The full construction invariant as a typed verdict: ≥ 2 samples,
    /// every coordinate finite and within `[-90, 90]` × `[-180, 180]`,
    /// timestamps non-decreasing. This is the acceptance test a sanitized
    /// segment must pass (see [`crate::sanitize`]).
    pub fn check(points: &[RawPoint]) -> Result<(), TrajectoryError> {
        if points.len() < 2 {
            return Err(TrajectoryError::TooFewPoints { got: points.len() });
        }
        for (index, p) in points.iter().enumerate() {
            if !p.point.lat.is_finite() || !p.point.lon.is_finite() {
                return Err(TrajectoryError::NonFiniteCoordinate { index });
            }
            if !(-90.0..=90.0).contains(&p.point.lat) || !(-180.0..=180.0).contains(&p.point.lon) {
                return Err(TrajectoryError::OutOfRangeCoordinate {
                    index,
                    lat: p.point.lat,
                    lon: p.point.lon,
                });
            }
        }
        for (i, w) in points.windows(2).enumerate() {
            if w[1].t < w[0].t {
                return Err(TrajectoryError::OutOfOrderTimestamp {
                    index: i + 1,
                    prev_t: w[0].t.0,
                    got_t: w[1].t.0,
                });
            }
        }
        Ok(())
    }

    /// The GPS samples.
    pub fn points(&self) -> &'a [RawPoint] {
        self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Never true (construction requires ≥ 2 samples); kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// First sample.
    pub fn start(&self) -> &'a RawPoint {
        &self.points[0]
    }

    /// Last sample.
    pub fn end(&self) -> &'a RawPoint {
        self.points.last().expect("non-empty by construction")
    }

    /// Total elapsed time in seconds.
    pub fn duration_secs(&self) -> i64 {
        self.start().t.delta_secs(&self.end().t)
    }

    /// Total geometric length in metres.
    pub fn length_m(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].point.haversine_m(&w[1].point)).sum()
    }

    /// Spatial shape of the trajectory.
    pub fn polyline(&self) -> Polyline {
        Polyline::new(self.points.iter().map(|p| p.point).collect())
    }

    /// The samples with timestamps in `[t0, t1]` (inclusive).
    pub fn slice_time(&self, t0: Timestamp, t1: Timestamp) -> &'a [RawPoint] {
        let (lo, hi) = self.time_range_indices(t0, t1);
        &self.points[lo..hi]
    }

    /// The half-open index range of samples with timestamps in `[t0, t1]`.
    pub fn time_range_indices(&self, t0: Timestamp, t1: Timestamp) -> (usize, usize) {
        let lo = self.points.partition_point(|p| p.t < t0);
        let hi = self.points.partition_point(|p| p.t <= t1);
        (lo, hi)
    }

    /// Interpolated position at time `t` (clamped to the trajectory's span).
    pub fn position_at(&self, t: Timestamp) -> GeoPoint {
        if t <= self.start().t {
            return self.start().point;
        }
        if t >= self.end().t {
            return self.end().point;
        }
        let i = self.points.partition_point(|p| p.t <= t) - 1;
        let (a, b) = (&self.points[i], &self.points[i + 1]);
        let span = a.t.delta_secs(&b.t);
        if span == 0 {
            return a.point;
        }
        let frac = a.t.delta_secs(&t) as f64 / span as f64;
        a.point.lerp(&b.point, frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> GeoPoint {
        GeoPoint::new(39.9, 116.4)
    }

    /// Straight-east trajectory: one point every 10 s, 100 m apart (36 km/h).
    fn east_line(n: usize) -> RawTrajectory {
        RawTrajectory::new(
            (0..n)
                .map(|i| RawPoint {
                    point: base().destination(90.0, 100.0 * i as f64),
                    t: Timestamp(10 * i as i64),
                })
                .collect(),
        )
    }

    #[test]
    fn basic_accessors() {
        let t = east_line(11);
        assert_eq!(t.len(), 11);
        assert_eq!(t.duration_secs(), 100);
        assert!((t.length_m() - 1000.0).abs() < 1.0);
        assert_eq!(t.start().t, Timestamp(0));
        assert_eq!(t.end().t, Timestamp(100));
    }

    #[test]
    fn slice_time_selects_inclusive_window() {
        let t = east_line(11);
        let s = t.slice_time(Timestamp(20), Timestamp(50));
        assert_eq!(s.len(), 4); // t = 20, 30, 40, 50
        assert_eq!(s[0].t, Timestamp(20));
        assert_eq!(s[3].t, Timestamp(50));
        assert!(t.slice_time(Timestamp(101), Timestamp(200)).is_empty());
    }

    #[test]
    fn position_at_interpolates() {
        let t = east_line(11);
        let p = t.position_at(Timestamp(15));
        let expect = base().destination(90.0, 150.0);
        assert!(p.haversine_m(&expect) < 1.0);
        // Clamped outside the span.
        assert_eq!(t.position_at(Timestamp(-5)), t.start().point);
        assert_eq!(t.position_at(Timestamp(1_000)), t.end().point);
    }

    #[test]
    fn position_at_handles_repeated_timestamps() {
        let t = RawTrajectory::new(vec![
            RawPoint { point: base(), t: Timestamp(0) },
            RawPoint { point: base().destination(90.0, 50.0), t: Timestamp(10) },
            RawPoint { point: base().destination(90.0, 50.0), t: Timestamp(10) },
            RawPoint { point: base().destination(90.0, 100.0), t: Timestamp(20) },
        ]);
        let p = t.position_at(Timestamp(10));
        assert!(p.haversine_m(&base().destination(90.0, 50.0)) < 1.0);
    }

    #[test]
    fn hour_and_bucket_helpers() {
        assert_eq!(Timestamp::at(0, 9.5).hour_of_day(), 9.5);
        assert_eq!(Timestamp::at(3, 9.5).hour_of_day(), 9.5);
        assert_eq!(Timestamp::at(0, 0.0).two_hour_bucket(), 0);
        assert_eq!(Timestamp::at(0, 17.0).two_hour_bucket(), 8); // 16:00–18:00
        assert_eq!(Timestamp::at(0, 23.9).two_hour_bucket(), 11);
    }

    #[test]
    fn view_matches_owned_behaviour() {
        let t = east_line(11);
        let v = t.view();
        assert_eq!(v.len(), t.len());
        assert_eq!(v.duration_secs(), t.duration_secs());
        assert_eq!(v.length_m(), t.length_m());
        assert_eq!(
            v.slice_time(Timestamp(20), Timestamp(50)),
            t.slice_time(Timestamp(20), Timestamp(50))
        );
        assert_eq!(v.position_at(Timestamp(15)), t.position_at(Timestamp(15)));
        // Views are Copy: both copies stay usable.
        let v2 = v;
        assert_eq!(v.start().t, v2.start().t);
        // A view can also be built straight from a borrowed buffer.
        let buf: Vec<RawPoint> = t.points().to_vec();
        let direct = RawView::new(&buf);
        assert_eq!(direct.polyline().len(), t.polyline().len());
    }

    #[test]
    fn try_new_returns_typed_errors() {
        use crate::sanitize::TrajectoryError;
        // Too few points.
        let one = vec![RawPoint { point: base(), t: Timestamp(0) }];
        assert_eq!(
            RawTrajectory::try_new(one.clone()).unwrap_err(),
            TrajectoryError::TooFewPoints { got: 1 }
        );
        assert_eq!(RawView::try_new(&one).unwrap_err(), TrajectoryError::TooFewPoints { got: 1 });
        // Non-finite coordinate.
        let mut pts = east_line(3).points().to_vec();
        pts[1].point.lon = f64::NAN;
        assert_eq!(
            RawView::try_new(&pts).unwrap_err(),
            TrajectoryError::NonFiniteCoordinate { index: 1 }
        );
        // Out-of-range coordinate.
        let mut pts = east_line(3).points().to_vec();
        pts[2].point.lat = 97.0;
        assert!(matches!(
            RawTrajectory::try_new(pts).unwrap_err(),
            TrajectoryError::OutOfRangeCoordinate { index: 2, .. }
        ));
        // Out-of-order timestamps.
        let mut pts = east_line(3).points().to_vec();
        pts[2].t = Timestamp(-5);
        assert_eq!(
            RawView::try_new(&pts).unwrap_err(),
            TrajectoryError::OutOfOrderTimestamp { index: 2, prev_t: 10, got_t: -5 }
        );
        // Valid input round-trips; duplicate timestamps stay legal.
        let t = east_line(4);
        assert_eq!(RawTrajectory::try_new(t.points().to_vec()).expect("valid"), t);
        let dup = vec![
            RawPoint { point: base(), t: Timestamp(0) },
            RawPoint { point: base(), t: Timestamp(0) },
        ];
        assert!(RawView::try_new(&dup).is_ok());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn new_panics_on_non_finite_coordinates() {
        // NaN coordinates cannot come from GeoPoint::new (it asserts), but
        // serde deserialization and direct field writes bypass it.
        RawTrajectory::new(vec![
            RawPoint { point: GeoPoint { lat: f64::NAN, lon: 116.4 }, t: Timestamp(0) },
            RawPoint { point: base(), t: Timestamp(5) },
        ]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn view_rejects_single_sample() {
        let p = [RawPoint { point: base(), t: Timestamp(0) }];
        RawView::new(&p);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_travel() {
        RawTrajectory::new(vec![
            RawPoint { point: base(), t: Timestamp(10) },
            RawPoint { point: base(), t: Timestamp(5) },
        ]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_sample() {
        RawTrajectory::new(vec![RawPoint { point: base(), t: Timestamp(0) }]);
    }
}
