//! Property-based tests for the core algorithms: partition DP optimality,
//! similarity bounds, edit-distance and irregular-rate invariants.

use proptest::prelude::*;
use std::sync::Arc;
use stmaker::feature::{Feature, FeatureKind, FeatureScale, FeatureSet, FeatureWeights};
use stmaker::irregular::{feature_edit_distance, moving_irregular_rate, routing_irregular_rate};
use stmaker::partition::{optimal_k_partition, optimal_partition, partition_potential};
use stmaker::similarity::{
    consecutive_similarities, cosine_similarity, normalize, normalizing_constants,
};

struct Dummy(&'static str);
impl Feature for Dummy {
    fn key(&self) -> &str {
        self.0
    }
    fn kind(&self) -> FeatureKind {
        FeatureKind::Moving
    }
    fn scale(&self) -> FeatureScale {
        FeatureScale::Numeric
    }
    fn extract(&self, _: &stmaker::SegmentContext<'_>) -> f64 {
        0.0
    }
}

fn feature_set(n: usize) -> FeatureSet {
    let mut set = FeatureSet::new();
    for i in 0..n {
        let key: &'static str = Box::leak(format!("f{i}").into_boxed_str());
        set.push(Arc::new(Dummy(key)));
    }
    set
}

/// Brute-force partition optimum over all cut assignments.
fn brute_force(sims: &[f64], sigs: &[f64], ca: f64, k: Option<usize>) -> Option<f64> {
    let b = sims.len();
    let mut best: Option<f64> = None;
    for mask in 0u32..(1u32 << b) {
        let cuts: Vec<bool> = (0..b).map(|i| mask & (1 << i) != 0).collect();
        if let Some(k) = k {
            if cuts.iter().filter(|c| **c).count() != k - 1 {
                continue;
            }
        }
        let p = partition_potential(sims, sigs, ca, &cuts);
        best = Some(best.map_or(p, |b: f64| b.min(p)));
    }
    best
}

proptest! {
    #[test]
    fn unconstrained_partition_is_globally_optimal(
        pairs in prop::collection::vec((0.5f64..1.0, 0.0f64..1.0), 1..10),
        ca in 0.1f64..2.0,
    ) {
        let sims: Vec<f64> = pairs.iter().map(|(s, _)| *s).collect();
        let sigs: Vec<f64> = pairs.iter().map(|(_, g)| *g).collect();
        let dp = optimal_partition(&sims, &sigs, ca);
        let bf = brute_force(&sims, &sigs, ca, None).unwrap();
        prop_assert!((dp.potential - bf).abs() < 1e-9, "dp {} vs bf {bf}", dp.potential);
    }

    #[test]
    fn k_partition_is_optimal_and_exact(
        pairs in prop::collection::vec((0.5f64..1.0, 0.0f64..1.0), 1..9),
        ca in 0.1f64..2.0,
        k_raw in 1usize..10,
    ) {
        let sims: Vec<f64> = pairs.iter().map(|(s, _)| *s).collect();
        let sigs: Vec<f64> = pairs.iter().map(|(_, g)| *g).collect();
        let n_segs = sims.len() + 1;
        let k = (k_raw % n_segs) + 1; // 1..=n_segs
        let dp = optimal_k_partition(&sims, &sigs, ca, k).expect("feasible k");
        prop_assert_eq!(dp.spans.len(), k);
        // Exhaustive coverage in order (Definition 5).
        prop_assert_eq!(dp.spans[0].seg_start, 0);
        prop_assert_eq!(dp.spans.last().unwrap().seg_end, n_segs - 1);
        for w in dp.spans.windows(2) {
            prop_assert_eq!(w[0].seg_end + 1, w[1].seg_start);
        }
        let bf = brute_force(&sims, &sigs, ca, Some(k)).unwrap();
        prop_assert!((dp.potential - bf).abs() < 1e-9, "k={k}: dp {} vs bf {bf}", dp.potential);
    }

    #[test]
    fn unconstrained_lower_bounds_every_k(
        pairs in prop::collection::vec((0.5f64..1.0, 0.0f64..1.0), 1..8),
        ca in 0.1f64..2.0,
    ) {
        let sims: Vec<f64> = pairs.iter().map(|(s, _)| *s).collect();
        let sigs: Vec<f64> = pairs.iter().map(|(_, g)| *g).collect();
        let free = optimal_partition(&sims, &sigs, ca).potential;
        for k in 1..=sims.len() + 1 {
            let dp = optimal_k_partition(&sims, &sigs, ca, k).unwrap();
            prop_assert!(dp.potential >= free - 1e-9);
        }
    }

    #[test]
    fn cosine_similarity_bounds_symmetry_scale(
        u in prop::collection::vec(0.0f64..1.0, 2..6),
        v_seed in prop::collection::vec(0.0f64..1.0, 2..6),
        scale in 0.1f64..10.0,
    ) {
        let n = u.len().min(v_seed.len());
        let u = &u[..n];
        let v = &v_seed[..n];
        let w = FeatureWeights::uniform(&feature_set(n));
        let s = cosine_similarity(u, v, &w);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
        prop_assert!((cosine_similarity(v, u, &w) - s).abs() < 1e-12);
        // Positive scaling of one vector leaves cosine unchanged.
        let scaled: Vec<f64> = v.iter().map(|x| x * scale).collect();
        prop_assert!((cosine_similarity(u, &scaled, &w) - s).abs() < 1e-9);
        // Self-similarity is 1.
        prop_assert!((cosine_similarity(u, u, &w) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_maps_into_unit_interval(
        rows in prop::collection::vec(prop::collection::vec(0.0f64..100.0, 3), 1..8),
    ) {
        let constants = normalizing_constants(&rows);
        for row in &rows {
            let n = normalize(row, &constants);
            prop_assert!(n.iter().all(|x| (0.0..=1.0 + 1e-12).contains(x)), "{n:?}");
        }
        // Consecutive similarities stay in bounds too.
        let w = FeatureWeights::uniform(&feature_set(3));
        for s in consecutive_similarities(&rows, &w) {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s));
        }
    }

    #[test]
    fn edit_distance_identity_symmetry_bounds(
        a in prop::collection::vec(0.0f64..5.0, 0..8),
        b in prop::collection::vec(0.0f64..5.0, 0..8),
    ) {
        for scale in [FeatureScale::Numeric, FeatureScale::Categorical] {
            let d = feature_edit_distance(&a, &b, scale);
            prop_assert!((feature_edit_distance(&b, &a, scale) - d).abs() < 1e-9);
            prop_assert!(feature_edit_distance(&a, &a, scale) < 1e-12);
            prop_assert!(d >= (a.len() as f64 - b.len() as f64).abs() - 1e-12);
            prop_assert!(d <= a.len().max(b.len()) as f64 * 5.0 + 1e-12);
            prop_assert!(d >= 0.0);
        }
    }

    #[test]
    fn routing_rate_bounds(
        tp in prop::collection::vec(1.0f64..7.0, 0..8),
        pr in prop::collection::vec(1.0f64..7.0, 0..8),
        w in 0.1f64..4.0,
    ) {
        for scale in [FeatureScale::Numeric, FeatureScale::Categorical] {
            let g = routing_irregular_rate(&tp, &pr, scale, w);
            prop_assert!(g >= 0.0);
            // Normalized numeric values and 0/1 categorical costs keep the
            // per-slot cost ≤ 1, so Γ ≤ w.
            prop_assert!(g <= w + 1e-9, "Γ = {g} > w = {w}");
        }
    }

    #[test]
    fn moving_rate_non_negative_and_weight_linear(
        tp in prop::collection::vec(0.0f64..100.0, 1..8),
        regs in prop::collection::vec(prop::option::of(0.0f64..100.0), 1..8),
        w in 0.1f64..4.0,
    ) {
        let n = tp.len().min(regs.len());
        let tp = &tp[..n];
        let regs = &regs[..n];
        let g1 = moving_irregular_rate(tp, regs, 1.0);
        let gw = moving_irregular_rate(tp, regs, w);
        prop_assert!(g1 >= 0.0 && g1.is_finite());
        prop_assert!((gw - w * g1).abs() < 1e-9);
    }

    #[test]
    fn moving_rate_zero_when_matching_history(
        tp in prop::collection::vec(0.0f64..100.0, 1..8),
    ) {
        let regs: Vec<Option<f64>> = tp.iter().map(|v| Some(*v)).collect();
        prop_assert!(moving_irregular_rate(&tp, &regs, 1.0) < 1e-12);
    }
}
