//! Read-through memoization of the serving path's pure route queries.
//!
//! Real workloads repeat landmark pairs constantly (commuter corridors —
//! the motivation in ISSUE/Sec. IV): every `summarize` call re-derives
//! `PR(from, to)` and, per routing feature, the popular route's per-hop
//! regular value sequence. Both are **pure functions of the trained
//! model**: `PopularRoutes::popular_route` depends only on `(from, to)`
//! and the model, and the per-hop sequence only on `(from, to, feature)`
//! — so memoizing them can change latency but never output bytes. That
//! is the determinism argument (DESIGN.md §12) behind the e2e guarantee
//! that summaries with and without the cache are byte-identical at any
//! thread count.
//!
//! Values are stored as `Arc` slices so a hit is a probe plus a
//! refcount bump — no `Vec` clone on the hot path.
//!
//! **One cache, one model.** The purity argument above holds only against
//! a single immutable [`crate::TrainedModel`]: entries are keyed by
//! landmark pair, *not* by model identity, and negative answers (`None`
//! routes/values) are memoized too. A `CachedRoutes` must therefore live
//! and die with exactly one model generation — the model-swap paths
//! (`Summarizer::swap_model`, `set_config`, the serving layer's hot-swap
//! slot) install a fresh cache in the same step as the new model, so a
//! swapped-in model can never be answered from the previous model's
//! entries. See DESIGN.md §15.

use std::sync::Arc;

use stmaker_cache::{CacheStats, ShardedCache};
use stmaker_poi::LandmarkId;
use stmaker_routes::{HistoricalFeatureMap, PopularRoutes};

use crate::feature::FeatureScale;
use crate::select::popular_route_values;

/// How many per-route value sequences to keep per cached route: one per
/// feature of the standard set, rounded up — custom feature sets with
/// more features simply share the budget.
const VALUES_PER_ROUTE: usize = 8;

/// Memo for [`PopularRoutes::popular_route`] and the per-hop regular
/// value sequences along each popular route. Shared across
/// `summarize_batch` workers via `Arc`; see the module docs for the
/// purity/determinism contract.
pub struct CachedRoutes {
    /// `(from, to) → PR(from, to)` (including negative answers: pairs the
    /// corpus gives no basis for are cached as `None`).
    routes: ShardedCache<(LandmarkId, LandmarkId), Option<Arc<[LandmarkId]>>>,
    /// `(from, to, feature idx) → per-hop regular values along
    /// `PR(from, to)``. Keyed by endpoints, not the route itself, because
    /// the route is a pure function of the endpoints.
    values: ShardedCache<(LandmarkId, LandmarkId, u32), Option<Arc<[f64]>>>,
}

impl CachedRoutes {
    /// A cache bounded at `capacity` routes (plus up to
    /// `capacity × VALUES_PER_ROUTE` value sequences alongside).
    pub fn new(capacity: usize) -> Self {
        Self {
            routes: ShardedCache::new(capacity),
            values: ShardedCache::new(capacity.saturating_mul(VALUES_PER_ROUTE)),
        }
    }

    /// Read-through `PR(from, to)` against `model`.
    pub fn popular_route(
        &self,
        model: &PopularRoutes,
        from: LandmarkId,
        to: LandmarkId,
    ) -> Option<Arc<[LandmarkId]>> {
        self.routes.get_or_insert_with(&(from, to), || model.popular_route(from, to).map(Arc::from))
    }

    /// Read-through per-hop regular values of feature `feat_idx` (with key
    /// `key` and scale `scale`) along `route`, which must be the popular
    /// route of its own endpoints — the memo key is `(first, last,
    /// feat_idx)`.
    pub fn route_values(
        &self,
        featmap: &HistoricalFeatureMap,
        route: &[LandmarkId],
        key: &str,
        scale: FeatureScale,
        feat_idx: u32,
    ) -> Option<Arc<[f64]>> {
        let (Some(&from), Some(&to)) = (route.first(), route.last()) else {
            return popular_route_values(featmap, route, key, scale).map(Arc::from);
        };
        self.values.get_or_insert_with(&(from, to, feat_idx), || {
            popular_route_values(featmap, route, key, scale).map(Arc::from)
        })
    }

    /// Combined counters of the route and value caches (the
    /// `cache.hits`/`cache.misses`/`cache.evictions` numbers the batch
    /// entry points report).
    pub fn stats(&self) -> CacheStats {
        self.routes.stats().combined(&self.values.stats())
    }

    /// Capacity of the route cache alone (what `--route-cache N` sized;
    /// reported as the `route_cache.capacity` gauge).
    pub fn route_capacity(&self) -> usize {
        self.routes.capacity()
    }
}

impl std::fmt::Debug for CachedRoutes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedRoutes")
            .field("routes", &self.routes)
            .field("values", &self.values)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmaker_routes::PopularRouteConfig;
    use stmaker_trajectory::{SymbolicPoint, SymbolicTrajectory, Timestamp};

    fn l(i: u32) -> LandmarkId {
        LandmarkId(i)
    }

    fn traj(ids: &[u32]) -> SymbolicTrajectory {
        SymbolicTrajectory::new(
            ids.iter()
                .enumerate()
                .map(|(i, l)| SymbolicPoint {
                    landmark: LandmarkId(*l),
                    t: Timestamp(60 * i as i64),
                })
                .collect(),
        )
    }

    #[test]
    fn cached_routes_match_uncached() {
        let corpus = vec![traj(&[0, 1, 2]), traj(&[0, 1, 2]), traj(&[2, 3, 4])];
        let pr = PopularRoutes::build(&corpus, PopularRouteConfig::default());
        let cache = CachedRoutes::new(8);
        for &(a, b) in &[(0, 2), (0, 4), (2, 4), (9, 9), (5, 6), (0, 2), (0, 4)] {
            let direct = pr.popular_route(l(a), l(b));
            let cached = cache.popular_route(&pr, l(a), l(b));
            assert_eq!(direct.as_deref(), cached.as_deref().map(|r| &r[..]), "({a},{b})");
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 5);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn cached_values_match_uncached() {
        let mut featmap = HistoricalFeatureMap::new();
        featmap.add_observation(l(0), l(1), "speed", 50.0);
        featmap.add_observation(l(1), l(2), "speed", 60.0);
        let route = [l(0), l(1), l(2)];
        let cache = CachedRoutes::new(4);
        let direct = popular_route_values(&featmap, &route, "speed", FeatureScale::Numeric);
        for _ in 0..3 {
            let cached = cache.route_values(&featmap, &route, "speed", FeatureScale::Numeric, 3);
            assert_eq!(direct.as_deref(), cached.as_deref().map(|v| &v[..]));
        }
        // Unknown-history routes memoize their negative answer too.
        let none = cache.route_values(&featmap, &[l(7), l(8)], "speed", FeatureScale::Numeric, 3);
        assert!(none.is_none());
        assert!(cache.stats().hits >= 2);
    }

    #[test]
    fn empty_route_is_computed_not_cached() {
        let featmap = HistoricalFeatureMap::new();
        let cache = CachedRoutes::new(4);
        let got = cache.route_values(&featmap, &[], "speed", FeatureScale::Numeric, 0);
        assert_eq!(got.as_deref().map(|v| v.len()), Some(0));
        assert_eq!(cache.stats().misses, 0);
    }
}
