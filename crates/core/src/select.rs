//! Feature selection (Sec. V): compute every feature's irregular rate on a
//! partition and keep those above the threshold η.

use crate::cached_routes::CachedRoutes;
use crate::feature::{FeatureKind, FeatureScale, FeatureSet, FeatureWeights};
use crate::irregular::{moving_irregular_rate, routing_irregular_rate_with, EditScratch};
use stmaker_poi::LandmarkId;
use stmaker_routes::HistoricalFeatureMap;

/// A feature chosen to appear in a partition's summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectedFeature {
    /// Feature key (dimension key in the [`FeatureSet`]).
    pub key: String,
    /// Human-readable label.
    pub label: String,
    /// Routing or moving.
    pub kind: FeatureKind,
    /// The irregular rate Γ_f(TP) that earned selection.
    pub irregular_rate: f64,
    /// Partition-level observed aggregate: mean for numeric features, mode
    /// for categorical ones.
    pub observed: f64,
    /// Historical regular aggregate on the partition's route, if known.
    pub regular: Option<f64>,
}

/// Inputs for selecting features on one partition.
pub struct SelectionInput<'a> {
    /// The feature set in dimension order.
    pub features: &'a FeatureSet,
    /// Per-feature weights `w_f`.
    pub weights: &'a FeatureWeights,
    /// Selection threshold η.
    pub eta: f64,
    /// Per-segment feature value vectors for the partition's segments.
    pub seg_values: &'a [Vec<f64>],
    /// The partition's landmark hops: `hops[t] = (l_t, l_{t+1})`.
    pub hops: &'a [(LandmarkId, LandmarkId)],
    /// The popular route `PR` between the partition's endpoints, if mined.
    pub popular_route: Option<&'a [LandmarkId]>,
    /// Historical per-hop feature statistics.
    pub featmap: &'a HistoricalFeatureMap,
    /// Optional read-through memo for the popular route's per-hop value
    /// sequences (shared across batch workers); `None` computes per call.
    pub route_cache: Option<&'a CachedRoutes>,
}

/// Reusable buffers for [`select_features_with`]: the per-feature value
/// vectors plus the edit-distance scratch. Selection runs per partition
/// per trip; holding one of these per worker thread (the batch path keeps
/// one in a thread-local) removes every per-feature heap allocation that
/// reaches steady-state capacity.
#[derive(Debug, Default)]
pub struct SelectScratch {
    pub(crate) edit: EditScratch,
    pub(crate) tp_values: Vec<f64>,
    pub(crate) regulars: Vec<Option<f64>>,
    pub(crate) known: Vec<f64>,
    pub(crate) deviating: Vec<f64>,
}

/// Computes Γ_f for every feature and returns those with Γ_f > η, most
/// irregular first. This is Sec. V end to end: routing features compare
/// against the popular route, moving features against the historical
/// feature map.
pub fn select_features(input: &SelectionInput<'_>) -> Vec<SelectedFeature> {
    select_features_with(input, &mut SelectScratch::default())
}

/// [`select_features`] with caller-provided scratch buffers (the batch
/// serving path holds one per worker thread).
pub fn select_features_with(
    input: &SelectionInput<'_>,
    scratch: &mut SelectScratch,
) -> Vec<SelectedFeature> {
    let mut out = Vec::new();
    for (idx, f) in input.features.features().iter().enumerate() {
        let w = input.weights.get(idx);
        scratch.tp_values.clear();
        scratch.tp_values.extend(input.seg_values.iter().map(|v| v[idx]));

        // The popular-route value sequence lives either in the shared memo
        // (an `Arc` slice, no copy) or in a per-call vector; both borrows
        // must outlive `pr_values` below, hence the two deferred locals.
        let cached_vals;
        let computed_vals;
        let (gamma, regular) = match f.kind() {
            FeatureKind::Routing => {
                let Some(pr) = input.popular_route else { continue };
                let pr_values: &[f64] = match input.route_cache {
                    Some(cache) => {
                        cached_vals = cache.route_values(
                            input.featmap,
                            pr,
                            f.key(),
                            f.scale(),
                            idx as u32, // cast-ok: feature index, tiny
                        );
                        match &cached_vals {
                            Some(v) => v,
                            // Some PR hop has no history for this feature
                            // (possible when a custom feature was added
                            // after training): comparing against a
                            // truncated sequence would read as a spurious
                            // length mismatch, so skip the feature instead.
                            None => continue,
                        }
                    }
                    None => {
                        computed_vals = popular_route_values(input.featmap, pr, f.key(), f.scale());
                        match &computed_vals {
                            Some(v) => v,
                            None => continue,
                        }
                    }
                };
                if pr_values.is_empty() {
                    continue; // single-landmark popular route: nothing to compare
                }
                let gamma = routing_irregular_rate_with(
                    &scratch.tp_values,
                    pr_values,
                    f.scale(),
                    w,
                    &mut scratch.edit,
                );
                (gamma, aggregate(pr_values, f.scale()))
            }
            FeatureKind::Moving => {
                scratch.regulars.clear();
                scratch.regulars.extend(input.hops.iter().map(|(a, b)| match f.scale() {
                    FeatureScale::Numeric => input.featmap.regular_value(*a, *b, f.key()),
                    FeatureScale::Categorical => {
                        // cast-ok: small category code
                        input.featmap.regular_category(*a, *b, f.key()).map(|c| c as f64)
                    }
                }));
                let gamma = moving_irregular_rate(&scratch.tp_values, &scratch.regulars, w);
                scratch.known.clear();
                scratch.known.extend(scratch.regulars.iter().flatten().copied());
                (gamma, aggregate(&scratch.known, f.scale()))
            }
        };

        // Count features describe events; zero events is smooth driving, not
        // something to phrase (Table V templates only state positive counts).
        if f.count_like() && scratch.tp_values.iter().sum::<f64>() == 0.0 {
            continue;
        }

        // Categorical presentation guard: a route-length mismatch alone can
        // push the edit distance over η even when every driven category
        // equals the usual one — and "through two-way road while most
        // drivers prefer two-way road" says nothing. A segment *deviates*
        // when its category differs from the usual category of its own hop
        // (falling back to the route-level regular where the hop has no
        // history); the phrased value is the modal deviating category
        // (Sec. III-A: "if an object moves along a one-way road, then one of
        // the most distinctive information of the trajectory is 'moving
        // along a one-way road'"). With no deviating segment the feature is
        // skipped.
        // The reference a segment deviates *from* depends on the family:
        // routing features compare against the popular route's modal
        // category (the whole point of Sec. V-A is route-vs-popular-route —
        // a driven hop's own history is the same physical road and would
        // never differ); moving categorical features compare against their
        // own hop's historical mode.
        let observed = match (f.scale(), regular) {
            (FeatureScale::Categorical, Some(reg)) => {
                scratch.deviating.clear();
                scratch.deviating.extend(
                    scratch
                        .tp_values
                        .iter()
                        .zip(input.hops)
                        .filter(|(v, (a, b))| {
                            let reference = match f.kind() {
                                FeatureKind::Routing => reg,
                                FeatureKind::Moving => input
                                    .featmap
                                    .regular_category(*a, *b, f.key())
                                    .map(|c| c as f64) // cast-ok: small category code
                                    .unwrap_or(reg),
                            };
                            **v != reference
                        })
                        .map(|(v, _)| *v),
                );
                match aggregate(&scratch.deviating, FeatureScale::Categorical) {
                    Some(v) => v,
                    None => continue, // every segment matches its reference category
                }
            }
            _ => aggregate(&scratch.tp_values, f.scale()).unwrap_or(0.0),
        };

        crate::invariant::check_irregular_rate(f.key(), gamma);
        if gamma > input.eta {
            out.push(SelectedFeature {
                key: f.key().to_owned(),
                label: f.label().to_owned(),
                kind: f.kind(),
                irregular_rate: gamma,
                observed,
                regular,
            });
        }
    }
    out.sort_by(|a, b| {
        desc_nan_last(a.irregular_rate, b.irregular_rate).then_with(|| a.key.cmp(&b.key))
    });
    out
}

/// Descending float comparator with a total order: larger values sort first
/// and NaN — which `partial_cmp(..).unwrap()` would panic on — sorts
/// deterministically last. Shared by every "most irregular first" ranking.
pub fn desc_nan_last(a: f64, b: f64) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

/// Per-hop values of a routing feature along the popular route, read from
/// history. Returns `None` when any hop lacks history for the feature —
/// every hop of a mined route was observed during training, so a gap means
/// the feature key post-dates the model and the comparison is meaningless.
pub fn popular_route_values(
    featmap: &HistoricalFeatureMap,
    route: &[LandmarkId],
    key: &str,
    scale: FeatureScale,
) -> Option<Vec<f64>> {
    route
        .windows(2)
        .map(|w| match scale {
            FeatureScale::Numeric => featmap.regular_value(w[0], w[1], key),
            FeatureScale::Categorical => {
                featmap.regular_category(w[0], w[1], key).map(|c| c as f64) // cast-ok: small category code
            }
        })
        .collect()
}

/// Partition-level aggregate: mean for numeric values, mode for categorical
/// codes (ties towards the smaller code). `None` for empty input.
pub fn aggregate(values: &[f64], scale: FeatureScale) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    match scale {
        // cast-ok: value count, exact well below 2^53
        FeatureScale::Numeric => Some(values.iter().sum::<f64>() / values.len() as f64),
        FeatureScale::Categorical => {
            let mut counts: std::collections::BTreeMap<i64, usize> = Default::default();
            for v in values {
                *counts.entry(v.round() as i64).or_insert(0) += 1;
            }
            counts
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                .map(|(code, _)| code as f64) // cast-ok: small category code
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::{keys, standard_features};

    fn l(i: u32) -> LandmarkId {
        LandmarkId(i)
    }

    /// A 3-segment partition over landmarks 0→1→2→3 with handcrafted values:
    /// [grade, width, direction, speed, stays, u-turns] per segment.
    struct Fixture {
        features: FeatureSet,
        weights: FeatureWeights,
        seg_values: Vec<Vec<f64>>,
        hops: Vec<(LandmarkId, LandmarkId)>,
        featmap: HistoricalFeatureMap,
        route: Vec<LandmarkId>,
    }

    fn fixture() -> Fixture {
        let features = standard_features();
        let weights = FeatureWeights::uniform(&features);
        // The trip drives grade-5 roads where history drives grade-2; speed
        // dips on the middle segment; one stay on segment 1.
        let seg_values = vec![
            vec![5.0, 9.0, 1.0, 60.0, 0.0, 0.0],
            vec![5.0, 9.0, 1.0, 15.0, 1.0, 0.0],
            vec![5.0, 9.0, 1.0, 60.0, 0.0, 0.0],
        ];
        let hops = vec![(l(0), l(1)), (l(1), l(2)), (l(2), l(3))];
        let route = vec![l(0), l(4), l(3)]; // popular route goes elsewhere
        let mut featmap = HistoricalFeatureMap::new();
        // History on the popular route's hops: express road, 22 m, two-way.
        for w in route.windows(2) {
            featmap.add_categorical_observation(w[0], w[1], keys::GRADE, 2);
            featmap.add_observation(w[0], w[1], keys::WIDTH, 22.0);
            featmap.add_categorical_observation(w[0], w[1], keys::DIRECTION, 1);
        }
        // History on the trip's own hops: steady 60 km/h, no stays/U-turns.
        for (a, b) in &hops {
            featmap.add_observation(*a, *b, keys::SPEED, 60.0);
            featmap.add_observation(*a, *b, keys::STAY_POINTS, 0.1);
            featmap.add_observation(*a, *b, keys::U_TURNS, 0.05);
        }
        Fixture { features, weights, seg_values, hops, featmap, route }
    }

    fn run(fx: &Fixture, eta: f64) -> Vec<SelectedFeature> {
        select_features(&SelectionInput {
            features: &fx.features,
            weights: &fx.weights,
            eta,
            seg_values: &fx.seg_values,
            hops: &fx.hops,
            popular_route: Some(&fx.route),
            featmap: &fx.featmap,
            route_cache: None,
        })
    }

    #[test]
    fn irregular_features_are_selected() {
        let fx = fixture();
        let sel = run(&fx, 0.2);
        let keys_sel: Vec<&str> = sel.iter().map(|s| s.key.as_str()).collect();
        assert!(keys_sel.contains(&keys::GRADE), "grade deviates from PR: {keys_sel:?}");
        assert!(keys_sel.contains(&keys::SPEED), "mid-segment slowdown: {keys_sel:?}");
        assert!(keys_sel.contains(&keys::STAY_POINTS), "stay occurred: {keys_sel:?}");
        // Direction matches history (both two-way) → not selected.
        assert!(!keys_sel.contains(&keys::DIRECTION));
        // No U-turns happened → count guard keeps it out.
        assert!(!keys_sel.contains(&keys::U_TURNS));
    }

    #[test]
    fn selection_sorted_by_irregularity() {
        let fx = fixture();
        let sel = run(&fx, 0.2);
        assert!(sel.windows(2).all(|w| w[0].irregular_rate >= w[1].irregular_rate));
    }

    #[test]
    fn high_eta_selects_nothing() {
        let fx = fixture();
        // Weighted rates are all ≤ 1 with unit weights.
        assert!(run(&fx, 1.0).is_empty());
    }

    #[test]
    fn weights_push_features_over_threshold() {
        let mut fx = fixture();
        // Speed's unit-weight irregular rate is 0.25, below η = 0.5…
        assert!(!run(&fx, 0.5).iter().any(|s| s.key == keys::SPEED));
        // …but weighting speed 4× (the Fig. 10(a) experiment) brings it in.
        fx.weights.set(&fx.features, keys::SPEED, 4.0);
        let sel = run(&fx, 0.5);
        assert!(sel.iter().any(|s| s.key == keys::SPEED), "{sel:?}");
    }

    #[test]
    fn missing_popular_route_skips_routing_features() {
        let fx = fixture();
        let sel = select_features(&SelectionInput {
            features: &fx.features,
            weights: &fx.weights,
            eta: 0.2,
            seg_values: &fx.seg_values,
            hops: &fx.hops,
            popular_route: None,
            featmap: &fx.featmap,
            route_cache: None,
        });
        assert!(sel.iter().all(|s| s.kind == FeatureKind::Moving));
    }

    #[test]
    fn observed_and_regular_aggregates_are_sane() {
        let fx = fixture();
        let sel = run(&fx, 0.2);
        let speed = sel.iter().find(|s| s.key == keys::SPEED).unwrap();
        assert!((speed.observed - 45.0).abs() < 1e-9); // mean(60, 15, 60)
        assert_eq!(speed.regular, Some(60.0));
        let grade = sel.iter().find(|s| s.key == keys::GRADE).unwrap();
        assert_eq!(grade.observed, 5.0); // modal observed grade
        assert_eq!(grade.regular, Some(2.0)); // modal PR grade
    }

    #[test]
    fn categorical_moving_features_are_selectable() {
        // Regression: a categorical Moving feature's regulars come from the
        // categorical history store; reading the numeric store would leave
        // every regular None and Γ permanently 0.
        struct SignalState;
        impl crate::feature::Feature for SignalState {
            fn key(&self) -> &str {
                "signal_state"
            }
            fn kind(&self) -> FeatureKind {
                FeatureKind::Moving
            }
            fn scale(&self) -> FeatureScale {
                FeatureScale::Categorical
            }
            fn extract(&self, _: &crate::context::SegmentContext<'_>) -> f64 {
                0.0
            }
        }
        let features = FeatureSet::new().with(std::sync::Arc::new(SignalState));
        let weights = FeatureWeights::uniform(&features);
        let hops = vec![(l(0), l(1)), (l(1), l(2))];
        let mut featmap = HistoricalFeatureMap::new();
        for (a, b) in &hops {
            featmap.add_categorical_observation(*a, *b, "signal_state", 1);
        }
        // Trip observes code 3 everywhere while history says 1.
        let seg_values = vec![vec![3.0], vec![3.0]];
        let sel = select_features(&SelectionInput {
            features: &features,
            weights: &weights,
            eta: 0.2,
            seg_values: &seg_values,
            hops: &hops,
            popular_route: None,
            featmap: &featmap,
            route_cache: None,
        });
        assert_eq!(sel.len(), 1, "{sel:?}");
        assert_eq!(sel[0].key, "signal_state");
        assert_eq!(sel[0].observed, 3.0);
        assert_eq!(sel[0].regular, Some(1.0));
    }

    #[test]
    fn nan_rates_rank_last_without_panic() {
        // Regression: this sort used `partial_cmp(..).unwrap()` and panicked
        // on NaN. The comparator must stay total (no panic) and rank a NaN
        // entry deterministically last.
        let mk = |key: &str, rate: f64| SelectedFeature {
            key: key.into(),
            label: key.into(),
            kind: FeatureKind::Moving,
            irregular_rate: rate,
            observed: 0.0,
            regular: None,
        };
        let mut sel =
            vec![mk("a", 0.3), mk("b", f64::NAN), mk("c", 0.9), mk("d", f64::NAN), mk("e", 0.5)];
        sel.sort_by(|a, b| {
            desc_nan_last(a.irregular_rate, b.irregular_rate).then_with(|| a.key.cmp(&b.key))
        });
        let keys: Vec<String> = sel.iter().map(|s| s.key.clone()).collect();
        assert_eq!(keys, ["c", "e", "a", "b", "d"], "NaN entries must sort last");
        // Deterministic: resorting a rotation gives the same order.
        sel.rotate_left(2);
        sel.sort_by(|a, b| {
            desc_nan_last(a.irregular_rate, b.irregular_rate).then_with(|| a.key.cmp(&b.key))
        });
        assert_eq!(sel.iter().map(|s| s.key.clone()).collect::<Vec<_>>(), keys);
    }

    #[test]
    fn desc_nan_last_orders_descending() {
        let mut v = vec![0.1, f64::NAN, 0.7, f64::NEG_INFINITY, 0.4];
        v.sort_by(|a, b| desc_nan_last(*a, *b));
        assert_eq!(&v[..4], &[0.7, 0.4, 0.1, f64::NEG_INFINITY]);
        assert!(v[4].is_nan());
    }

    #[test]
    fn aggregate_mode_and_mean() {
        assert_eq!(aggregate(&[2.0, 2.0, 5.0], FeatureScale::Categorical), Some(2.0));
        assert_eq!(aggregate(&[2.0, 5.0], FeatureScale::Categorical), Some(2.0)); // tie → smaller
        assert_eq!(aggregate(&[2.0, 4.0], FeatureScale::Numeric), Some(3.0));
        assert_eq!(aggregate(&[], FeatureScale::Numeric), None);
    }
}
