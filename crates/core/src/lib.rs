//! # stmaker — trajectory partition-and-summarization
//!
//! A from-scratch Rust reproduction of *Making Sense of Trajectory Data: A
//! Partition-and-Summarization Approach* (Su, Zheng, Zeng, Huang, Sadiq,
//! Yuan, Zhou — ICDE 2015): given a raw GPS trajectory, automatically
//! generate a short text that highlights its most unusual travel behaviour.
//!
//! ## Pipeline (paper Fig. 3)
//!
//! ```text
//! raw trajectory ──calibrate──▶ symbolic trajectory (landmark sequence)
//!        │                            │
//!        └──map-match / detect──▶ per-segment features (Sec. III)
//!                                     │
//!                              CRF/DP partition (Sec. IV)
//!                                     │
//!                     irregular-rate feature selection (Sec. V)
//!                                     │
//!                         template summary text (Sec. VI)
//! ```
//!
//! ## Quick start
//!
//! ```no_run
//! use stmaker::{standard_features, FeatureWeights, Summarizer, SummarizerConfig};
//! # fn doc(net: &stmaker_road::RoadNetwork, registry: &stmaker_poi::LandmarkRegistry,
//! #        training: &[stmaker_trajectory::RawTrajectory],
//! #        trip: &stmaker_trajectory::RawTrajectory) {
//! let features = standard_features();
//! let weights = FeatureWeights::uniform(&features);
//! let summarizer = Summarizer::train(
//!     net, registry, training, features, weights, SummarizerConfig::default(),
//! );
//! let summary = summarizer.summarize(trip).expect("calibratable trip");
//! println!("{}", summary.text);
//! // e.g. "The car started from the Daoxiang Community to the Haidian
//! //       Hospital with 2 staying points (in total for 167 seconds)."
//! # }
//! ```
//!
//! ## Module map
//!
//! | module | paper section |
//! |---|---|
//! | [`feature`] | Sec. III + VI-B — extensible routing/moving features |
//! | [`builtin`] | Tables III & IV — the six standard features (+ `SpeC`) |
//! | [`context`] | Sec. III-B — per-segment extraction pipeline |
//! | [`similarity`] | Eq. (3) — weighted cosine similarity |
//! | [`partition`] | Eq. (4) & Algorithm 1 — optimal (k-)partition |
//! | [`invariant`] | debug-build runtime gates over the stages above |
//! | [`irregular`] | Sec. V — irregular rates |
//! | [`select`] | Sec. V — threshold selection |
//! | [`template`] | Tables V & VI — phrase/sentence templates |
//! | [`summarize`] | Fig. 3 — the end-to-end [`Summarizer`] |
//!
//! ## Observability
//!
//! Every pipeline stage reports into a [`Recorder`] attached via
//! [`SummarizerConfig::with_recorder`]: per-stage spans (`calibrate`,
//! `partition`, `select`, `popular_route`, `render`, …) plus domain
//! counters such as `partition.dp_cells` and `select.features_kept`. The
//! default recorder is disabled and costs one branch per stage — see the
//! `stmaker-obs` crate.

pub mod builtin;
pub mod cached_routes;
pub mod context;
pub mod feature;
pub mod group;
pub mod invariant;
pub mod irregular;
pub mod partition;
pub mod select;
pub mod similarity;
pub mod streaming;
pub mod summarize;
pub mod template;

pub use builtin::{extended_features, keys, standard_features};
pub use cached_routes::CachedRoutes;
pub use context::{ExtractionParams, SegmentContext};
pub use feature::{Feature, FeatureKind, FeatureScale, FeatureSet, FeatureWeights, PhraseInfo};
pub use group::{GroupError, GroupFeatureStat, GroupSummary};
pub use partition::{optimal_k_partition, optimal_partition, PartitionResult, PartitionSpan};
pub use select::SelectedFeature;
pub use streaming::{OutOfOrderPolicy, StreamConfig, StreamError, StreamingSummarizer};
pub use summarize::{
    mentioned_keys, summary_mentions, PartitionSummary, Prepared, SummarizeError, Summarizer,
    SummarizerConfig, Summary, TrainedModel,
};

// Telemetry types, re-exported so downstream crates can attach a recorder
// or inspect route-cache counters without depending on `stmaker-obs` /
// `stmaker-cache` directly.
pub use stmaker_cache::CacheStats;
pub use stmaker_obs::{Recorder, Report};

// Spatial-index selection, re-exported so the CLI and benches can flip the
// backend (`--spatial-index rtree|grid`) without depending on `stmaker-geo`.
pub use stmaker_geo::{SpatialIndexKind, SpatialStats};
