//! Online summarization of a live GPS stream.
//!
//! The paper's first application (Sec. I) embeds summarization "in GPS
//! modules of cars" — which receive points one at a time, not as a finished
//! trajectory. [`StreamingSummarizer`] wraps a trained [`Summarizer`] with a
//! sample buffer and refresh policy: push points as they arrive, and a fresh
//! summary of the trip-so-far is produced whenever enough new travel has
//! accumulated.
//!
//! Each refresh re-runs the full pipeline over the buffered prefix. That is
//! the honest cost model — calibration and partitioning are global
//! optimizations, so a changed suffix can legitimately re-partition the
//! whole trip — and at Fig. 12's per-summary cost (single-digit
//! milliseconds) a refresh every few hundred metres is negligible for an
//! embedded device.

use crate::summarize::{SummarizeError, Summarizer, Summary};
use stmaker_trajectory::RawPoint;

/// Refresh policy for the stream.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Re-summarize after at least this much new travel, metres.
    pub refresh_distance_m: f64,
    /// …or after this much elapsed time since the last refresh, seconds
    /// (whichever comes first). Covers a car stuck in a jam: no distance
    /// accumulates, but the stay-point count is growing.
    pub refresh_interval_s: i64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self { refresh_distance_m: 500.0, refresh_interval_s: 120 }
    }
}

/// Incremental summarization over an arriving point stream.
pub struct StreamingSummarizer<'s, 'a> {
    summarizer: &'s Summarizer<'a>,
    cfg: StreamConfig,
    buffer: Vec<RawPoint>,
    current: Option<Summary>,
    dist_since_refresh: f64,
    last_refresh_t: Option<i64>,
}

impl<'s, 'a> StreamingSummarizer<'s, 'a> {
    /// Wraps a trained summarizer.
    pub fn new(summarizer: &'s Summarizer<'a>, cfg: StreamConfig) -> Self {
        assert!(cfg.refresh_distance_m > 0.0 && cfg.refresh_interval_s > 0);
        Self {
            summarizer,
            cfg,
            buffer: Vec::new(),
            current: None,
            dist_since_refresh: 0.0,
            last_refresh_t: None,
        }
    }

    /// Number of buffered samples.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether no samples have arrived yet.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// The latest summary of the trip-so-far, if one has been produced.
    pub fn current(&self) -> Option<&Summary> {
        self.current.as_ref()
    }

    /// Feeds one sample. Returns `Some` with a *fresh* summary when the
    /// refresh policy fired and the prefix was summarizable.
    ///
    /// # Panics
    /// Panics if `point` is older than the previous sample (streams are
    /// time-ordered by definition; reordering is the transport's job).
    pub fn push(&mut self, point: RawPoint) -> Option<&Summary> {
        if let Some(last) = self.buffer.last() {
            assert!(last.t <= point.t, "stream samples must be time-ordered");
            self.dist_since_refresh += last.point.haversine_m(&point.point);
        }
        self.buffer.push(point);
        let t = point.t.0;
        let due_dist = self.dist_since_refresh >= self.cfg.refresh_distance_m;
        let due_time =
            self.last_refresh_t.map(|t0| t - t0 >= self.cfg.refresh_interval_s).unwrap_or(true);
        if self.buffer.len() < 2 || (!due_dist && !due_time) {
            return None;
        }
        let refreshed = self.refresh();
        if refreshed {
            self.dist_since_refresh = 0.0;
            self.last_refresh_t = Some(t);
            self.current.as_ref()
        } else {
            // The prefix did not calibrate: keep the refresh debt so the
            // very next sample retries, and do not hand back the stale
            // previous summary as if it were fresh.
            None
        }
    }

    /// Re-summarizes the buffered prefix; returns whether a fresh summary
    /// was produced. Summarizes the buffer in place ([`Summarizer::
    /// summarize_points`]) — cloning it here would cost O(n²) allocation
    /// over a trip's worth of refreshes.
    fn refresh(&mut self) -> bool {
        match self.summarizer.summarize_points(&self.buffer) {
            Ok(summary) => {
                self.current = Some(summary);
                true
            }
            Err(_) => false,
        }
    }

    /// Finalizes the trip: summarizes everything buffered, regardless of the
    /// refresh policy. Equivalent to batch-summarizing the same samples.
    pub fn finish(self) -> Result<Summary, SummarizeError> {
        if self.buffer.len() < 2 {
            return Err(SummarizeError::Calibration(
                stmaker_calibration::CalibrationError::TooFewLandmarks(0),
            ));
        }
        self.summarizer.summarize_points(&self.buffer)
    }
}
