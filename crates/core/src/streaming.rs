//! Online summarization of a live GPS stream.
//!
//! The paper's first application (Sec. I) embeds summarization "in GPS
//! modules of cars" — which receive points one at a time, not as a finished
//! trajectory. [`StreamingSummarizer`] wraps a trained [`Summarizer`] with a
//! sample buffer and refresh policy: push points as they arrive, and a fresh
//! summary of the trip-so-far is produced whenever enough new travel has
//! accumulated.
//!
//! Each refresh re-runs the full pipeline over the buffered prefix. That is
//! the honest cost model — calibration and partitioning are global
//! optimizations, so a changed suffix can legitimately re-partition the
//! whole trip — and at Fig. 12's per-summary cost (single-digit
//! milliseconds) a refresh every few hundred metres is negligible for an
//! embedded device.
//!
//! Live feeds are not clean: retransmitted packets arrive late and receiver
//! glitches serialize as NaN. [`StreamingSummarizer::try_push`] therefore
//! never panics — defective samples are dropped and counted (the default
//! [`OutOfOrderPolicy::Drop`]) or surfaced as a typed [`StreamError`]
//! ([`OutOfOrderPolicy::Reject`]). The panicking
//! [`StreamingSummarizer::push`] survives as a deprecated shim.

use crate::summarize::{SummarizeError, Summarizer, Summary};
use stmaker_obs::{ArgValue, SlidingWindow, WindowSummary, DEFAULT_WINDOW_CAPACITY};
use stmaker_trajectory::{RawPoint, TrajectoryError};

/// What to do with a sample that arrives out of time order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutOfOrderPolicy {
    /// Drop the late sample and count it ([`StreamingSummarizer::dropped`]
    /// and the `stream.out_of_order_dropped` counter). The default: streams
    /// are time-ordered by definition, so a late sample is transport noise,
    /// not data.
    #[default]
    Drop,
    /// Return [`StreamError::OutOfOrder`] and leave the buffer untouched.
    /// Use when the transport guarantees ordering and a violation means an
    /// upstream bug worth failing loudly on.
    Reject,
}

/// Refresh policy for the stream.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Re-summarize after at least this much new travel, metres.
    pub refresh_distance_m: f64,
    /// …or after this much elapsed time since the last refresh, seconds
    /// (whichever comes first). Covers a car stuck in a jam: no distance
    /// accumulates, but the stay-point count is growing.
    pub refresh_interval_s: i64,
    /// How late samples are handled by [`StreamingSummarizer::try_push`].
    pub out_of_order: OutOfOrderPolicy,
    /// Width of one metrics window, in *stream* seconds. Window indices
    /// are derived from sample timestamps relative to the first accepted
    /// sample — never from wall clock — so the `stream.window.*` series
    /// is a pure function of the input and survives the determinism
    /// contract.
    pub window_secs: i64,
    /// How many trailing windows of metrics to retain; older windows are
    /// evicted oldest-first (and counted).
    pub window_capacity: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            refresh_distance_m: 500.0,
            refresh_interval_s: 120,
            out_of_order: OutOfOrderPolicy::Drop,
            window_secs: 60,
            window_capacity: DEFAULT_WINDOW_CAPACITY,
        }
    }
}

impl StreamConfig {
    /// Checks the refresh thresholds: the distance must be positive and
    /// finite, the interval and window width positive, the window
    /// retention non-zero.
    pub fn validate(&self) -> Result<(), StreamError> {
        if !(self.refresh_distance_m > 0.0) || !self.refresh_distance_m.is_finite() {
            return Err(StreamError::InvalidConfig {
                what: "refresh_distance_m must be positive and finite",
            });
        }
        if self.refresh_interval_s <= 0 {
            return Err(StreamError::InvalidConfig { what: "refresh_interval_s must be positive" });
        }
        if self.window_secs <= 0 {
            return Err(StreamError::InvalidConfig { what: "window_secs must be positive" });
        }
        if self.window_capacity == 0 {
            return Err(StreamError::InvalidConfig { what: "window_capacity must be non-zero" });
        }
        Ok(())
    }
}

/// Why a streaming operation was refused.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamError {
    /// The [`StreamConfig`] is unusable.
    InvalidConfig {
        /// Which constraint failed.
        what: &'static str,
    },
    /// A sample arrived out of order under [`OutOfOrderPolicy::Reject`].
    OutOfOrder {
        /// Timestamp of the newest buffered sample, seconds.
        last_t: i64,
        /// Timestamp of the rejected sample, seconds.
        got_t: i64,
    },
    /// A sample carried a defective coordinate under
    /// [`OutOfOrderPolicy::Reject`].
    InvalidPoint(TrajectoryError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::InvalidConfig { what } => write!(f, "invalid stream config: {what}"),
            StreamError::OutOfOrder { last_t, got_t } => {
                write!(f, "out-of-order sample: t={got_t} after t={last_t}")
            }
            StreamError::InvalidPoint(e) => write!(f, "invalid sample: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Incremental summarization over an arriving point stream.
pub struct StreamingSummarizer<'s, 'a> {
    summarizer: &'s Summarizer<'a>,
    cfg: StreamConfig,
    buffer: Vec<RawPoint>,
    current: Option<Summary>,
    dist_since_refresh: f64,
    last_refresh_t: Option<i64>,
    dropped_out_of_order: u64,
    dropped_invalid: u64,
    /// Timestamp of the first accepted sample — the origin the window
    /// index is measured from.
    first_t: Option<i64>,
    windows: SlidingWindow,
}

impl<'s, 'a> StreamingSummarizer<'s, 'a> {
    /// Wraps a trained summarizer.
    ///
    /// # Panics
    /// Panics if the refresh thresholds are not positive; prefer
    /// [`StreamingSummarizer::try_new`].
    pub fn new(summarizer: &'s Summarizer<'a>, cfg: StreamConfig) -> Self {
        assert!(cfg.refresh_distance_m > 0.0 && cfg.refresh_interval_s > 0);
        Self::build(summarizer, cfg)
    }

    /// Fallible construction: validates `cfg` instead of asserting.
    pub fn try_new(summarizer: &'s Summarizer<'a>, cfg: StreamConfig) -> Result<Self, StreamError> {
        cfg.validate()?;
        Ok(Self::build(summarizer, cfg))
    }

    fn build(summarizer: &'s Summarizer<'a>, cfg: StreamConfig) -> Self {
        Self {
            summarizer,
            cfg,
            buffer: Vec::new(),
            current: None,
            dist_since_refresh: 0.0,
            last_refresh_t: None,
            dropped_out_of_order: 0,
            dropped_invalid: 0,
            first_t: None,
            windows: SlidingWindow::new(cfg.window_capacity),
        }
    }

    /// Number of buffered samples.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether no samples have arrived yet.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// The latest summary of the trip-so-far, if one has been produced.
    pub fn current(&self) -> Option<&Summary> {
        self.current.as_ref()
    }

    /// Samples dropped so far as `(out_of_order, invalid_coordinate)` under
    /// [`OutOfOrderPolicy::Drop`] — the stream's own sanitize report.
    pub fn dropped(&self) -> (u64, u64) {
        (self.dropped_out_of_order, self.dropped_invalid)
    }

    /// The retained metric windows (oldest first) — the same series that
    /// is published into the recorder's report on every refresh and on
    /// [`StreamingSummarizer::finish`].
    pub fn windows(&self) -> Vec<WindowSummary> {
        self.windows.summaries()
    }

    /// Window index of stream time `t`, measured from the first accepted
    /// sample (window 0 before anything was accepted, or for a late `t`).
    fn window_index(&self, t: i64) -> u64 {
        let dt = t.saturating_sub(self.first_t.unwrap_or(t)).max(0);
        dt as u64 / self.cfg.window_secs.max(1) as u64
    }

    /// Publishes the retained windows and the current window index into
    /// the shared recorder.
    fn publish_windows(&self, w: u64) {
        let obs = self.summarizer.recorder();
        obs.gauge("stream.window.index", w as f64); // cast-ok: window index
        obs.set_windows(self.windows.summaries());
    }

    /// Feeds one sample. Returns `Ok(Some)` with a *fresh* summary when the
    /// refresh policy fired and the prefix was summarizable.
    ///
    /// Never panics: an out-of-order or defective sample is dropped and
    /// counted under [`OutOfOrderPolicy::Drop`] (returning `Ok(None)`), or
    /// reported as a [`StreamError`] under [`OutOfOrderPolicy::Reject`] —
    /// in both cases the buffered prefix stays intact and the stream
    /// remains usable.
    pub fn try_push(&mut self, point: RawPoint) -> Result<Option<&Summary>, StreamError> {
        let (lat, lon) = (point.point.lat, point.point.lon);
        let defect = if !lat.is_finite() || !lon.is_finite() {
            Some(TrajectoryError::NonFiniteCoordinate { index: self.buffer.len() })
        } else if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lon) {
            // A defective-but-finite coordinate must not enter the buffer
            // either, or `finish` would reject the whole otherwise-good trip.
            Some(TrajectoryError::OutOfRangeCoordinate { index: self.buffer.len(), lat, lon })
        } else {
            None
        };
        if let Some(e) = defect {
            return match self.cfg.out_of_order {
                OutOfOrderPolicy::Drop => {
                    self.dropped_invalid += 1;
                    self.summarizer.recorder().add("stream.invalid_dropped", 1);
                    let w = self.window_index(point.t.0);
                    self.windows.add(w, "stream.window.dropped", 1);
                    Ok(None)
                }
                OutOfOrderPolicy::Reject => Err(StreamError::InvalidPoint(e)),
            };
        }
        if let Some(last) = self.buffer.last() {
            if point.t < last.t {
                return match self.cfg.out_of_order {
                    OutOfOrderPolicy::Drop => {
                        self.dropped_out_of_order += 1;
                        self.summarizer.recorder().add("stream.out_of_order_dropped", 1);
                        let w = self.window_index(point.t.0);
                        self.windows.add(w, "stream.window.dropped", 1);
                        Ok(None)
                    }
                    OutOfOrderPolicy::Reject => {
                        Err(StreamError::OutOfOrder { last_t: last.t.0, got_t: point.t.0 })
                    }
                };
            }
            self.dist_since_refresh += last.point.haversine_m(&point.point);
        }
        self.buffer.push(point);
        let t = point.t.0;
        if self.first_t.is_none() {
            self.first_t = Some(t);
        }
        let w = self.window_index(t);
        self.windows.add(w, "stream.window.points", 1);
        let due_dist = self.dist_since_refresh >= self.cfg.refresh_distance_m;
        let due_time =
            self.last_refresh_t.map(|t0| t - t0 >= self.cfg.refresh_interval_s).unwrap_or(true);
        if self.buffer.len() < 2 || (!due_dist && !due_time) {
            return Ok(None);
        }
        // lint: wallclock — refresh cost feeds the window metrics only, never the summary
        let t0 = std::time::Instant::now();
        let refreshed = self.refresh();
        let refresh_ms = t0.elapsed().as_secs_f64() * 1e3;
        if refreshed {
            self.windows.add(w, "stream.window.refreshes", 1);
            self.windows.observe_ms(w, "stream.window.refresh_ms", refresh_ms);
            self.summarizer.recorder().instant("stream.refresh", &[("window", ArgValue::U64(w))]);
            self.publish_windows(w);
            self.dist_since_refresh = 0.0;
            self.last_refresh_t = Some(t);
            Ok(self.current.as_ref())
        } else {
            // The prefix did not calibrate: keep the refresh debt so the
            // very next sample retries, and do not hand back the stale
            // previous summary as if it were fresh.
            Ok(None)
        }
    }

    /// Feeds one sample (legacy panicking form).
    ///
    /// # Panics
    /// Panics if `point` is older than the previous sample. New code should
    /// use [`StreamingSummarizer::try_push`], which applies
    /// [`StreamConfig::out_of_order`] instead of panicking.
    #[deprecated(note = "panics on out-of-order input; use try_push")]
    pub fn push(&mut self, point: RawPoint) -> Option<&Summary> {
        if let Some(last) = self.buffer.last() {
            assert!(last.t <= point.t, "stream samples must be time-ordered");
        }
        self.try_push(point).ok().flatten()
    }

    /// Re-summarizes the buffered prefix; returns whether a fresh summary
    /// was produced. Summarizes the buffer in place ([`Summarizer::
    /// summarize_points`]) — cloning it here would cost O(n²) allocation
    /// over a trip's worth of refreshes.
    fn refresh(&mut self) -> bool {
        match self.summarizer.summarize_points(&self.buffer) {
            Ok(summary) => {
                self.current = Some(summary);
                true
            }
            Err(_) => false,
        }
    }

    /// Finalizes the trip: summarizes everything buffered, regardless of the
    /// refresh policy. Equivalent to batch-summarizing the same samples.
    pub fn finish(self) -> Result<Summary, SummarizeError> {
        if let Some(last) = self.buffer.last() {
            // Final publication, so the report carries the windows even
            // when the trip ended between refreshes.
            self.publish_windows(self.window_index(last.t.0));
        }
        if self.buffer.len() < 2 {
            return Err(SummarizeError::Input(TrajectoryError::TooFewPoints {
                got: self.buffer.len(),
            }));
        }
        self.summarizer.summarize_points(&self.buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_is_fallible() {
        assert!(StreamConfig::default().validate().is_ok());
        let bad = StreamConfig { refresh_distance_m: 0.0, ..StreamConfig::default() };
        assert!(matches!(bad.validate(), Err(StreamError::InvalidConfig { .. })));
        let bad = StreamConfig { refresh_distance_m: f64::NAN, ..StreamConfig::default() };
        assert!(matches!(bad.validate(), Err(StreamError::InvalidConfig { .. })));
        let bad = StreamConfig { refresh_interval_s: 0, ..StreamConfig::default() };
        let msg = bad.validate().expect_err("invalid").to_string();
        assert!(msg.contains("refresh_interval_s"), "{msg}");
        let bad = StreamConfig { window_secs: 0, ..StreamConfig::default() };
        let msg = bad.validate().expect_err("invalid").to_string();
        assert!(msg.contains("window_secs"), "{msg}");
        let bad = StreamConfig { window_capacity: 0, ..StreamConfig::default() };
        let msg = bad.validate().expect_err("invalid").to_string();
        assert!(msg.contains("window_capacity"), "{msg}");
    }

    #[test]
    fn stream_error_messages_are_actionable() {
        let e = StreamError::OutOfOrder { last_t: 100, got_t: 40 };
        assert_eq!(e.to_string(), "out-of-order sample: t=40 after t=100");
        let e = StreamError::InvalidPoint(TrajectoryError::NonFiniteCoordinate { index: 7 });
        assert!(e.to_string().contains("non-finite"), "{e}");
    }
}
