//! Summary construction (Sec. VI-A): phrase templates per feature (Table V)
//! slotted into sentence templates (Table VI).

use crate::builtin::keys;
use crate::feature::{FeatureSet, PhraseInfo};
use crate::select::SelectedFeature;
use stmaker_road::{Direction, RoadGrade};

/// Everything the templates need about one partition beyond the selected
/// features themselves: names and the by-products of feature extraction
/// (Sec. VI-A: "extracting the '# of stay points' feature will also provide
/// where the stay points take place and how long the moving object stays").
#[derive(Debug, Clone, Default)]
pub struct PartitionFacts {
    /// Display name of the partition's source landmark.
    pub from_name: String,
    /// Display name of the partition's destination landmark.
    pub to_name: String,
    /// Display name of the dominant road driven, if known ("Suzhou Street").
    pub road_name: Option<String>,
    /// Total dwell time across the partition's stay points, seconds.
    pub stay_total_secs: i64,
    /// Total stay-point count across the partition.
    pub stay_count: usize,
    /// Landmark names where U-turns happened.
    pub u_turn_places: Vec<String>,
}

/// Renders the sentence for one partition (Table VI):
/// "The car started/moved from *source* to *destination* …, with *feature
/// template*." or "… smoothly." when nothing was irregular.
pub fn render_partition_sentence(
    first: bool,
    facts: &PartitionFacts,
    selected: &[SelectedFeature],
    features: &FeatureSet,
) -> String {
    let opener = if first {
        format!("The car started from the {} to the {}", facts.from_name, facts.to_name)
    } else {
        format!("Then it moved from the {} to the {}", facts.from_name, facts.to_name)
    };
    if selected.is_empty() {
        return format!("{opener} smoothly.");
    }
    let phrases: Vec<String> =
        selected.iter().map(|s| feature_phrase(s, facts, features)).collect();
    format!("{opener} {}.", join_phrases(&phrases))
}

/// The phrase for one selected feature: a custom [`Feature::phrase`]
/// implementation always wins (Sec. VI-B step 3 — the trait is the
/// extension point, even for a feature that shadows a built-in key), then
/// the built-in Table V templates, then a generic comparative phrase.
///
/// [`Feature::phrase`]: crate::feature::Feature::phrase
pub fn feature_phrase(
    s: &SelectedFeature,
    facts: &PartitionFacts,
    features: &FeatureSet,
) -> String {
    if let Some(idx) = features.index_of(&s.key) {
        if let Some(custom) =
            features.get(idx).phrase(&PhraseInfo { value: s.observed, regular: s.regular })
        {
            return custom;
        }
    }
    match s.key.as_str() {
        keys::GRADE => {
            let given = grade_name(s.observed);
            let named = match &facts.road_name {
                Some(n) => format!("{given} ({n})"),
                None => given.to_owned(),
            };
            match s.regular.map(grade_name) {
                Some(reg) if reg != given => {
                    format!("through {named} while most drivers choose {reg}")
                }
                _ => format!("through {named}"),
            }
        }
        keys::WIDTH => {
            let w = s.observed;
            match s.regular {
                Some(r) if (r - w).abs() >= 0.5 => {
                    let pref = if r > w { "wider" } else { "narrower" };
                    format!(
                        "through {w:.0} metres wide road while most drivers prefer {pref} roads"
                    )
                }
                _ => format!("through {w:.0} metres wide road"),
            }
        }
        keys::DIRECTION => {
            let given = direction_name(s.observed);
            match s.regular.map(direction_name) {
                Some(reg) if reg != given => {
                    format!("through {given} while most drivers prefer {reg}")
                }
                _ => format!("through {given}"),
            }
        }
        keys::SPEED => {
            let v = s.observed;
            match s.regular {
                Some(r) if (r - v).abs() >= 1.0 => {
                    let cmp = if v > r { "faster" } else { "slower" };
                    format!(
                        "with the speed of {v:.0} km/h which was {:.0} km/h {cmp} than usual",
                        (v - r).abs()
                    )
                }
                _ => format!("with the speed of {v:.0} km/h"),
            }
        }
        keys::STAY_POINTS => {
            // `observed` is the per-segment mean; the phrase wants the total,
            // which extraction recorded as a by-product.
            let n = facts.stay_count.max(1);
            let noun = if n == 1 { "staying point" } else { "staying points" };
            if facts.stay_total_secs > 0 {
                format!("with {n} {noun} (in total for {} seconds)", facts.stay_total_secs)
            } else {
                format!("with {n} {noun}")
            }
        }
        keys::U_TURNS => {
            let n = facts.u_turn_places.len().max(1);
            let noun = if n == 1 { "one U-turn" } else { "U-turns" };
            let turn = if n == 1 { noun.to_owned() } else { format!("{n} {noun}") };
            if facts.u_turn_places.is_empty() {
                format!("with conducting {turn}")
            } else {
                format!("with conducting {turn} at {}", join_names(&facts.u_turn_places))
            }
        }
        _ => match s.regular {
            // Generic comparative phrase for custom features without their
            // own template (the Feature::phrase hook above already ran).
            Some(r) => format!("with {} of {:.1} while {:.1} is usual", s.label, s.observed, r),
            None => format!("with {} of {:.1}", s.label, s.observed),
        },
    }
}

fn grade_name(code: f64) -> &'static str {
    RoadGrade::from_code(code.round().clamp(1.0, 7.0) as u8).map(|g| g.name()).unwrap_or("road")
}

fn direction_name(code: f64) -> &'static str {
    Direction::from_code(code.round().clamp(1.0, 2.0) as u8)
        .map(|d| d.name())
        .unwrap_or("two-way road")
}

/// Joins phrases with commas and a final "and".
fn join_phrases(phrases: &[String]) -> String {
    match phrases.split_last() {
        None => String::new(),
        Some((only, [])) => only.clone(),
        Some((last, head)) => format!("{}, and {last}", head.join(", ")),
    }
}

/// Joins landmark names with commas and "and".
fn join_names(names: &[String]) -> String {
    join_phrases(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::{extended_features, standard_features};
    use crate::feature::FeatureKind;

    fn facts() -> PartitionFacts {
        PartitionFacts {
            from_name: "Daoxiang Community".into(),
            to_name: "Haidian Hospital".into(),
            road_name: Some("Suzhou Street".into()),
            stay_total_secs: 167,
            stay_count: 2,
            u_turn_places: vec!["Zhichun Road".into()],
        }
    }

    fn sel(key: &str, observed: f64, regular: Option<f64>) -> SelectedFeature {
        SelectedFeature {
            key: key.into(),
            label: key.into(),
            kind: FeatureKind::Moving,
            irregular_rate: 0.5,
            observed,
            regular,
        }
    }

    #[test]
    fn smooth_partition_sentence() {
        let s = render_partition_sentence(false, &facts(), &[], &standard_features());
        assert_eq!(
            s,
            "Then it moved from the Daoxiang Community to the Haidian Hospital smoothly."
        );
    }

    #[test]
    fn first_partition_uses_started() {
        let sels = vec![sel(keys::STAY_POINTS, 1.0, Some(0.1))];
        let s = render_partition_sentence(true, &facts(), &sels, &standard_features());
        assert!(s.starts_with("The car started from the Daoxiang Community"));
        assert!(s.contains("2 staying points (in total for 167 seconds)"), "{s}");
    }

    #[test]
    fn speed_phrase_matches_fig1_style() {
        let p = feature_phrase(&sel(keys::SPEED, 36.0, Some(50.0)), &facts(), &standard_features());
        assert_eq!(p, "with the speed of 36 km/h which was 14 km/h slower than usual");
        let p = feature_phrase(&sel(keys::SPEED, 64.0, Some(50.0)), &facts(), &standard_features());
        assert!(p.contains("14 km/h faster than usual"));
        let p = feature_phrase(&sel(keys::SPEED, 42.0, None), &facts(), &standard_features());
        assert_eq!(p, "with the speed of 42 km/h");
    }

    #[test]
    fn grade_phrase_names_road_and_regular() {
        let p = feature_phrase(&sel(keys::GRADE, 5.0, Some(1.0)), &facts(), &standard_features());
        assert_eq!(p, "through country road (Suzhou Street) while most drivers choose highway");
        // Same grade as usual → no comparison clause.
        let p = feature_phrase(&sel(keys::GRADE, 1.0, Some(1.0)), &facts(), &standard_features());
        assert_eq!(p, "through highway (Suzhou Street)");
    }

    #[test]
    fn width_phrase_compares_direction_of_preference() {
        let p = feature_phrase(&sel(keys::WIDTH, 9.0, Some(22.0)), &facts(), &standard_features());
        assert!(p.contains("9 metres wide road"));
        assert!(p.contains("wider roads"), "{p}");
        let p = feature_phrase(&sel(keys::WIDTH, 28.0, Some(16.0)), &facts(), &standard_features());
        assert!(p.contains("narrower roads"), "{p}");
    }

    #[test]
    fn direction_phrase() {
        let p =
            feature_phrase(&sel(keys::DIRECTION, 2.0, Some(1.0)), &facts(), &standard_features());
        assert_eq!(p, "through one-way road while most drivers prefer two-way road");
    }

    #[test]
    fn u_turn_phrase_with_places() {
        let p = feature_phrase(&sel(keys::U_TURNS, 0.33, None), &facts(), &standard_features());
        assert_eq!(p, "with conducting one U-turn at Zhichun Road");
        let mut f = facts();
        f.u_turn_places.push("Suzhou Road".into());
        let p = feature_phrase(&sel(keys::U_TURNS, 0.66, None), &f, &standard_features());
        assert_eq!(p, "with conducting 2 U-turns at Zhichun Road, and Suzhou Road");
    }

    #[test]
    fn custom_feature_uses_its_own_template() {
        let features = extended_features();
        let p = feature_phrase(&sel(keys::SPEED_CHANGE, 3.0, Some(0.4)), &facts(), &features);
        assert!(p.contains("3 sharp speed change(s)"), "{p}");
    }

    #[test]
    fn unknown_custom_feature_gets_generic_phrase() {
        let p = feature_phrase(
            &SelectedFeature {
                key: "fuel_burn".into(),
                label: "fuel burn".into(),
                kind: FeatureKind::Moving,
                irregular_rate: 0.4,
                observed: 9.5,
                regular: Some(7.0),
            },
            &facts(),
            &standard_features(),
        );
        assert_eq!(p, "with fuel burn of 9.5 while 7.0 is usual");
    }

    #[test]
    fn multiple_phrases_joined_with_and() {
        let sels = vec![sel(keys::SPEED, 36.0, Some(50.0)), sel(keys::STAY_POINTS, 1.0, None)];
        let s = render_partition_sentence(true, &facts(), &sels, &standard_features());
        assert!(s.contains(", and with 2 staying points"), "{s}");
        assert!(s.ends_with('.'));
    }
}
