//! The six built-in features of Tables III/IV, plus the `SpeC` custom
//! feature demonstrating the extension path of Sec. VI-B.

use crate::context::SegmentContext;
use crate::feature::{Feature, FeatureKind, FeatureScale, FeatureSet, PhraseInfo};
use std::sync::Arc;
use stmaker_road::RoadGrade;
use stmaker_trajectory::{average_speed_kmh, sharp_speed_changes, SpeedChangeParams};

/// Feature key constants (also the historical-feature-map keys).
pub mod keys {
    pub const GRADE: &str = "grade_of_road";
    pub const WIDTH: &str = "road_width";
    pub const DIRECTION: &str = "traffic_direction";
    pub const SPEED: &str = "speed";
    pub const STAY_POINTS: &str = "stay_points";
    pub const U_TURNS: &str = "u_turns";
    pub const SPEED_CHANGE: &str = "speed_change";
}

/// Routing, categorical: the paper's seven-level road grade (Table III).
/// Extracted as the grade code of the segment's dominant matched edge;
/// segments that failed to match report the median grade (4, provincial) so
/// they read as unremarkable rather than extreme.
pub struct GradeOfRoad;

impl Feature for GradeOfRoad {
    fn key(&self) -> &str {
        keys::GRADE
    }
    fn label(&self) -> &str {
        "grade of road"
    }
    fn kind(&self) -> FeatureKind {
        FeatureKind::Routing
    }
    fn scale(&self) -> FeatureScale {
        FeatureScale::Categorical
    }
    fn extract(&self, ctx: &SegmentContext<'_>) -> f64 {
        ctx.edge.map(|e| e.grade.code() as f64).unwrap_or(RoadGrade::Provincial.code() as f64)
    }
}

/// Routing, numeric: paved road width in metres (Table III).
pub struct RoadWidth;

impl Feature for RoadWidth {
    fn key(&self) -> &str {
        keys::WIDTH
    }
    fn label(&self) -> &str {
        "road width"
    }
    fn kind(&self) -> FeatureKind {
        FeatureKind::Routing
    }
    fn scale(&self) -> FeatureScale {
        FeatureScale::Numeric
    }
    fn extract(&self, ctx: &SegmentContext<'_>) -> f64 {
        ctx.edge.map(|e| e.width_m).unwrap_or_else(|| RoadGrade::Provincial.typical_width_m())
    }
}

/// Routing, categorical: two-way (1) vs one-way (2) (Table III).
pub struct TrafficDirection;

impl Feature for TrafficDirection {
    fn key(&self) -> &str {
        keys::DIRECTION
    }
    fn label(&self) -> &str {
        "traffic direction"
    }
    fn kind(&self) -> FeatureKind {
        FeatureKind::Routing
    }
    fn scale(&self) -> FeatureScale {
        FeatureScale::Categorical
    }
    fn extract(&self, ctx: &SegmentContext<'_>) -> f64 {
        ctx.edge.map(|e| e.direction.code() as f64).unwrap_or(1.0)
    }
}

/// Moving, numeric: average *moving* speed of the segment in km/h
/// (Table IV). Dwell time inside detected stay points is excluded — stays
/// are a separate feature, and folding a five-minute stop into the average
/// would make every segment with a red light read as "slow" regardless of
/// how the vehicle actually drove.
pub struct Speed;

impl Feature for Speed {
    fn key(&self) -> &str {
        keys::SPEED
    }
    fn kind(&self) -> FeatureKind {
        FeatureKind::Moving
    }
    fn scale(&self) -> FeatureScale {
        FeatureScale::Numeric
    }
    fn extract(&self, ctx: &SegmentContext<'_>) -> f64 {
        if ctx.raw_points.len() >= 2 {
            // Moving distance and time: hops inside a detected stay window
            // contribute neither. Excluding only the time would divide real
            // distance *plus* the GPS jitter accumulated while parked by a
            // tiny moving time, inflating speeds wildly after long stays.
            let in_stay =
                |i: usize| ctx.stays.iter().any(|s| i >= s.first_index && i < s.last_index);
            let mut dist = 0.0;
            let mut moving = 0i64;
            for (i, w) in ctx.raw_points.windows(2).enumerate() {
                if in_stay(i) {
                    continue;
                }
                dist += w[0].point.haversine_m(&w[1].point);
                moving += w[0].t.delta_secs(&w[1].t);
            }
            if moving > 0 && dist > 0.0 {
                return dist / moving as f64 * 3.6;
            }
            let v = average_speed_kmh(ctx.raw_points);
            if v > 0.0 {
                return v;
            }
        }
        // Sparse window: fall back to landmark-to-landmark speed.
        let secs = ctx.duration_secs();
        if secs > 0 {
            ctx.straight_dist_m / secs as f64 * 3.6
        } else {
            0.0
        }
    }
}

/// Moving, numeric: number of stay points in the segment (Table IV).
pub struct StayPoints;

impl Feature for StayPoints {
    fn key(&self) -> &str {
        keys::STAY_POINTS
    }
    fn label(&self) -> &str {
        "stay points"
    }
    fn kind(&self) -> FeatureKind {
        FeatureKind::Moving
    }
    fn scale(&self) -> FeatureScale {
        FeatureScale::Numeric
    }
    fn count_like(&self) -> bool {
        true
    }
    fn extract(&self, ctx: &SegmentContext<'_>) -> f64 {
        ctx.stays.len() as f64
    }
}

/// Moving, numeric: number of U-turns in the segment (Table IV).
pub struct UTurns;

impl Feature for UTurns {
    fn key(&self) -> &str {
        keys::U_TURNS
    }
    fn label(&self) -> &str {
        "U-turns"
    }
    fn kind(&self) -> FeatureKind {
        FeatureKind::Moving
    }
    fn scale(&self) -> FeatureScale {
        FeatureScale::Numeric
    }
    fn count_like(&self) -> bool {
        true
    }
    fn extract(&self, ctx: &SegmentContext<'_>) -> f64 {
        ctx.u_turns.len() as f64
    }
}

/// The `SpeC` (sharp speed change) feature of Fig. 10(b) — implemented as a
/// *user-added* feature following the three steps of Sec. VI-B: (1) moving +
/// numeric, (2) regular values collected in the historical feature map under
/// its key, (3) a custom phrase template.
pub struct SpeedChange {
    params: SpeedChangeParams,
}

impl SpeedChange {
    /// With the given sharp-change threshold.
    pub fn new(params: SpeedChangeParams) -> Self {
        Self { params }
    }
}

impl Default for SpeedChange {
    fn default() -> Self {
        Self::new(SpeedChangeParams::default())
    }
}

impl Feature for SpeedChange {
    fn key(&self) -> &str {
        keys::SPEED_CHANGE
    }
    fn label(&self) -> &str {
        "sharp speed changes"
    }
    fn kind(&self) -> FeatureKind {
        FeatureKind::Moving
    }
    fn scale(&self) -> FeatureScale {
        FeatureScale::Numeric
    }
    fn count_like(&self) -> bool {
        true
    }
    fn extract(&self, ctx: &SegmentContext<'_>) -> f64 {
        sharp_speed_changes(ctx.raw_points, self.params) as f64
    }
    fn phrase(&self, info: &PhraseInfo) -> Option<String> {
        let n = info.value.round() as i64;
        Some(match info.regular {
            Some(r) => {
                format!("with {n} sharp speed change(s) while {:.1} is usual on this route", r)
            }
            None => format!("with {n} sharp speed change(s)"),
        })
    }
}

/// The paper's six standard features, in Table III/IV order:
/// grade of road, road width, traffic direction, speed, # stay points,
/// # U-turns.
pub fn standard_features() -> FeatureSet {
    FeatureSet::new()
        .with(Arc::new(GradeOfRoad))
        .with(Arc::new(RoadWidth))
        .with(Arc::new(TrafficDirection))
        .with(Arc::new(Speed))
        .with(Arc::new(StayPoints))
        .with(Arc::new(UTurns))
}

/// The standard set plus the `SpeC` extension (the Fig. 10(b) configuration).
pub fn extended_features() -> FeatureSet {
    standard_features().with(Arc::new(SpeedChange::default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmaker_geo::GeoPoint;
    use stmaker_poi::LandmarkId;
    use stmaker_trajectory::{RawPoint, Timestamp};

    fn base() -> GeoPoint {
        GeoPoint::new(39.9, 116.4)
    }

    fn ctx_with<'a>(raw: &'a [RawPoint]) -> SegmentContext<'a> {
        SegmentContext {
            from_landmark: LandmarkId(0),
            to_landmark: LandmarkId(1),
            from_t: raw.first().map(|p| p.t).unwrap_or(Timestamp(0)),
            to_t: raw.last().map(|p| p.t).unwrap_or(Timestamp(100)),
            raw_points: raw,
            edge: None,
            stays: &[],
            u_turns: &[],
            straight_dist_m: 1_000.0,
        }
    }

    #[test]
    fn standard_set_matches_paper_tables() {
        let set = standard_features();
        assert_eq!(set.len(), 6);
        let kinds: Vec<FeatureKind> = set.features().iter().map(|f| f.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                FeatureKind::Routing,
                FeatureKind::Routing,
                FeatureKind::Routing,
                FeatureKind::Moving,
                FeatureKind::Moving,
                FeatureKind::Moving
            ]
        );
        // Numeric column of Tables III/IV.
        assert_eq!(set.get(0).scale(), FeatureScale::Categorical);
        assert_eq!(set.get(1).scale(), FeatureScale::Numeric);
        assert_eq!(set.get(2).scale(), FeatureScale::Categorical);
        assert!(set.features()[3..].iter().all(|f| f.scale() == FeatureScale::Numeric));
    }

    #[test]
    fn extended_set_adds_spec() {
        let set = extended_features();
        assert_eq!(set.len(), 7);
        assert_eq!(set.get(6).key(), keys::SPEED_CHANGE);
    }

    #[test]
    fn speed_uses_raw_window() {
        let raw: Vec<RawPoint> = (0..5)
            .map(|i| RawPoint {
                point: base().destination(90.0, 100.0 * i as f64),
                t: Timestamp(10 * i as i64),
            })
            .collect();
        let v = Speed.extract(&ctx_with(&raw));
        assert!((v - 36.0).abs() < 0.5, "{v}");
    }

    #[test]
    fn speed_falls_back_to_straight_line() {
        // One sample only: raw-window speed is undefined; the landmark
        // fallback (1000 m / 100 s = 36 km/h) kicks in.
        let raw = [RawPoint { point: base(), t: Timestamp(0) }];
        let mut ctx = ctx_with(&raw);
        ctx.to_t = Timestamp(100);
        let v = Speed.extract(&ctx);
        assert!((v - 36.0).abs() < 0.5, "{v}");
    }

    #[test]
    fn speed_excludes_stay_jitter_distance_and_time() {
        use stmaker_trajectory::{detect_stay_points_in, StayPointParams};
        // Drive 500 m in 50 s (36 km/h), park 300 s with 10 m GPS jitter,
        // drive 500 m in 50 s. Naive dist/moving-time would fold ~40 hops of
        // jitter distance into the numerator and report an absurd speed.
        let mut pts = Vec::new();
        let mut t = 0i64;
        for i in 0..=10 {
            pts.push(RawPoint {
                point: base().destination(90.0, 50.0 * i as f64),
                t: Timestamp(t),
            });
            t += 5;
        }
        let stop = base().destination(90.0, 520.0);
        for k in 0..40 {
            pts.push(RawPoint {
                point: stop.destination((k * 77) as f64 % 360.0, 10.0),
                t: Timestamp(t + 50 + k * 7),
            });
        }
        t += 50 + 40 * 7;
        for i in 1..=10 {
            pts.push(RawPoint {
                point: stop.destination(90.0, 50.0 * i as f64),
                t: Timestamp(t + 5 * i),
            });
        }
        let stays = detect_stay_points_in(&pts, StayPointParams::default());
        assert_eq!(stays.len(), 1, "the park must register as a stay");
        let mut ctx = ctx_with(&pts);
        ctx.stays = &stays;
        let v = Speed.extract(&ctx);
        assert!((20.0..60.0).contains(&v), "moving speed should be ~36 km/h, got {v:.1}");
    }

    #[test]
    fn unmatched_segments_report_neutral_routing_values() {
        let raw: Vec<RawPoint> =
            (0..2).map(|i| RawPoint { point: base(), t: Timestamp(i) }).collect();
        let ctx = ctx_with(&raw);
        assert_eq!(GradeOfRoad.extract(&ctx), 4.0);
        assert_eq!(TrafficDirection.extract(&ctx), 1.0);
        assert!((RoadWidth.extract(&ctx) - RoadGrade::Provincial.typical_width_m()).abs() < 1e-9);
    }

    #[test]
    fn spec_custom_phrase_renders() {
        let f = SpeedChange::default();
        let p = f.phrase(&PhraseInfo { value: 3.0, regular: Some(0.4) }).unwrap();
        assert!(p.contains("3 sharp speed change"));
        assert!(p.contains("0.4 is usual"));
        let p2 = f.phrase(&PhraseInfo { value: 1.0, regular: None }).unwrap();
        assert!(p2.contains("1 sharp speed change"));
    }
}
