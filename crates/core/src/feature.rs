//! The extensible feature framework.
//!
//! Sec. III defines two feature families — *routing* features (where the
//! object travels) and *moving* features (how it travels) — and Sec. VI-B
//! promises that "users could easily add new features into STMaker by
//! desire". The [`Feature`] trait is that extension point: a feature declares
//! its kind (routing/moving), its scale (numeric/categorical) and how to
//! extract a value from a [`SegmentContext`]; everything downstream
//! (similarity, partitioning, irregular rates, templates) is generic over
//! the feature set.

use crate::context::SegmentContext;
use std::collections::HashMap;
use std::sync::Arc;

/// Routing vs moving (Sec. III): routing features compare against the
/// popular route, moving features against the historical feature map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureKind {
    Routing,
    Moving,
}

/// Numeric vs categorical (Table III/IV's "Numeric" column): numeric values
/// compare by distance, categorical by equality, and the paper "assign\[s\]
/// different integers for the categorical features".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureScale {
    Numeric,
    Categorical,
}

/// Everything a custom feature needs to render a phrase (Sec. VI-A): the
/// partition-aggregated observed value and the historical regular value.
#[derive(Debug, Clone, Copy)]
pub struct PhraseInfo {
    /// Partition-level aggregate of the observed values (mean for numeric
    /// features, mode for categorical ones).
    pub value: f64,
    /// Historical regular value on the partition's route, if known.
    pub regular: Option<f64>,
}

/// A trajectory feature (Definition: `f` in the paper's notation; `f(TS)` is
/// the segment's value of the feature).
pub trait Feature: Send + Sync {
    /// Stable identifier, e.g. `"speed"`. Also the key under which the
    /// historical feature map stores regular values.
    fn key(&self) -> &str;

    /// Human-readable label used by generic phrase templates.
    fn label(&self) -> &str {
        self.key()
    }

    /// Routing or moving.
    fn kind(&self) -> FeatureKind;

    /// Numeric or categorical.
    fn scale(&self) -> FeatureScale;

    /// Extracts `f(TS)` for one segment. Categorical features return their
    /// integer code as `f64`.
    fn extract(&self, ctx: &SegmentContext<'_>) -> f64;

    /// Whether this feature is an event *count* (stay points, U-turns, sharp
    /// speed changes). Count features are only worth a sentence when events
    /// actually occurred: a trip with zero stays on a route that usually has
    /// some is ordinary smooth driving, and the paper's templates (Table V)
    /// only ever phrase positive counts. Selection skips count features
    /// whose observed partition total is zero.
    fn count_like(&self) -> bool {
        false
    }

    /// Optional custom phrase for the summary (Sec. VI-A step 3 of adding a
    /// feature: "create feature template"). `None` falls back to the
    /// built-in templates (for the six standard features) or a generic
    /// comparative phrase.
    fn phrase(&self, _info: &PhraseInfo) -> Option<String> {
        None
    }
}

/// An ordered, keyed collection of features. Order defines the dimensions of
/// every feature vector in the system.
#[derive(Clone)]
pub struct FeatureSet {
    features: Vec<Arc<dyn Feature>>,
    by_key: HashMap<String, usize>,
}

impl FeatureSet {
    /// An empty set.
    pub fn new() -> Self {
        Self { features: Vec::new(), by_key: HashMap::new() }
    }

    /// Adds a feature; keys must be unique.
    ///
    /// # Panics
    /// Panics on duplicate keys.
    pub fn push(&mut self, f: Arc<dyn Feature>) {
        let key = f.key().to_owned();
        assert!(!self.by_key.contains_key(&key), "duplicate feature key {key:?}");
        self.by_key.insert(key, self.features.len());
        self.features.push(f);
    }

    /// Builder-style [`FeatureSet::push`].
    pub fn with(mut self, f: Arc<dyn Feature>) -> Self {
        self.push(f);
        self
    }

    /// The features, in dimension order.
    pub fn features(&self) -> &[Arc<dyn Feature>] {
        &self.features
    }

    /// Number of features (`|F|`).
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Dimension index of `key`, if present.
    pub fn index_of(&self, key: &str) -> Option<usize> {
        self.by_key.get(key).copied()
    }

    /// Feature accessor by dimension index.
    pub fn get(&self, idx: usize) -> &Arc<dyn Feature> {
        &self.features[idx]
    }

    /// Extracts the full `|F|`-dimensional value vector for one segment.
    pub fn extract_all(&self, ctx: &SegmentContext<'_>) -> Vec<f64> {
        self.features.iter().map(|f| f.extract(ctx)).collect()
    }
}

impl Default for FeatureSet {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-feature weights `w` (Sec. IV-B: "STMaker allows the user to specify
/// the weight of each feature"), parallel to a [`FeatureSet`]'s dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureWeights {
    weights: Vec<f64>,
}

impl FeatureWeights {
    /// All-ones weights for `set` (the paper's experimental default).
    pub fn uniform(set: &FeatureSet) -> Self {
        Self { weights: vec![1.0; set.len()] }
    }

    /// Sets the weight of the feature `key`.
    ///
    /// # Panics
    /// Panics if the key is unknown or the weight is not positive/finite.
    pub fn set(&mut self, set: &FeatureSet, key: &str, w: f64) {
        assert!(w.is_finite() && w > 0.0, "weights must be positive, got {w}");
        let idx = set.index_of(key).unwrap_or_else(|| panic!("unknown feature key {key:?}"));
        self.weights[idx] = w;
    }

    /// Builder-style [`FeatureWeights::set`].
    pub fn with(mut self, set: &FeatureSet, key: &str, w: f64) -> Self {
        self.set(set, key, w);
        self
    }

    /// The weight vector, in dimension order.
    pub fn as_slice(&self) -> &[f64] {
        &self.weights
    }

    /// Weight of dimension `idx`.
    pub fn get(&self, idx: usize) -> f64 {
        self.weights[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy(&'static str, FeatureKind);
    impl Feature for Dummy {
        fn key(&self) -> &str {
            self.0
        }
        fn kind(&self) -> FeatureKind {
            self.1
        }
        fn scale(&self) -> FeatureScale {
            FeatureScale::Numeric
        }
        fn extract(&self, _: &SegmentContext<'_>) -> f64 {
            1.0
        }
    }

    #[test]
    fn set_preserves_order_and_keys() {
        let set = FeatureSet::new()
            .with(Arc::new(Dummy("a", FeatureKind::Routing)))
            .with(Arc::new(Dummy("b", FeatureKind::Moving)));
        assert_eq!(set.len(), 2);
        assert_eq!(set.index_of("a"), Some(0));
        assert_eq!(set.index_of("b"), Some(1));
        assert_eq!(set.index_of("c"), None);
        assert_eq!(set.get(1).key(), "b");
    }

    #[test]
    #[should_panic(expected = "duplicate feature key")]
    fn duplicate_keys_rejected() {
        let _ = FeatureSet::new()
            .with(Arc::new(Dummy("a", FeatureKind::Routing)))
            .with(Arc::new(Dummy("a", FeatureKind::Moving)));
    }

    #[test]
    fn weights_default_uniform_and_settable() {
        let set = FeatureSet::new()
            .with(Arc::new(Dummy("a", FeatureKind::Routing)))
            .with(Arc::new(Dummy("b", FeatureKind::Moving)));
        let mut w = FeatureWeights::uniform(&set);
        assert_eq!(w.as_slice(), &[1.0, 1.0]);
        w.set(&set, "b", 3.0);
        assert_eq!(w.get(1), 3.0);
    }

    #[test]
    #[should_panic(expected = "unknown feature key")]
    fn weights_reject_unknown_key() {
        let set = FeatureSet::new().with(Arc::new(Dummy("a", FeatureKind::Routing)));
        let mut w = FeatureWeights::uniform(&set);
        w.set(&set, "nope", 2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weights_reject_non_positive() {
        let set = FeatureSet::new().with(Arc::new(Dummy("a", FeatureKind::Routing)));
        let mut w = FeatureWeights::uniform(&set);
        w.set(&set, "a", 0.0);
    }
}
