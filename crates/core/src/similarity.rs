//! Feature normalization and the weighted cosine similarity of Eq. (3).
//!
//! Sec. IV-B: "we normalize each feature f of TSᵢ to a value ranging from 0
//! to 1. The normalizing constant of f is the biggest feature value among all
//! the trajectory segments of T. … We employ the most widely used vector
//! similarity measure — Cosine Similarity — as our similarity measure", with
//! per-feature user weights folded into every inner product, and the whole
//! expression mapped into `[0, 1]` via `½(cos + 1)`.

use crate::feature::FeatureWeights;

/// Per-dimension normalizing constants: the maximum |value| of each feature
/// across all segments of one trajectory.
pub fn normalizing_constants(segment_values: &[Vec<f64>]) -> Vec<f64> {
    if segment_values.is_empty() {
        return Vec::new();
    }
    let dims = segment_values[0].len();
    let mut max = vec![0.0f64; dims];
    for v in segment_values {
        assert_eq!(v.len(), dims, "ragged feature matrix");
        for (m, x) in max.iter_mut().zip(v) {
            *m = m.max(x.abs());
        }
    }
    max
}

/// Normalizes one segment's value vector by the trajectory-level constants.
/// Dimensions whose constant is 0 (feature identically zero on this
/// trajectory) normalize to 0.
pub fn normalize(values: &[f64], constants: &[f64]) -> Vec<f64> {
    values.iter().zip(constants).map(|(v, c)| if *c > 0.0 { v / c } else { 0.0 }).collect()
}

/// Eq. (3): weighted cosine similarity of two normalized feature vectors,
/// mapped into `[0, 1]`.
///
/// Edge cases (zero vectors have no direction): two zero vectors are fully
/// similar (1.0, identical behaviour); a zero vs a non-zero vector scores
/// 0.5 (the image of cos = 0, i.e. "orthogonal / no evidence either way").
pub fn cosine_similarity(u: &[f64], v: &[f64], w: &FeatureWeights) -> f64 {
    assert_eq!(u.len(), v.len(), "dimension mismatch");
    assert_eq!(u.len(), w.as_slice().len(), "weight dimension mismatch");
    let mut dot = 0.0;
    let mut nu = 0.0;
    let mut nv = 0.0;
    for i in 0..u.len() {
        let wi = w.get(i);
        dot += wi * u[i] * v[i];
        nu += wi * u[i] * u[i];
        nv += wi * v[i] * v[i];
    }
    let cos = if nu == 0.0 && nv == 0.0 {
        1.0
    } else if nu == 0.0 || nv == 0.0 {
        0.0
    } else {
        dot / (nu.sqrt() * nv.sqrt())
    };
    let s = 0.5 * (cos + 1.0);
    crate::invariant::check_similarity(s);
    s
}

/// Pairwise similarities between consecutive segments:
/// `out[i] = S(TSᵢ, TSᵢ₊₁)`, computed on trajectory-normalized vectors.
pub fn consecutive_similarities(segment_values: &[Vec<f64>], w: &FeatureWeights) -> Vec<f64> {
    let constants = normalizing_constants(segment_values);
    let normalized: Vec<Vec<f64>> =
        segment_values.iter().map(|v| normalize(v, &constants)).collect();
    normalized.windows(2).map(|pair| cosine_similarity(&pair[0], &pair[1], w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{Feature, FeatureKind, FeatureScale, FeatureSet};
    use std::sync::Arc;

    struct Dummy(&'static str);
    impl Feature for Dummy {
        fn key(&self) -> &str {
            self.0
        }
        fn kind(&self) -> FeatureKind {
            FeatureKind::Moving
        }
        fn scale(&self) -> FeatureScale {
            FeatureScale::Numeric
        }
        fn extract(&self, _: &crate::context::SegmentContext<'_>) -> f64 {
            0.0
        }
    }

    fn weights(n: usize) -> (FeatureSet, FeatureWeights) {
        let mut set = FeatureSet::new();
        for i in 0..n {
            let key: &'static str = Box::leak(format!("f{i}").into_boxed_str());
            set.push(Arc::new(Dummy(key)));
        }
        let w = FeatureWeights::uniform(&set);
        (set, w)
    }

    #[test]
    fn identical_vectors_score_one() {
        let (_, w) = weights(3);
        let v = vec![0.3, 0.7, 1.0];
        assert!((cosine_similarity(&v, &v, &w) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn proportional_vectors_score_one() {
        let (_, w) = weights(3);
        let u = vec![0.2, 0.4, 0.6];
        let v = vec![0.1, 0.2, 0.3];
        assert!((cosine_similarity(&u, &v, &w) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_vectors_score_half() {
        let (_, w) = weights(2);
        let s = cosine_similarity(&[1.0, 0.0], &[0.0, 1.0], &w);
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_edge_cases() {
        let (_, w) = weights(2);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[0.0, 0.0], &w), 1.0);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 0.5], &w), 0.5);
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let (_, w) = weights(4);
        let u = vec![0.1, 0.9, 0.3, 0.0];
        let v = vec![0.8, 0.2, 0.0, 1.0];
        let a = cosine_similarity(&u, &v, &w);
        let b = cosine_similarity(&v, &u, &w);
        assert!((a - b).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn weights_shift_similarity() {
        // u and v agree on dim 0 and disagree on dim 1; upweighting dim 0
        // must increase similarity.
        let (set, w_uniform) = weights(2);
        let u = vec![1.0, 0.0];
        let v = vec![1.0, 1.0];
        let base = cosine_similarity(&u, &v, &w_uniform);
        let w_boosted = FeatureWeights::uniform(&set).with(&set, "f0", 5.0);
        let boosted = cosine_similarity(&u, &v, &w_boosted);
        assert!(boosted > base, "{boosted} vs {base}");
    }

    #[test]
    fn normalizing_constants_take_abs_max() {
        let vals = vec![vec![2.0, -8.0], vec![4.0, 1.0]];
        assert_eq!(normalizing_constants(&vals), vec![4.0, 8.0]);
        assert_eq!(normalize(&[2.0, -8.0], &[4.0, 8.0]), vec![0.5, -1.0]);
    }

    #[test]
    fn zero_constant_normalizes_to_zero() {
        assert_eq!(normalize(&[0.0, 5.0], &[0.0, 5.0]), vec![0.0, 1.0]);
    }

    #[test]
    fn consecutive_similarities_length() {
        let (_, w) = weights(2);
        let vals = vec![vec![1.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]];
        let sims = consecutive_similarities(&vals, &w);
        assert_eq!(sims.len(), 2);
        assert!(sims[0] > sims[1]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_rejected() {
        normalizing_constants(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
