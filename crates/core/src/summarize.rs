//! The end-to-end summarizer: the 4-step pipeline of Fig. 3.
//!
//! 1. rewrite the raw trajectory into a symbolic trajectory (calibration);
//! 2. partition the symbolic trajectory (Sec. IV);
//! 3. select the most irregular features per partition (Sec. V);
//! 4. plug the selections into phrase/sentence templates (Sec. VI-A).
//!
//! [`Summarizer::train`] builds the historical knowledge (popular routes +
//! feature map) from a training corpus, mirroring Sec. VII-A's 50k-trajectory
//! training split; [`Summarizer::summarize`] / [`Summarizer::summarize_k`]
//! then summarize unseen trajectories.

use crate::cached_routes::CachedRoutes;
use crate::context::{
    extract_segment_data, nearest_landmark_name, segment_context, ExtractionParams, SegmentData,
};
use crate::feature::{FeatureScale, FeatureSet, FeatureWeights};
use crate::partition::{optimal_k_partition, optimal_partition, PartitionResult, PartitionSpan};
use crate::select::{select_features_with, SelectScratch, SelectedFeature, SelectionInput};
use crate::similarity::consecutive_similarities;
use crate::template::{render_partition_sentence, PartitionFacts};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use stmaker_cache::CacheStats;
use stmaker_calibration::{
    calibrate_view, calibrate_view_traced, CalibrationError, CalibrationParams,
};
use stmaker_exec::Executor;
use stmaker_geo::{SpatialIndexKind, SpatialStats};
use stmaker_mapmatch::{MapMatcher, MatchParams};
use stmaker_obs::{ArgValue, Exemplar, ExemplarReservoir, Recorder, Report, SpanNode};
use stmaker_poi::{LandmarkId, LandmarkRegistry};
use stmaker_road::RoadNetwork;
use stmaker_routes::{HistoricalFeatureMap, PopularRouteConfig, PopularRoutes};
use stmaker_trajectory::{RawPoint, RawTrajectory, RawView, SymbolicTrajectory, TrajectoryError};

/// All tunables of the pipeline. Defaults are the paper's experimental
/// settings (Sec. VII-B): Ca = 0.5, η = 0.2, unit feature weights.
#[derive(Debug, Clone)]
pub struct SummarizerConfig {
    /// Weight `Ca` of landmark significance in the partition potential.
    pub ca: f64,
    /// Irregular-rate selection threshold η.
    pub eta: f64,
    /// Calibration radius/spacing.
    pub calibration: CalibrationParams,
    /// Stay-point / U-turn detection thresholds.
    pub extraction: ExtractionParams,
    /// Map-matching parameters.
    pub matching: MatchParams,
    /// Popular-route mining parameters.
    pub popular: PopularRouteConfig,
    /// Worker threads for training and batch summarization; `0` (the
    /// default) means auto — `STMAKER_THREADS` if set, else
    /// [`std::thread::available_parallelism`]. Thread count never changes
    /// results: see `stmaker-exec`'s determinism contract.
    pub threads: usize,
    /// Capacity (in routes) of the read-through serving cache memoizing
    /// `PR(from, to)` and the per-hop regular value sequences; `0` (the
    /// default) disables it — a disabled cache costs one branch on the
    /// query path. Lookups are pure, so the cache never changes output
    /// bytes, only latency (DESIGN.md §12).
    pub route_cache: usize,
    /// Spatial index backend for the map-matching candidate pre-filter
    /// (R-tree by default; the grid is the `--spatial-index grid` escape
    /// hatch). Purely a latency knob: candidate sets, models and summaries
    /// are byte-identical under both backends (DESIGN.md §14). Calibration's
    /// corridor query follows the registry's own backend, which the CLI
    /// switches together with this field.
    pub spatial_index: SpatialIndexKind,
    /// Telemetry sink for per-stage spans and counters. Defaults to the
    /// disabled no-op recorder, which costs a branch per stage and
    /// nothing else — no allocation, no locking.
    pub recorder: Recorder,
}

impl Default for SummarizerConfig {
    fn default() -> Self {
        Self {
            ca: 0.5,
            eta: 0.2,
            calibration: CalibrationParams::default(),
            extraction: ExtractionParams::default(),
            matching: MatchParams::default(),
            popular: PopularRouteConfig::default(),
            threads: 0,
            route_cache: 0,
            spatial_index: SpatialIndexKind::default(),
            recorder: Recorder::disabled(),
        }
    }
}

impl SummarizerConfig {
    /// Attaches a telemetry recorder (builder style): every pipeline
    /// stage of a summarizer using this config emits spans and counters
    /// into it.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Sets the worker-thread count (builder style); `0` means auto.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables the read-through route cache with room for `capacity`
    /// routes (builder style); `0` disables it. Purely a latency knob:
    /// summaries are byte-identical with and without it.
    #[must_use]
    pub fn with_route_cache(mut self, capacity: usize) -> Self {
        self.route_cache = capacity;
        self
    }

    /// Selects the matcher's spatial index backend (builder style). Purely a
    /// latency knob: output bytes are identical under both backends.
    #[must_use]
    pub fn with_spatial_index(mut self, kind: SpatialIndexKind) -> Self {
        self.spatial_index = kind;
        self
    }
}

thread_local! {
    /// Per-thread selection scratch, reused across partitions and trips.
    /// Batch workers are scoped threads, so each naturally gets its own
    /// buffers with no cross-worker synchronization.
    static SELECT_SCRATCH: RefCell<SelectScratch> = RefCell::new(SelectScratch::default());
}

/// Why a trajectory could not be summarized.
#[derive(Debug)]
pub enum SummarizeError {
    /// The input buffer is not a valid trajectory (too few samples,
    /// defective coordinates, out-of-order timestamps). Route untrusted
    /// feeds through `stmaker_trajectory::sanitize` first.
    Input(TrajectoryError),
    /// Calibration failed (trajectory anchors fewer than two landmarks).
    Calibration(CalibrationError),
    /// The requested partition count is infeasible: `k` must be in
    /// `1..=max` (the number of segments).
    InvalidK {
        /// Requested partition count.
        k: usize,
        /// Number of segments available.
        max: usize,
    },
    /// A model trained against a registry of a different size was offered
    /// to [`Summarizer::try_from_model`] / [`Summarizer::swap_model`].
    /// Landmark ids are positional, so accepting it would silently rename
    /// every landmark.
    ModelMismatch {
        /// Registry size the model was trained against.
        model: usize,
        /// Size of the registry the summarizer is bound to.
        registry: usize,
    },
}

impl std::fmt::Display for SummarizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SummarizeError::Input(e) => write!(f, "invalid trajectory input: {e}"),
            SummarizeError::Calibration(e) => write!(f, "calibration failed: {e}"),
            SummarizeError::InvalidK { k, max } => {
                write!(f, "cannot split {max} segment(s) into {k} partition(s)")
            }
            SummarizeError::ModelMismatch { model, registry } => {
                write!(
                    f,
                    "model was trained against a {model}-landmark registry, \
                     got {registry} landmarks"
                )
            }
        }
    }
}

impl std::error::Error for SummarizeError {}

impl From<CalibrationError> for SummarizeError {
    fn from(e: CalibrationError) -> Self {
        SummarizeError::Calibration(e)
    }
}

impl From<TrajectoryError> for SummarizeError {
    fn from(e: TrajectoryError) -> Self {
        SummarizeError::Input(e)
    }
}

/// The historical knowledge mined from the training corpus.
///
/// Serializable: train once (minutes over a large corpus), [`TrainedModel::save`]
/// the result, and [`TrainedModel::load`] it in every serving process —
/// summarization itself is milliseconds. Files are canonical JSON (sorted
/// map entries), so identical training runs produce byte-identical models.
#[derive(serde::Serialize, serde::Deserialize)]
pub struct TrainedModel {
    /// Popular-route miner over the training symbolic trajectories.
    pub popular: PopularRoutes,
    /// Per-hop historical feature statistics (moving *and* routing).
    pub featmap: HistoricalFeatureMap,
    /// Training trajectories successfully calibrated and ingested.
    pub n_trained: usize,
    /// Size of the landmark registry the model was trained against.
    /// Landmark ids are positional, so loading a model against a registry of
    /// a different size would silently rename every landmark;
    /// [`Summarizer::from_model`] rejects the mismatch. 0 in models saved by
    /// older versions (check skipped).
    #[serde(default)]
    pub registry_len: usize,
}

impl TrainedModel {
    /// Serializes to canonical JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model types serialize")
    }

    /// Parses a model from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Writes the model to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads a model from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let body = std::fs::read_to_string(path)?;
        Self::from_json(&body).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// The summary of one trajectory partition.
#[derive(Debug, Clone)]
pub struct PartitionSummary {
    /// Segment range of the partition.
    pub span: PartitionSpan,
    /// Source landmark.
    pub from: LandmarkId,
    /// Destination landmark.
    pub to: LandmarkId,
    /// Source landmark display name.
    pub from_name: String,
    /// Destination landmark display name.
    pub to_name: String,
    /// Features selected for description, most irregular first.
    pub selected: Vec<SelectedFeature>,
    /// The rendered sentence.
    pub sentence: String,
}

/// A complete trajectory summary.
#[derive(Debug, Clone)]
pub struct Summary {
    /// The full summary text (partition sentences joined).
    pub text: String,
    /// Per-partition details.
    pub partitions: Vec<PartitionSummary>,
    /// `|T̄|` of the underlying symbolic trajectory.
    pub symbolic_len: usize,
    /// The minimized partition potential.
    pub potential: f64,
}

/// A prepared (calibrated + extracted) trajectory, reusable across
/// summarizations with different `k` (used by the Fig. 12 benchmarks and the
/// parameter-sweep experiments).
pub struct Prepared {
    /// The calibrated symbolic trajectory.
    pub symbolic: SymbolicTrajectory,
    /// Per-segment extraction artefacts.
    pub data: Vec<SegmentData>,
    /// Per-segment feature value vectors.
    pub seg_values: Vec<Vec<f64>>,
}

/// The STMaker summarizer.
pub struct Summarizer<'a> {
    net: &'a RoadNetwork,
    registry: &'a LandmarkRegistry,
    matcher: MapMatcher<'a>,
    features: FeatureSet,
    weights: FeatureWeights,
    cfg: SummarizerConfig,
    model: TrainedModel,
    /// Read-through memo for `PR(from, to)` and per-hop value sequences,
    /// shared across batch workers; `None` unless
    /// [`SummarizerConfig::with_route_cache`] enabled it.
    route_cache: Option<Arc<CachedRoutes>>,
}

/// The route cache a config asks for (`None` when disabled).
fn build_route_cache(cfg: &SummarizerConfig) -> Option<Arc<CachedRoutes>> {
    (cfg.route_cache > 0).then(|| Arc::new(CachedRoutes::new(cfg.route_cache)))
}

/// Checks that `model` was trained against a registry of `registry`'s size
/// (0 = legacy model, check skipped).
fn check_model(model: &TrainedModel, registry: &LandmarkRegistry) -> Result<(), SummarizeError> {
    if model.registry_len != 0 && model.registry_len != registry.len() {
        return Err(SummarizeError::ModelMismatch {
            model: model.registry_len,
            registry: registry.len(),
        });
    }
    Ok(())
}

impl<'a> Summarizer<'a> {
    /// Trains a summarizer: calibrates every training trajectory, mines
    /// popular routes, and builds the historical feature map (including
    /// per-hop routing statistics used to describe the popular route).
    /// Training trajectories that fail calibration are skipped.
    ///
    /// Training fans out over `cfg.threads` workers: the corpus is split
    /// into fixed shards (a function of corpus size only), each shard
    /// folds into a partial feature map, and the partials merge via
    /// [`HistoricalFeatureMap::merge`] in ascending shard order — so the
    /// trained model is byte-identical for every thread count.
    pub fn train(
        net: &'a RoadNetwork,
        registry: &'a LandmarkRegistry,
        training: &[RawTrajectory],
        features: FeatureSet,
        weights: FeatureWeights,
        cfg: SummarizerConfig,
    ) -> Self {
        assert_eq!(weights.as_slice().len(), features.len(), "weights must match feature set");
        let obs = cfg.recorder.clone();
        let _train_span = obs.span("train");
        let matcher = MapMatcher::with_index(net, cfg.matching, cfg.spatial_index);
        let exec = Executor::new(cfg.threads).with_recorder(obs.clone());
        let (calibration, extraction) = (cfg.calibration, cfg.extraction);

        /// Per-shard training state; merged in shard order below.
        struct TrainShard {
            featmap: HistoricalFeatureMap,
            symbolics: Vec<SymbolicTrajectory>,
            skipped: u64,
            elapsed: std::time::Duration,
        }

        let partials = exec.shard_partials(training, |_, _, shard| {
            // lint: wallclock — shard wall time is replayed to obs in shard order; model bytes never see it
            let t0 = Instant::now();
            let mut featmap = HistoricalFeatureMap::new();
            let mut symbolics: Vec<SymbolicTrajectory> = Vec::new();
            let mut skipped = 0u64;
            for raw in shard {
                let raw = raw.view();
                let Ok(symbolic) = calibrate_view(raw, registry, calibration) else {
                    skipped += 1;
                    continue;
                };
                let data = extract_segment_data(raw, &symbolic, registry, &matcher, extraction);
                for i in 0..symbolic.segment_count() {
                    let ctx = segment_context(raw, &symbolic, &data, net, i);
                    let (from, to) = (ctx.from_landmark, ctx.to_landmark);
                    for f in features.features() {
                        let v = f.extract(&ctx);
                        match f.scale() {
                            FeatureScale::Numeric => featmap.add_observation(from, to, f.key(), v),
                            FeatureScale::Categorical => featmap.add_categorical_observation(
                                from,
                                to,
                                f.key(),
                                v.round().max(0.0) as u32,
                            ),
                        }
                    }
                }
                symbolics.push(symbolic);
            }
            TrainShard { featmap, symbolics, skipped, elapsed: t0.elapsed() }
        });

        let mut featmap = HistoricalFeatureMap::new();
        let mut symbolics: Vec<SymbolicTrajectory> = Vec::new();
        let mut skipped = 0u64;
        for p in partials {
            obs.span_observed("train.shard", p.elapsed);
            featmap.merge(&p.featmap);
            symbolics.extend(p.symbolics);
            skipped += p.skipped;
        }

        let n_trained = symbolics.len();
        obs.add("train.trajectories_ingested", n_trained as u64); // cast-ok: corpus size
        obs.add("train.trajectories_skipped", skipped);
        let popular = PopularRoutes::build_with(&symbolics, cfg.popular, &exec);
        // Reuse the matcher built for extraction instead of indexing the
        // network's edge geometry a second time via from_model.
        let route_cache = build_route_cache(&cfg);
        Self {
            net,
            registry,
            matcher,
            features,
            weights,
            cfg,
            model: TrainedModel { popular, featmap, n_trained, registry_len: registry.len() },
            route_cache,
        }
    }

    /// Assembles a summarizer around an existing (e.g. loaded) model.
    ///
    /// # Panics
    /// Panics if the model records a registry size different from
    /// `registry`'s — landmark ids are positional, and a mismatched registry
    /// would silently reinterpret every landmark in the model.
    pub fn from_model(
        net: &'a RoadNetwork,
        registry: &'a LandmarkRegistry,
        model: TrainedModel,
        features: FeatureSet,
        weights: FeatureWeights,
        cfg: SummarizerConfig,
    ) -> Self {
        assert!(
            model.registry_len == 0 || model.registry_len == registry.len(),
            "model was trained against a {}-landmark registry, got {} landmarks",
            model.registry_len,
            registry.len()
        );
        Self::assemble(net, registry, model, features, weights, cfg)
    }

    /// Fallible [`Self::from_model`]: a registry-size mismatch is a
    /// [`SummarizeError::ModelMismatch`] instead of a panic — the form a
    /// serving process loading operator-supplied model files wants.
    pub fn try_from_model(
        net: &'a RoadNetwork,
        registry: &'a LandmarkRegistry,
        model: TrainedModel,
        features: FeatureSet,
        weights: FeatureWeights,
        cfg: SummarizerConfig,
    ) -> Result<Self, SummarizeError> {
        check_model(&model, registry)?;
        Ok(Self::assemble(net, registry, model, features, weights, cfg))
    }

    fn assemble(
        net: &'a RoadNetwork,
        registry: &'a LandmarkRegistry,
        model: TrainedModel,
        features: FeatureSet,
        weights: FeatureWeights,
        cfg: SummarizerConfig,
    ) -> Self {
        assert_eq!(weights.as_slice().len(), features.len(), "weights must match feature set");
        let matcher = MapMatcher::with_index(net, cfg.matching, cfg.spatial_index);
        let route_cache = build_route_cache(&cfg);
        Self { net, registry, matcher, features, weights, cfg, model, route_cache }
    }

    /// Replaces the trained model in place — the hot-swap primitive the
    /// serving layer builds on. The route cache memoizes pure functions of
    /// the *outgoing* model (including negative answers: pairs it had no
    /// route for), so a fresh cache is installed in the same step; keeping
    /// the old entries would silently answer queries from the previous
    /// model. Rejects a model trained against a different-sized registry.
    pub fn swap_model(&mut self, model: TrainedModel) -> Result<(), SummarizeError> {
        check_model(&model, self.registry)?;
        self.route_cache = build_route_cache(&self.cfg);
        self.model = model;
        Ok(())
    }

    /// Consumes the summarizer, handing back its trained model (what a
    /// trainer process ships to serving processes without a JSON round
    /// trip).
    pub fn into_model(self) -> TrainedModel {
        self.model
    }

    /// The trained historical model.
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// The feature set in use.
    pub fn features(&self) -> &FeatureSet {
        &self.features
    }

    /// The active configuration.
    pub fn config(&self) -> &SummarizerConfig {
        &self.cfg
    }

    /// The telemetry recorder this summarizer reports into (the disabled
    /// no-op unless one was attached via
    /// [`SummarizerConfig::with_recorder`]).
    pub fn recorder(&self) -> &Recorder {
        &self.cfg.recorder
    }

    /// Replaces the feature weights (Fig. 10(a)'s experiment knob).
    pub fn set_weights(&mut self, weights: FeatureWeights) {
        assert_eq!(weights.as_slice().len(), self.features.len());
        self.weights = weights;
    }

    /// Replaces the selection threshold / partition constants. Rebuilds
    /// the route cache to match the new capacity (memoized answers are
    /// pure, so dropping them is always safe).
    pub fn set_config(&mut self, cfg: SummarizerConfig) {
        self.route_cache = build_route_cache(&cfg);
        self.cfg = cfg;
    }

    /// Counter snapshot of the route cache (`None` when the cache is
    /// disabled) — what `demo --repeat` prints its hit rate from.
    pub fn route_cache_stats(&self) -> Option<CacheStats> {
        self.route_cache.as_ref().map(|c| c.stats())
    }

    /// Step 1 + feature extraction: calibrate and extract, reusable across
    /// different partition granularities.
    pub fn prepare(&self, raw: &RawTrajectory) -> Result<Prepared, SummarizeError> {
        self.prepare_view(raw.view(), &self.cfg.recorder)
    }

    /// [`Self::prepare`] over a borrowed sample buffer, reporting into
    /// `obs` (batch workers pass a disabled recorder so the shared span
    /// tree stays single-threaded).
    fn prepare_view(&self, raw: RawView<'_>, obs: &Recorder) -> Result<Prepared, SummarizeError> {
        let mut spatial = SpatialStats::default();
        let symbolic = {
            let _span = obs.span("calibrate");
            calibrate_view_traced(raw, self.registry, self.cfg.calibration, &mut spatial)?
        };
        obs.add("calibrate.landmarks_matched", symbolic.size() as u64); // cast-ok: landmark count
        obs.add("spatial.nodes_visited", spatial.nodes_visited);
        obs.add("spatial.leaves_scanned", spatial.leaves_scanned);
        obs.add("spatial.candidates_refined", spatial.candidates_refined);
        let _span = obs.span("extract");
        let data =
            extract_segment_data(raw, &symbolic, self.registry, &self.matcher, self.cfg.extraction);
        let seg_values: Vec<Vec<f64>> = (0..symbolic.segment_count())
            .map(|i| {
                let ctx = segment_context(raw, &symbolic, &data, self.net, i);
                self.features.extract_all(&ctx)
            })
            .collect();
        obs.add("extract.segments_scanned", seg_values.len() as u64); // cast-ok: segment count
        Ok(Prepared { symbolic, data, seg_values })
    }

    /// Opens the root telemetry span for one end-to-end summarization and
    /// records the requested granularity.
    fn summarize_span(&self, k: Option<usize>) -> stmaker_obs::Span {
        let span = self.cfg.recorder.span("summarize");
        if let Some(k) = k {
            self.cfg.recorder.gauge("summarize.requested_k", k as f64); // cast-ok: small k
        }
        span
    }

    /// Summarizes with the globally optimal partition (Eq. 4) — STMaker's
    /// default granularity.
    pub fn summarize(&self, raw: &RawTrajectory) -> Result<Summary, SummarizeError> {
        let _root = self.summarize_span(None);
        let prepared = self.prepare(raw)?;
        self.summarize_prepared(&prepared, None)
    }

    /// Summarizes with exactly `k` partitions (Algorithm 1).
    pub fn summarize_k(&self, raw: &RawTrajectory, k: usize) -> Result<Summary, SummarizeError> {
        let _root = self.summarize_span(Some(k));
        let prepared = self.prepare(raw)?;
        self.summarize_prepared(&prepared, Some(k))
    }

    /// Summarizes straight out of a borrowed sample buffer — the zero-copy
    /// path used by [`crate::streaming::StreamingSummarizer`], which would
    /// otherwise clone its whole buffer into an owned trajectory on every
    /// refresh.
    ///
    /// Never panics: a buffer violating the [`RawView`] invariants (too few
    /// samples, defective coordinates, decreasing timestamps) returns
    /// [`SummarizeError::Input`].
    pub fn summarize_points(&self, points: &[RawPoint]) -> Result<Summary, SummarizeError> {
        let raw = RawView::try_new(points)?;
        let _root = self.summarize_span(None);
        let prepared = self.prepare_view(raw, &self.cfg.recorder)?;
        self.summarize_prepared(&prepared, None)
    }

    /// Summarizes many trajectories in parallel over `cfg.threads` workers
    /// (default granularity). Results are index-aligned with `trips` —
    /// exactly what mapping [`Self::summarize`] over the slice would
    /// return, computed on however many workers are configured.
    pub fn summarize_batch(&self, trips: &[RawTrajectory]) -> Vec<Result<Summary, SummarizeError>> {
        self.summarize_batch_inner(trips, None)
    }

    /// [`Self::summarize_batch`] with exactly `k` partitions per trip.
    pub fn summarize_batch_k(
        &self,
        trips: &[RawTrajectory],
        k: usize,
    ) -> Vec<Result<Summary, SummarizeError>> {
        self.summarize_batch_inner(trips, Some(k))
    }

    fn summarize_batch_inner(
        &self,
        trips: &[RawTrajectory],
        k: Option<usize>,
    ) -> Vec<Result<Summary, SummarizeError>> {
        let obs = &self.cfg.recorder;
        let _root = obs.span("summarize_batch");
        let cache_before = self.route_cache.as_ref().map(|c| c.stats());
        let exec = Executor::new(self.cfg.threads).with_recorder(obs.clone());
        // Workers run the pipeline against a private recorder (cross-thread
        // span opens would interleave nondeterministically in the shared
        // tree): a fresh enabled one per trip when telemetry is on (its
        // stage breakdown is replayed below in input order), the free
        // disabled one otherwise. Either way they measure their own wall
        // time and the caller replays the per-trip durations in input
        // order.
        let detailed = obs.is_enabled();
        let timed = exec.par_map(trips, |_, raw| {
            // lint: wallclock — per-trip duration is replayed to obs in input order, never folded into summaries
            let t0 = Instant::now();
            let local = if detailed { Recorder::enabled() } else { Recorder::disabled() };
            let r = self
                .prepare_view(raw.view(), &local)
                .and_then(|p| self.summarize_prepared_obs(&p, k, &local));
            (r, t0.elapsed(), detailed.then(|| local.report()))
        });
        let out = self.collect_batch(timed);
        self.record_cache_delta(cache_before);
        out
    }

    /// Summarizes many *untrusted* sample buffers in parallel — the batch
    /// analogue of [`Self::summarize_points`]. Where [`Self::summarize_batch`]
    /// takes [`RawTrajectory`] values that are valid by construction, this
    /// accepts raw buffers straight off disk: each is validated inside its
    /// worker, and a defective buffer yields [`SummarizeError::Input`] at its
    /// index while every other trip still summarizes. Results stay
    /// index-aligned and byte-identical at any `cfg.threads`.
    pub fn summarize_batch_points(
        &self,
        trips: &[Vec<RawPoint>],
    ) -> Vec<Result<Summary, SummarizeError>> {
        let obs = &self.cfg.recorder;
        let _root = obs.span("summarize_batch");
        let cache_before = self.route_cache.as_ref().map(|c| c.stats());
        let exec = Executor::new(self.cfg.threads).with_recorder(obs.clone());
        let detailed = obs.is_enabled();
        let timed = exec.par_map(trips, |_, points| {
            // lint: wallclock — per-trip duration is replayed to obs in input order, never folded into summaries
            let t0 = Instant::now();
            let local = if detailed { Recorder::enabled() } else { Recorder::disabled() };
            let r = RawView::try_new(points).map_err(SummarizeError::Input).and_then(|raw| {
                self.prepare_view(raw, &local)
                    .and_then(|p| self.summarize_prepared_obs(&p, None, &local))
            });
            (r, t0.elapsed(), detailed.then(|| local.report()))
        });
        let out = self.collect_batch(timed);
        self.record_cache_delta(cache_before);
        out
    }

    /// Emits the route cache's counter deltas for one batch —
    /// `cache.hits`/`cache.misses`/`cache.evictions` plus the
    /// `route_cache.capacity` gauge — into the shared recorder. A no-op
    /// when the cache is disabled.
    fn record_cache_delta(&self, before: Option<CacheStats>) {
        let (Some(cache), Some(before)) = (&self.route_cache, before) else { return };
        let obs = &self.cfg.recorder;
        let delta = cache.stats().since(&before);
        obs.add("cache.hits", delta.hits);
        obs.add("cache.misses", delta.misses);
        obs.add("cache.evictions", delta.evictions);
        obs.gauge("route_cache.capacity", cache.route_capacity() as f64); // cast-ok: entry count
    }

    /// Replays per-trip wall times into the shared recorder in input order
    /// and tallies the ok/failed counters — the deterministic tail every
    /// batch entry point funnels through. When workers carried a private
    /// recorder, each trip's stage breakdown is replayed as children of
    /// its `summarize_batch.trip` span, the worker's stage counters are
    /// merged into the shared recorder, and the slowest trips are offered
    /// to the exemplar reservoir and replayed as `exemplar.trip` spans.
    fn collect_batch(
        &self,
        timed: Vec<(Result<Summary, SummarizeError>, std::time::Duration, Option<Report>)>,
    ) -> Vec<Result<Summary, SummarizeError>> {
        let obs = &self.cfg.recorder;
        let mut out = Vec::with_capacity(timed.len());
        let (mut ok, mut failed) = (0u64, 0u64);
        let mut slowest = ExemplarReservoir::default();
        for (i, (r, dur, detail)) in timed.into_iter().enumerate() {
            match detail {
                None => obs.span_observed("summarize_batch.trip", dur),
                Some(report) => {
                    let trip = i as u64; // cast-ok: trip index
                    obs.replay_span(
                        "summarize_batch.trip",
                        dur,
                        &[("trip", ArgValue::U64(trip))],
                        |o| replay_stage_spans(o, &report.spans),
                    );
                    // Worker-side stage counters (landmarks matched, DP
                    // cells, cache probes, ...) would otherwise be lost
                    // with the private recorder.
                    for (name, v) in &report.counters {
                        obs.add(name, *v);
                    }
                    // Only successful trips become exemplars: every
                    // success runs the same stage set, so the replayed
                    // `exemplar.trip` event structure is independent of
                    // *which* trips were slowest — which keeps the
                    // logical-clock trace byte-identical across thread
                    // counts.
                    if r.is_ok() {
                        let ex = Exemplar {
                            id: format!("trip_{i}"),
                            total_ms: dur.as_secs_f64() * 1e3,
                            stages: stage_breakdown(&report.spans),
                        };
                        obs.exemplar(ex.clone());
                        slowest.offer(ex);
                    }
                }
            }
            match &r {
                Ok(_) => ok += 1,
                Err(_) => failed += 1,
            }
            out.push(r);
        }
        obs.add("batch.summaries_ok", ok);
        obs.add("batch.summaries_failed", failed);
        // Replay this batch's slowest trips as dedicated spans so the
        // exported trace shows the outliers with their stage breakdown.
        // The journal args deliberately omit the trip index: which trips
        // are slowest is wall-clock dependent, and the logical-clock trace
        // must stay byte-identical across thread counts.
        for ex in slowest.sorted() {
            let total = std::time::Duration::from_secs_f64(ex.total_ms.max(0.0) / 1e3);
            obs.replay_span("exemplar.trip", total, &[], |o| {
                for (name, ms) in &ex.stages {
                    o.span_observed(name, std::time::Duration::from_secs_f64(ms.max(0.0) / 1e3));
                }
            });
        }
        out
    }

    /// Steps 2–4 on an already prepared trajectory.
    pub fn summarize_prepared(
        &self,
        prepared: &Prepared,
        k: Option<usize>,
    ) -> Result<Summary, SummarizeError> {
        self.summarize_prepared_obs(prepared, k, &self.cfg.recorder)
    }

    /// [`Self::summarize_prepared`] reporting into `obs` instead of the
    /// configured recorder (batch workers pass the disabled one).
    fn summarize_prepared_obs(
        &self,
        prepared: &Prepared,
        k: Option<usize>,
        obs: &Recorder,
    ) -> Result<Summary, SummarizeError> {
        let symbolic = &prepared.symbolic;
        let n_segs = symbolic.segment_count();

        // --- Step 2: partition.
        let partition: PartitionResult = {
            let _span = obs.span("partition");
            let sims = consecutive_similarities(&prepared.seg_values, &self.weights);
            let sigs: Vec<f64> = (1..n_segs)
                .map(|b| self.registry.get(symbolic.points()[b].landmark).significance)
                .collect();
            obs.add("partition.segments_scanned", n_segs as u64); // cast-ok: segment count
                                                                  // DP table size, computed arithmetically so the hot loops in
                                                                  // partition.rs stay free of telemetry branches: the
                                                                  // k-constrained pass fills an (n-1) x k table; the
                                                                  // unconstrained pass is linear in the boundary count.
            let dp_cells = match k {
                Some(k) => (n_segs.saturating_sub(1)).saturating_mul(k),
                None => sims.len(),
            };
            obs.add("partition.dp_cells", dp_cells as u64); // cast-ok: table size
            match k {
                None => optimal_partition(&sims, &sigs, self.cfg.ca),
                Some(k) => optimal_k_partition(&sims, &sigs, self.cfg.ca, k)
                    .ok_or(SummarizeError::InvalidK { k, max: n_segs })?,
            }
        };

        // --- Steps 3 & 4 per partition.
        let mut partitions = Vec::with_capacity(partition.k());
        for (pi, span) in partition.spans.iter().enumerate() {
            let from = symbolic.points()[span.seg_start].landmark;
            let to = symbolic.points()[span.seg_end + 1].landmark;
            let hops: Vec<(LandmarkId, LandmarkId)> = (span.seg_start..=span.seg_end)
                .map(|i| (symbolic.points()[i].landmark, symbolic.points()[i + 1].landmark))
                .collect();
            // The popular route comes either from the shared memo (an
            // `Arc` slice — a probe and a refcount bump) or as an owned
            // vector from the model; both locals must outlive `pr`. A
            // disabled cache costs exactly this one branch.
            let _pr_span = obs.span("popular_route");
            let (pr_owned, pr_cached): (Option<Vec<LandmarkId>>, Option<Arc<[LandmarkId]>>) =
                match &self.route_cache {
                    None => (self.model.popular.popular_route(from, to), None),
                    Some(cache) => (None, cache.popular_route(&self.model.popular, from, to)),
                };
            let pr: Option<&[LandmarkId]> = pr_owned.as_deref().or(pr_cached.as_deref());
            obs.add(if pr.is_some() { "popular_route.hits" } else { "popular_route.misses" }, 1);
            drop(_pr_span);
            let seg_values = &prepared.seg_values[span.seg_start..=span.seg_end];

            let selected = {
                let _span = obs.span("select");
                let input = SelectionInput {
                    features: &self.features,
                    weights: &self.weights,
                    eta: self.cfg.eta,
                    seg_values,
                    hops: &hops,
                    popular_route: pr,
                    featmap: &self.model.featmap,
                    route_cache: self.route_cache.as_deref(),
                };
                let selected =
                    SELECT_SCRATCH.with(|s| select_features_with(&input, &mut s.borrow_mut()));
                obs.add("select.features_kept", selected.len() as u64); // cast-ok: feature count
                obs.add(
                    "select.features_dropped",
                    self.features.len().saturating_sub(selected.len()) as u64, // cast-ok: feature count
                );
                selected
            };

            let _render_span = obs.span("render");
            let facts = self.partition_facts(prepared, span, from, to);
            let sentence = render_partition_sentence(pi == 0, &facts, &selected, &self.features);
            drop(_render_span);
            partitions.push(PartitionSummary {
                span: *span,
                from,
                to,
                from_name: facts.from_name.clone(),
                to_name: facts.to_name.clone(),
                selected,
                sentence,
            });
        }

        let text = partitions.iter().map(|p| p.sentence.as_str()).collect::<Vec<_>>().join(" ");
        Ok(Summary {
            text,
            partitions,
            symbolic_len: symbolic.size(),
            potential: partition.potential,
        })
    }

    /// Assembles the template facts for one partition: landmark names, the
    /// dominant road name, and the stay/U-turn by-products.
    fn partition_facts(
        &self,
        prepared: &Prepared,
        span: &PartitionSpan,
        from: LandmarkId,
        to: LandmarkId,
    ) -> PartitionFacts {
        let mut stay_total_secs = 0i64;
        let mut stay_count = 0usize;
        let mut u_turn_places = Vec::new();
        let mut road_names: std::collections::BTreeMap<&str, usize> = Default::default();
        for i in span.seg_start..=span.seg_end {
            let d = &prepared.data[i];
            for s in &d.stays {
                stay_total_secs += s.duration_secs();
                stay_count += 1;
            }
            for u in &d.u_turns {
                u_turn_places.push(nearest_landmark_name(self.registry, &u.point));
            }
            if let Some(e) = d.edge {
                *road_names.entry(self.net.edge(e).name.as_str()).or_insert(0) += 1;
            }
        }
        let road_name = road_names
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(a.0)))
            .map(|(n, _)| n.to_owned());
        PartitionFacts {
            from_name: self.registry.get(from).name.clone(),
            to_name: self.registry.get(to).name.clone(),
            road_name,
            stay_total_secs,
            stay_count,
            u_turn_places,
        }
    }
}

/// Replays a worker-local span tree into `o` via the determinism
/// contract: one `span_observed` per leaf, nested `replay_span` calls
/// for interior nodes, in the local report's first-seen (pipeline)
/// order. Names come from the worker report, so every replayed span is
/// already a registered stage name.
fn replay_stage_spans(o: &Recorder, nodes: &[SpanNode]) {
    for n in nodes {
        let total = std::time::Duration::from_secs_f64(n.total_ms.max(0.0) / 1e3);
        if n.children.is_empty() {
            o.span_observed(&n.name, total);
        } else {
            o.replay_span(&n.name, total, &[], |o| replay_stage_spans(o, &n.children));
        }
    }
}

/// Flattens a worker report's root spans into the per-stage millisecond
/// map an [`Exemplar`] carries (summing repeated stages).
fn stage_breakdown(nodes: &[SpanNode]) -> std::collections::BTreeMap<String, f64> {
    let mut out = std::collections::BTreeMap::new();
    for n in nodes {
        *out.entry(n.name.clone()).or_insert(0.0) += n.total_ms;
    }
    out
}

/// Convenience: does the summary mention feature `key` in any partition?
pub fn summary_mentions(summary: &Summary, key: &str) -> bool {
    summary.partitions.iter().any(|p| p.selected.iter().any(|s| s.key == key))
}

/// The set of feature keys mentioned anywhere in the summary — the unit the
/// paper's feature-frequency (FF) metric counts.
pub fn mentioned_keys(summary: &Summary) -> std::collections::BTreeSet<String> {
    summary.partitions.iter().flat_map(|p| p.selected.iter().map(|s| s.key.clone())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_papers_experimental_settings() {
        // Sec. VII-B: "we set the weight of the landmark significance in the
        // potential function as 0.5, the feature weight as 1 and the
        // irregular rate threshold for a selected feature as 0.2."
        let cfg = SummarizerConfig::default();
        assert_eq!(cfg.ca, 0.5);
        assert_eq!(cfg.eta, 0.2);
        assert!(cfg.extraction.hmm_matching);
    }

    #[test]
    fn error_messages_are_actionable() {
        let e = SummarizeError::InvalidK { k: 9, max: 4 };
        assert_eq!(e.to_string(), "cannot split 4 segment(s) into 9 partition(s)");
        let e: SummarizeError = stmaker_calibration::CalibrationError::TooFewLandmarks(1).into();
        assert!(e.to_string().contains("calibration failed"));
        assert!(e.to_string().contains("need at least 2"));
        let e = SummarizeError::ModelMismatch { model: 12, registry: 40 };
        assert_eq!(
            e.to_string(),
            "model was trained against a 12-landmark registry, got 40 landmarks"
        );
    }

    #[test]
    fn empty_model_serializes_and_parses() {
        let model = TrainedModel {
            popular: PopularRoutes::build(&[], PopularRouteConfig::default()),
            featmap: HistoricalFeatureMap::new(),
            n_trained: 0,
            registry_len: 0,
        };
        let json = model.to_json();
        let back = TrainedModel::from_json(&json).expect("round-trips");
        assert_eq!(back.n_trained, 0);
        assert_eq!(back.to_json(), json, "canonical form is stable");
        assert!(TrainedModel::from_json("{broken").is_err());
    }
}
