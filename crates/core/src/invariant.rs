//! Debug-build runtime invariant gates.
//!
//! The paper's pipeline is a chain of floating-point optimizations (DP
//! partition potentials, edit distances, irregular rates), and a NaN or a
//! malformed span produced early poisons every later stage silently. The
//! checks here make the contracts explicit and *executable*: each is a
//! `debug_assert`-backed gate wired into the hot paths of [`crate::partition`],
//! [`crate::irregular`], [`crate::similarity`], and [`crate::select`]. Release
//! builds compile them out entirely, so the paper-scale experiments pay
//! nothing.
//!
//! The same properties are re-stated distributionally by the proptest suite
//! (`tests/prop_invariants.rs` at the workspace root); this module is the
//! always-on (in debug) single-input version.

use crate::partition::PartitionSpan;

/// Gate: `value` must be a finite float. `what` names the quantity in the
/// panic message (e.g. `"partition potential"`).
#[inline]
pub fn check_finite(what: &str, value: f64) {
    debug_assert!(value.is_finite(), "{what} must be finite, got {value}");
}

/// Gate: an irregular rate Γ_f must be finite and non-negative (Sec. V
/// defines it as a weighted mean of absolute deviations).
#[inline]
pub fn check_irregular_rate(what: &str, gamma: f64) {
    debug_assert!(
        gamma.is_finite() && gamma >= 0.0,
        "irregular rate {what} must be finite and >= 0, got {gamma}"
    );
}

/// Gate: a similarity must lie in `[0, 1]` (Eq. (3) maps cosine through
/// `½(cos + 1)`).
#[inline]
pub fn check_similarity(s: f64) {
    debug_assert!(
        s.is_finite() && (-1e-12..=1.0 + 1e-12).contains(&s),
        "similarity must lie in [0, 1], got {s}"
    );
}

/// Gate: partition spans must be non-empty, contiguous, and exactly cover
/// `[0, n_segs)` (Definition 6: a partition is an ordered, gap-free split of
/// the segment sequence).
#[inline]
pub fn check_spans_cover(spans: &[PartitionSpan], n_segs: usize) {
    #[cfg(debug_assertions)]
    {
        if n_segs == 0 {
            debug_assert!(spans.is_empty(), "zero segments admit only the empty partition");
            return;
        }
        debug_assert!(!spans.is_empty(), "{n_segs} segments need at least one span");
        let mut expected_start = 0usize;
        for s in spans {
            debug_assert_eq!(
                s.seg_start, expected_start,
                "spans must be contiguous: expected start {expected_start}, got {s:?}"
            );
            debug_assert!(s.seg_end >= s.seg_start, "span must be non-empty: {s:?}");
            expected_start = s.seg_end + 1;
        }
        debug_assert_eq!(
            expected_start,
            n_segs,
            "spans must cover [0, {n_segs}), last ended at {}",
            expected_start.saturating_sub(1)
        );
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (spans, n_segs);
    }
}

/// Gate: the k-constrained DP optimum can never beat the unconstrained
/// optimum (monotonicity of the relaxation): `potential_k >= potential_free`
/// up to float slack. Both must be finite.
#[inline]
pub fn check_k_potential_dominates(potential_k: f64, potential_free: f64) {
    check_finite("k-constrained partition potential", potential_k);
    check_finite("unconstrained partition potential", potential_free);
    debug_assert!(
        potential_k >= potential_free - 1e-9,
        "k-constrained potential {potential_k} beats the unconstrained optimum \
         {potential_free}: the DP is inconsistent"
    );
}

/// Gate: feature edit distance bounds (Sec. V-A). With insert/delete cost 1
/// the distance is at least the length difference; substitutions cost at most
/// 2 for normalized numeric values and 1 for categorical codes, so `m + n`
/// bounds it above in every case.
#[inline]
pub fn check_edit_distance_bounds(d: f64, m: usize, n: usize) {
    #[cfg(debug_assertions)]
    {
        let diff = m.abs_diff(n) as f64; // cast-ok: sequence lengths are small
        let total = (m + n) as f64; // cast-ok: sequence lengths are small
        debug_assert!(
            d.is_finite() && d >= diff - 1e-9 && d <= total + 1e-9,
            "edit distance {d} violates bounds [|{m}-{n}|, {m}+{n}]"
        );
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (d, m, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(a: usize, b: usize) -> PartitionSpan {
        PartitionSpan { seg_start: a, seg_end: b }
    }

    #[test]
    fn accepts_valid_inputs() {
        check_finite("x", 1.5);
        check_irregular_rate("gamma", 0.0);
        check_similarity(1.0);
        check_spans_cover(&[span(0, 2), span(3, 3)], 4);
        check_spans_cover(&[], 0);
        check_k_potential_dominates(-1.0, -2.0);
        check_edit_distance_bounds(2.0, 3, 5);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn rejects_nan_potential() {
        check_finite("partition potential", f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn rejects_negative_rate() {
        check_irregular_rate("gamma", -0.25);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn rejects_gapped_spans() {
        check_spans_cover(&[span(0, 1), span(3, 4)], 5);
    }

    #[test]
    #[should_panic(expected = "cover")]
    fn rejects_short_cover() {
        check_spans_cover(&[span(0, 1)], 4);
    }

    #[test]
    #[should_panic(expected = "DP is inconsistent")]
    fn rejects_k_beating_unconstrained() {
        check_k_potential_dominates(-5.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "violates bounds")]
    fn rejects_edit_distance_below_length_gap() {
        check_edit_distance_bounds(0.5, 1, 5);
    }
}
