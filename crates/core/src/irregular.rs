//! Irregular rates Γ_f — the interestingness measure behind feature
//! selection (Sec. V).
//!
//! A feature is worth a sentence only when it deviates from the *common
//! behaviour* on the same route:
//!
//! * routing features compare the partition's per-segment value sequence
//!   against the popular route's per-hop sequence with an edit-distance-like
//!   measure ([`routing_irregular_rate`], Sec. V-A);
//! * moving features compare per-segment values against the historical
//!   feature map's per-hop regular values ([`moving_irregular_rate`],
//!   Sec. V-B).
//!
//! **Normalization note.** For moving features, both the observed and the
//! regular sequence normalize by one common constant — the paper's "biggest
//! feature value among all segments of the partition", i.e. the *observed*
//! maximum. See [`moving_irregular_rate`]'s docs and DESIGN.md §5 for why
//! this asymmetric choice reproduces the paper's Fig. 8 and Fig. 10(b)
//! behaviour. Routing features normalize each numeric sequence by its own
//! maximum before the edit distance, as Sec. V-A specifies.

use crate::feature::FeatureScale;

/// Substitution cost between two (already normalized, for numeric) values —
/// Eq. (6)/(7) of the paper.
fn subst_cost(a: f64, b: f64, scale: FeatureScale) -> f64 {
    match scale {
        FeatureScale::Numeric => (a - b).abs(),
        FeatureScale::Categorical => {
            if a == b {
                0.0
            } else {
                1.0
            }
        }
    }
}

/// Normalizes a sequence by its own maximum absolute value into a reused
/// buffer (identically-zero sequences pass through unchanged).
fn norm_seq_into(values: &[f64], out: &mut Vec<f64>) {
    out.clear();
    let max = values.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    if max > 0.0 {
        out.extend(values.iter().map(|v| v / max));
    } else {
        out.extend_from_slice(values);
    }
}

/// Reusable buffers for the Sec. V hot loop: the two rolling DP rows of
/// [`feature_edit_distance_with`] plus the normalized sequence copies that
/// [`routing_irregular_rate_with`] feeds into it. The serving path computes
/// an edit distance per feature per partition per trip; one scratch per
/// worker (thread-local in `summarize_batch`) turns four heap allocations
/// per call into none once the buffers reach steady-state capacity.
#[derive(Debug, Default)]
pub struct EditScratch {
    prev: Vec<f64>,
    cur: Vec<f64>,
    norm_a: Vec<f64>,
    norm_b: Vec<f64>,
}

/// The edit distance of Sec. V-A between two feature-value sequences:
/// insert/delete cost 1, substitution per `subst_cost`. Allocates its DP
/// rows per call; hot paths should hold an [`EditScratch`] and call
/// [`feature_edit_distance_with`].
pub fn feature_edit_distance(a: &[f64], b: &[f64], scale: FeatureScale) -> f64 {
    feature_edit_distance_with(a, b, scale, &mut EditScratch::default())
}

/// [`feature_edit_distance`] with caller-provided DP rows.
pub fn feature_edit_distance_with(
    a: &[f64],
    b: &[f64],
    scale: FeatureScale,
    scratch: &mut EditScratch,
) -> f64 {
    let (m, n) = (a.len(), b.len());
    if m == 0 {
        return n as f64; // cast-ok: sequence length, exact well below 2^53
    }
    if n == 0 {
        return m as f64; // cast-ok: sequence length, exact well below 2^53
    }
    // Rolling one-row DP over reused rows.
    let EditScratch { prev, cur, .. } = scratch;
    prev.clear();
    // cast-ok: indel costs are small integer counts, exact as f64
    prev.extend((0..=n).map(|j| j as f64));
    cur.clear();
    cur.resize(n + 1, 0.0);
    for i in 1..=m {
        cur[0] = i as f64; // cast-ok: indel cost, small integer count
        for j in 1..=n {
            let sub = prev[j - 1] + subst_cost(a[i - 1], b[j - 1], scale);
            let del = prev[j] + 1.0;
            let ins = cur[j - 1] + 1.0;
            cur[j] = sub.min(del).min(ins);
        }
        std::mem::swap(prev, cur);
    }
    crate::invariant::check_edit_distance_bounds(prev[n], m, n);
    prev[n]
}

/// Sec. V-A: Γ_f(TP) for a routing feature.
///
/// `tp_values` are the partition's per-segment raw feature values; `pr_values`
/// the popular route's per-hop values. Numeric sequences are normalized by
/// their own maxima before the edit distance; categorical sequences compare
/// raw codes.
pub fn routing_irregular_rate(
    tp_values: &[f64],
    pr_values: &[f64],
    scale: FeatureScale,
    weight: f64,
) -> f64 {
    routing_irregular_rate_with(tp_values, pr_values, scale, weight, &mut EditScratch::default())
}

/// [`routing_irregular_rate`] with caller-provided scratch buffers for the
/// normalized copies and DP rows.
pub fn routing_irregular_rate_with(
    tp_values: &[f64],
    pr_values: &[f64],
    scale: FeatureScale,
    weight: f64,
    scratch: &mut EditScratch,
) -> f64 {
    assert!(weight > 0.0, "weights must be positive");
    let denom = tp_values.len().max(pr_values.len());
    if denom == 0 {
        return 0.0;
    }
    let d = match scale {
        FeatureScale::Numeric => {
            // Detach the normalization buffers so the DP rows inside the
            // same scratch stay borrowable (moves, not allocations).
            let mut na = std::mem::take(&mut scratch.norm_a);
            let mut nb = std::mem::take(&mut scratch.norm_b);
            norm_seq_into(tp_values, &mut na);
            norm_seq_into(pr_values, &mut nb);
            let d = feature_edit_distance_with(&na, &nb, scale, scratch);
            scratch.norm_a = na;
            scratch.norm_b = nb;
            d
        }
        FeatureScale::Categorical => {
            feature_edit_distance_with(tp_values, pr_values, scale, scratch)
        }
    };
    let gamma = weight * d / denom as f64; // cast-ok: sequence length, exact well below 2^53
    crate::invariant::check_irregular_rate("routing", gamma);
    gamma
}

/// Sec. V-B: Γ_f(TP) for a moving feature.
///
/// `regular_values[t]` is the historical feature map's `r_{l_t → l_{t+1}}`
/// for the partition's `t`-th segment (`None` where no history exists; such
/// segments are skipped and the mean is over the compared segments).
///
/// Both sequences normalize by one *common* constant — per the paper, "the
/// biggest feature value among all segments of the partition", i.e. the
/// *observed* maximum (falling back to the historical maximum only when the
/// observed sequence is identically zero). Two consequences, both matching
/// the paper's reported behaviour:
///
/// * a localized anomaly (one stay point, one jammed segment) weighs *more*
///   inside a short partition than inside a long one — the k-trend of
///   Fig. 10(b);
/// * the measure is asymmetric: driving slower than history inflates Γ
///   (history exceeds the observed maximum), while a uniformly fast night
///   trip deflates it — which keeps night speed FF low in Fig. 8, exactly
///   as the paper reports.
pub fn moving_irregular_rate(
    tp_values: &[f64],
    regular_values: &[Option<f64>],
    weight: f64,
) -> f64 {
    assert!(weight > 0.0, "weights must be positive");
    assert_eq!(tp_values.len(), regular_values.len(), "one regular value per partition segment");
    // Fold the known-history max and count in one pass — no intermediate
    // `known` vector (this runs per moving feature per partition per trip).
    let mut reg_max = 0.0f64;
    let mut compared = 0usize;
    for r in regular_values.iter().flatten() {
        reg_max = reg_max.max(r.abs());
        compared += 1;
    }
    if compared == 0 {
        return 0.0;
    }
    let tp_max = tp_values.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let constant = if tp_max > 0.0 { tp_max } else { reg_max };
    if constant == 0.0 {
        return 0.0; // feature identically zero both observed and historically
    }
    let mut sum = 0.0;
    for (t, r) in regular_values.iter().enumerate() {
        let Some(r) = r else { continue };
        sum += (tp_values[t] - r).abs() / constant;
    }
    let gamma = weight * sum / compared as f64; // cast-ok: segment count, exact well below 2^53
    crate::invariant::check_irregular_rate("moving", gamma);
    gamma
}

#[cfg(test)]
mod tests {
    use super::*;

    const NUM: FeatureScale = FeatureScale::Numeric;
    const CAT: FeatureScale = FeatureScale::Categorical;

    #[test]
    fn edit_distance_identical_is_zero() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(feature_edit_distance(&a, &a, NUM), 0.0);
        assert_eq!(feature_edit_distance(&a, &a, CAT), 0.0);
    }

    #[test]
    fn edit_distance_empty_cases() {
        assert_eq!(feature_edit_distance(&[], &[1.0, 2.0], NUM), 2.0);
        assert_eq!(feature_edit_distance(&[1.0], &[], NUM), 1.0);
        assert_eq!(feature_edit_distance(&[], &[], NUM), 0.0);
    }

    #[test]
    fn edit_distance_categorical_counts_mismatches() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 5.0, 3.0];
        assert_eq!(feature_edit_distance(&a, &b, CAT), 1.0);
        let c = [4.0, 5.0, 6.0];
        assert_eq!(feature_edit_distance(&a, &c, CAT), 3.0);
    }

    #[test]
    fn edit_distance_prefers_indel_over_expensive_subst() {
        // Aligning [0,1] vs [1]: deleting the 0 (cost 1) vs substituting —
        // both end at 1; with [0, 1] vs [0.5]: subst(0,0.5)+del(1) = 1.5 vs
        // del(0)+subst(1,0.5) = 1.5 vs ... minimum 1.5.
        let d = feature_edit_distance(&[0.0, 1.0], &[0.5], NUM);
        assert!((d - 1.5).abs() < 1e-12, "{d}");
    }

    #[test]
    fn edit_distance_length_difference_lower_bound() {
        let a = [1.0; 7];
        let b = [1.0; 3];
        assert_eq!(feature_edit_distance(&a, &b, NUM), 4.0);
    }

    #[test]
    fn routing_rate_same_route_is_zero() {
        let tp = [3.0, 3.0, 5.0];
        assert_eq!(routing_irregular_rate(&tp, &tp, CAT, 1.0), 0.0);
        assert_eq!(routing_irregular_rate(&tp, &tp, NUM, 1.0), 0.0);
    }

    #[test]
    fn routing_rate_disjoint_categorical_is_weight() {
        // Completely different grades on every hop, same length.
        let tp = [1.0, 1.0, 1.0];
        let pr = [5.0, 5.0, 5.0];
        assert_eq!(routing_irregular_rate(&tp, &pr, CAT, 1.0), 1.0);
        assert_eq!(routing_irregular_rate(&tp, &pr, CAT, 2.0), 2.0);
    }

    #[test]
    fn routing_rate_numeric_scale_invariant() {
        // TP uses roads twice as wide, in the same pattern: after per-sequence
        // normalization the profiles coincide → regular.
        let tp = [20.0, 30.0, 20.0];
        let pr = [10.0, 15.0, 10.0];
        assert!(routing_irregular_rate(&tp, &pr, NUM, 1.0) < 1e-12);
        // A genuinely different *shape* is irregular.
        let pr2 = [10.0, 10.0, 10.0];
        assert!(routing_irregular_rate(&tp, &pr2, NUM, 1.0) > 0.1);
    }

    #[test]
    fn routing_rate_normalized_by_longer_sequence() {
        let tp = [1.0, 2.0];
        let pr = [1.0, 2.0, 3.0, 4.0];
        let g = routing_irregular_rate(&tp, &pr, CAT, 1.0);
        assert!(g <= 1.0);
        assert!(g > 0.0);
    }

    #[test]
    fn routing_rate_empty_is_zero() {
        assert_eq!(routing_irregular_rate(&[], &[], NUM, 1.0), 0.0);
    }

    #[test]
    fn moving_rate_matching_history_is_zero() {
        let tp = [40.0, 60.0, 50.0];
        let reg = [Some(40.0), Some(60.0), Some(50.0)];
        assert!(moving_irregular_rate(&tp, &reg, 1.0) < 1e-12);
    }

    #[test]
    fn moving_rate_mild_uniform_speedup_stays_under_default_eta() {
        // Night trip on mixed-grade roads, ~15% faster everywhere: the
        // normalized deviation averages below the paper's η = 0.2 because
        // slower-grade segments contribute small absolute differences.
        let tp = [69.0, 46.0, 29.0];
        let reg = [Some(60.0), Some(40.0), Some(25.0)];
        let g = moving_irregular_rate(&tp, &reg, 1.0);
        assert!(g < 0.2, "{g}");
    }

    #[test]
    fn moving_rate_localized_anomaly_weighs_more_in_short_partitions() {
        // One stay point: alone in a 2-segment partition vs diluted in 8.
        let short_tp = [1.0, 0.0];
        let short_reg = [Some(0.1), Some(0.1)];
        let long_tp = [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let long_reg = [Some(0.1); 8];
        let g_short = moving_irregular_rate(&short_tp, &short_reg, 1.0);
        let g_long = moving_irregular_rate(&long_tp, &long_reg, 1.0);
        assert!(g_short > g_long, "{g_short} vs {g_long}");
        assert!(g_short > 0.2, "short partition must clear the default η: {g_short}");
    }

    #[test]
    fn moving_rate_localized_slowdown_is_irregular() {
        // Jam on the middle segment only.
        let tp = [60.0, 15.0, 60.0];
        let reg = [Some(60.0), Some(60.0), Some(60.0)];
        let g = moving_irregular_rate(&tp, &reg, 1.0);
        assert!(g > 0.2, "{g}");
    }

    #[test]
    fn moving_rate_skips_unknown_history() {
        let tp = [60.0, 15.0, 60.0];
        let reg = [Some(60.0), None, Some(60.0)];
        // Only the regular segments compare → no deviation visible.
        let g = moving_irregular_rate(&tp, &reg, 1.0);
        assert!(g < 1e-12, "{g}");
        // All-unknown history → 0 by definition.
        assert_eq!(moving_irregular_rate(&tp, &[None, None, None], 1.0), 0.0);
    }

    #[test]
    fn moving_rate_scales_with_weight() {
        let tp = [60.0, 0.0];
        let reg = [Some(60.0), Some(60.0)];
        let g1 = moving_irregular_rate(&tp, &reg, 1.0);
        let g3 = moving_irregular_rate(&tp, &reg, 3.0);
        assert!((g3 - 3.0 * g1).abs() < 1e-12);
    }

    #[test]
    fn moving_rate_count_features_zero_vs_history() {
        // Stay-point counts: trip has none, history averages 2 per hop —
        // that is *regular driving*, and indeed Γ is the deviation of a zero
        // profile vs flat history = 1.0 per hop… which would be wrong. The
        // zero sequence normalizes to itself (all zeros) and history to 1s,
        // giving Γ = 1. Selection guards this case upstream by only flagging
        // count features when the *observed* count is above history (see
        // select.rs); here we just pin the raw formula's value.
        let tp = [0.0, 0.0];
        let reg = [Some(2.0), Some(2.0)];
        assert!((moving_irregular_rate(&tp, &reg, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one regular value per partition segment")]
    fn moving_rate_rejects_mismatched_lengths() {
        moving_irregular_rate(&[1.0], &[Some(1.0), Some(2.0)], 1.0);
    }
}
