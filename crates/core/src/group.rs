//! Trajectory-group summarization — the paper's first future-work item
//! (Sec. IX: "we expect this work will trigger several interesting open
//! problems in this direction, such as summarization of trajectory group").
//!
//! A group summary answers the dispatcher's question "what happened on this
//! corridor this morning?": summarize every member trajectory, then
//! aggregate *which* irregularities recur and *how often*, and phrase the
//! recurring ones in one paragraph.

use crate::summarize::{Summarizer, Summary};
use std::collections::HashMap;
use stmaker_poi::LandmarkId;
use stmaker_trajectory::RawTrajectory;

/// A named endpoint pair: the group's modal (source, destination) landmarks.
pub type ModalOd = ((LandmarkId, String), (LandmarkId, String));

/// How often one feature was flagged across the group.
#[derive(Debug, Clone)]
pub struct GroupFeatureStat {
    /// Feature key.
    pub key: String,
    /// Human-readable label.
    pub label: String,
    /// Fraction of summarized trajectories whose summary mentions the
    /// feature, `(0, 1]`.
    pub fraction: f64,
    /// Aggregate observed value across the mentioning summaries: mean of
    /// partition aggregates for numeric features, modal category for
    /// categorical ones.
    pub mean_observed: f64,
}

/// The summary of a trajectory group.
#[derive(Debug, Clone)]
pub struct GroupSummary {
    /// The rendered paragraph.
    pub text: String,
    /// Trajectories given.
    pub n_trajectories: usize,
    /// Trajectories successfully summarized (calibration can drop some).
    pub n_summarized: usize,
    /// The group's modal source/destination landmarks with display names.
    pub modal_od: Option<ModalOd>,
    /// Recurring features at or above the share threshold, most common
    /// first.
    pub recurring: Vec<GroupFeatureStat>,
    /// The individual summaries (for drill-down).
    pub members: Vec<Summary>,
}

/// Errors from group summarization.
#[derive(Debug)]
pub enum GroupError {
    /// No member trajectory could be summarized.
    NothingSummarizable,
    /// `min_share` is outside `[0, 1]` (or NaN).
    InvalidMinShare(f64),
}

impl std::fmt::Display for GroupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupError::NothingSummarizable => write!(f, "no trajectory in the group calibrated"),
            GroupError::InvalidMinShare(s) => {
                write!(f, "min_share must be in [0, 1], got {s}")
            }
        }
    }
}

impl std::error::Error for GroupError {}

impl Summarizer<'_> {
    /// Summarizes a group of trajectories: each member individually, then an
    /// aggregate paragraph of the irregularities recurring in at least
    /// `min_share` of the group (e.g. 0.2 = a fifth of the trips).
    pub fn summarize_group(
        &self,
        trips: &[RawTrajectory],
        min_share: f64,
    ) -> Result<GroupSummary, GroupError> {
        // `contains` is false for NaN, so the one check covers it too.
        if !(0.0..=1.0).contains(&min_share) {
            return Err(GroupError::InvalidMinShare(min_share));
        }
        let members: Vec<Summary> =
            self.summarize_batch(trips).into_iter().filter_map(Result::ok).collect();
        if members.is_empty() {
            return Err(GroupError::NothingSummarizable);
        }
        let n = members.len();

        // Per-feature: how many members mention it, and with what values.
        let mut mention_count: HashMap<&str, usize> = HashMap::new();
        let mut observed_values: HashMap<&str, Vec<f64>> = HashMap::new();
        for m in &members {
            let mut seen: Vec<&str> = Vec::new();
            for p in &m.partitions {
                for s in &p.selected {
                    let key = self
                        .features()
                        .index_of(&s.key)
                        .map(|i| self.features().get(i).key())
                        .unwrap_or(s.key.as_str());
                    if !seen.contains(&key) {
                        seen.push(key);
                    }
                    observed_values.entry(key).or_default().push(s.observed);
                }
            }
            for key in seen {
                *mention_count.entry(key).or_insert(0) += 1;
            }
        }

        let mut recurring: Vec<GroupFeatureStat> = Vec::new();
        for f in self.features().features() {
            let key = f.key();
            let count = mention_count.get(key).copied().unwrap_or(0);
            let fraction = count as f64 / n as f64;
            if count > 0 && fraction >= min_share {
                // Mean for numeric values; modal category for categorical
                // ones (averaging grade codes would name a road grade that
                // nobody drove).
                let agg = crate::select::aggregate(&observed_values[key], f.scale()).unwrap_or(0.0);
                recurring.push(GroupFeatureStat {
                    key: key.to_owned(),
                    label: f.label().to_owned(),
                    fraction,
                    mean_observed: agg,
                });
            }
        }
        recurring.sort_by(|a, b| {
            crate::select::desc_nan_last(a.fraction, b.fraction).then(a.key.cmp(&b.key))
        });

        // Modal origin/destination pair.
        let mut od_counts: HashMap<(LandmarkId, LandmarkId), usize> = HashMap::new();
        for m in &members {
            let (Some(first), Some(last)) = (m.partitions.first(), m.partitions.last()) else {
                continue; // a summary without partitions has no endpoints
            };
            *od_counts.entry((first.from, last.to)).or_insert(0) += 1;
        }
        // lint: ordered — max_by applies a total order (count, then OD key) so the reduction is order-free
        let modal_od = od_counts.iter().max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0))).map(
            |((from, to), _)| {
                let find_name = |lm: LandmarkId| {
                    members
                        .iter()
                        .flat_map(|m| m.partitions.iter())
                        .find_map(|p| {
                            if p.from == lm {
                                Some(p.from_name.clone())
                            } else if p.to == lm {
                                Some(p.to_name.clone())
                            } else {
                                None
                            }
                        })
                        .unwrap_or_default()
                };
                ((*from, find_name(*from)), (*to, find_name(*to)))
            },
        );

        let text = render_group_text(n, &modal_od, &recurring);
        Ok(GroupSummary {
            text,
            n_trajectories: trips.len(),
            n_summarized: n,
            modal_od,
            recurring,
            members,
        })
    }
}

fn render_group_text(
    n: usize,
    modal_od: &Option<ModalOd>,
    recurring: &[GroupFeatureStat],
) -> String {
    let trips_noun = if n == 1 { "trip" } else { "trips" };
    let mut text = match modal_od {
        Some(((_, from), (_, to))) if n > 1 => {
            format!("Across {n} {trips_noun} (most commonly from the {from} to the {to})")
        }
        _ => format!("Across {n} {trips_noun}"),
    };
    if recurring.is_empty() {
        text.push_str(", traffic flowed smoothly with no recurring irregularities.");
        return text;
    }
    let phrases: Vec<String> = recurring
        .iter()
        .map(|r| format!("{:.0}% were flagged for {}", r.fraction * 100.0, r.label))
        .collect();
    text.push_str(": ");
    match phrases.split_last() {
        Some((only, [])) => text.push_str(only),
        Some((last, head)) => {
            text.push_str(&head.join(", "));
            text.push_str(", and ");
            text.push_str(last);
        }
        None => {} // unreachable in practice: the empty case returned above
    }
    text.push('.');
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_smooth_group() {
        let t = render_group_text(5, &None, &[]);
        assert_eq!(t, "Across 5 trips, traffic flowed smoothly with no recurring irregularities.");
    }

    #[test]
    fn nan_fractions_rank_last_without_panic() {
        // Regression: the recurring-feature sort used
        // `partial_cmp(..).unwrap()` and panicked on NaN.
        let mk = |key: &str, fraction: f64| GroupFeatureStat {
            key: key.into(),
            label: key.into(),
            fraction,
            mean_observed: 0.0,
        };
        let mut recurring = vec![mk("a", 0.2), mk("b", f64::NAN), mk("c", 0.8)];
        recurring.sort_by(|a, b| {
            crate::select::desc_nan_last(a.fraction, b.fraction).then(a.key.cmp(&b.key))
        });
        let keys: Vec<&str> = recurring.iter().map(|r| r.key.as_str()).collect();
        assert_eq!(keys, ["c", "a", "b"], "the NaN entry must sort last");
    }

    #[test]
    fn render_lists_recurring_features() {
        let stats = vec![
            GroupFeatureStat {
                key: "speed".into(),
                label: "speed".into(),
                fraction: 0.62,
                mean_observed: 31.0,
            },
            GroupFeatureStat {
                key: "stay_points".into(),
                label: "stay points".into(),
                fraction: 0.41,
                mean_observed: 0.8,
            },
        ];
        let od = Some((
            (stmaker_poi::LandmarkId(0), "North Station".to_string()),
            (stmaker_poi::LandmarkId(1), "Grand Mall".to_string()),
        ));
        let t = render_group_text(20, &od, &stats);
        assert!(t.contains("Across 20 trips"));
        assert!(t.contains("North Station"));
        assert!(t.contains("62% were flagged for speed"));
        assert!(t.contains("and 41% were flagged for stay points."), "{t}");
    }
}
