//! Per-segment extraction context and the extraction pipeline.
//!
//! Feature extractors need three ingredients per trajectory segment
//! (Definition 4): the raw GPS samples falling in the segment's time window
//! (Sec. III-B: "the algorithms extracting moving features need to be
//! applied on the sample-based trajectory instead of the symbolic
//! trajectory"), the dominant road edge it was matched to (for routing
//! features), and precomputed stay/U-turn detections (shared between the
//! counting features and the summary by-products).

use stmaker_geo::GeoPoint;
use stmaker_mapmatch::{dominant_edge, MapMatcher};
use stmaker_poi::{LandmarkId, LandmarkRegistry};
use stmaker_road::{EdgeId, RoadEdge, RoadNetwork};
use stmaker_trajectory::{
    detect_stay_points_in, detect_u_turns_in, RawPoint, RawView, StayPoint, StayPointParams,
    SymbolicTrajectory, Timestamp, UTurn, UTurnParams,
};

/// Everything an extractor may consult about one segment.
pub struct SegmentContext<'a> {
    /// Landmark the segment departs from.
    pub from_landmark: LandmarkId,
    /// Landmark the segment arrives at.
    pub to_landmark: LandmarkId,
    /// Departure time.
    pub from_t: Timestamp,
    /// Arrival time.
    pub to_t: Timestamp,
    /// Raw GPS samples within `[from_t, to_t]`.
    pub raw_points: &'a [RawPoint],
    /// Dominant matched road edge, if map matching found one.
    pub edge: Option<&'a RoadEdge>,
    /// Stay points detected within the segment window.
    pub stays: &'a [StayPoint],
    /// U-turns detected within the segment window.
    pub u_turns: &'a [UTurn],
    /// Straight-line distance between the segment's landmarks, metres
    /// (fallback for speed when the raw window is too sparse).
    pub straight_dist_m: f64,
}

impl SegmentContext<'_> {
    /// Elapsed seconds on this segment.
    pub fn duration_secs(&self) -> i64 {
        self.from_t.delta_secs(&self.to_t)
    }
}

/// Owned per-segment extraction artefacts (contexts borrow from this).
#[derive(Debug, Clone)]
pub struct SegmentData {
    /// Range into the raw trajectory's sample array.
    pub raw_range: (usize, usize),
    /// Dominant matched edge.
    pub edge: Option<EdgeId>,
    /// Detected stays within the segment.
    pub stays: Vec<StayPoint>,
    /// Detected U-turns within the segment.
    pub u_turns: Vec<UTurn>,
    /// Straight-line landmark-to-landmark distance, metres.
    pub straight_dist_m: f64,
}

/// Detection parameters shared by the pipeline.
#[derive(Debug, Clone, Copy)]
pub struct ExtractionParams {
    pub stay: StayPointParams,
    pub uturn: UTurnParams,
    /// Use the Viterbi HMM matcher (default) or plain nearest-edge matching
    /// for routing features. Exposed for the matching ablation experiment.
    pub hmm_matching: bool,
}

impl Default for ExtractionParams {
    fn default() -> Self {
        Self { stay: StayPointParams::default(), uturn: UTurnParams::default(), hmm_matching: true }
    }
}

/// Computes [`SegmentData`] for every segment of `symbolic`, attributing raw
/// samples by time window and map matching each window to its dominant edge.
///
/// Adjacent segment windows share their boundary sample (both ends are
/// inclusive so speed/distance sums see the full hop). A stay point cannot
/// be double-counted across the shared sample (a stay needs ≥ 120 s of
/// dwell, far more than one sample), but a U-turn whose pivot lands exactly
/// on a boundary sample may in principle register in both neighbouring
/// segments; at default thresholds this needs the reversal to complete
/// within one sampling interval of a landmark and has not been observed in
/// the generated corpora.
pub fn extract_segment_data(
    raw: RawView<'_>,
    symbolic: &SymbolicTrajectory,
    registry: &LandmarkRegistry,
    matcher: &MapMatcher<'_>,
    params: ExtractionParams,
) -> Vec<SegmentData> {
    // Match the whole trajectory once; segment windows slice the result.
    let matched = if params.hmm_matching {
        matcher.match_hmm(raw.points())
    } else {
        matcher.match_nearest(raw.points())
    };

    symbolic
        .segments()
        .iter()
        .map(|seg| {
            let (lo, hi) = raw.time_range_indices(seg.from.t, seg.to.t);
            let slice = &raw.points()[lo..hi];

            let edge = dominant_edge(&matched[lo..hi]);
            let stays = detect_stay_points_in(slice, params.stay);
            let u_turns = detect_u_turns_in(slice, params.uturn);
            let a = registry.get(seg.from.landmark).point;
            let b = registry.get(seg.to.landmark).point;
            SegmentData {
                raw_range: (lo, hi),
                edge,
                stays,
                u_turns,
                straight_dist_m: a.haversine_m(&b),
            }
        })
        .collect()
}

/// Builds a borrowed [`SegmentContext`] for segment `i`.
pub fn segment_context<'a>(
    raw: RawView<'a>,
    symbolic: &SymbolicTrajectory,
    data: &'a [SegmentData],
    net: &'a RoadNetwork,
    i: usize,
) -> SegmentContext<'a> {
    let seg = symbolic.segment(i);
    let d = &data[i];
    SegmentContext {
        from_landmark: seg.from.landmark,
        to_landmark: seg.to.landmark,
        from_t: seg.from.t,
        to_t: seg.to.t,
        raw_points: &raw.points()[d.raw_range.0..d.raw_range.1],
        edge: d.edge.map(|e| net.edge(e)),
        stays: &d.stays,
        u_turns: &d.u_turns,
        straight_dist_m: d.straight_dist_m,
    }
}

/// Nearest landmark name to a point — used to phrase U-turn locations
/// ("conducting one U-turn at Zhichun Road").
pub fn nearest_landmark_name(registry: &LandmarkRegistry, p: &GeoPoint) -> String {
    registry
        .nearest(p)
        .map(|(id, _)| registry.get(id).name.clone())
        .unwrap_or_else(|| "an unnamed place".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmaker_mapmatch::MatchParams;
    use stmaker_poi::{Landmark, LandmarkKind};
    use stmaker_road::{Direction, RoadGrade};
    use stmaker_trajectory::RawTrajectory;

    fn base() -> GeoPoint {
        GeoPoint::new(39.9, 116.4)
    }

    /// One straight road east with landmarks at 0 m, 1 km, 2 km.
    fn fixture() -> (RoadNetwork, LandmarkRegistry, RawTrajectory, SymbolicTrajectory) {
        let mut net = RoadNetwork::new();
        let a = net.add_node(base());
        let b = net.add_node(base().destination(90.0, 2_000.0));
        net.add_edge(a, b, RoadGrade::National, 16.0, Direction::TwoWay, "East Rd");

        let lms: Vec<Landmark> = (0..3)
            .map(|i| Landmark {
                id: LandmarkId(i),
                point: base().destination(90.0, 1_000.0 * i as f64),
                name: format!("L{i}"),
                kind: LandmarkKind::TurningPoint,
                significance: 0.5,
            })
            .collect();
        let registry = LandmarkRegistry::from_landmarks(lms);

        // 100 m per 10 s.
        let raw = RawTrajectory::new(
            (0..=20)
                .map(|i| RawPoint {
                    point: base().destination(90.0, 100.0 * i as f64),
                    t: Timestamp(10 * i as i64),
                })
                .collect(),
        );
        let symbolic = SymbolicTrajectory::new(vec![
            stmaker_trajectory::SymbolicPoint { landmark: LandmarkId(0), t: Timestamp(0) },
            stmaker_trajectory::SymbolicPoint { landmark: LandmarkId(1), t: Timestamp(100) },
            stmaker_trajectory::SymbolicPoint { landmark: LandmarkId(2), t: Timestamp(200) },
        ]);
        (net, registry, raw, symbolic)
    }

    #[test]
    fn segment_data_attributes_samples_and_edges() {
        let (net, registry, raw, symbolic) = fixture();
        let matcher = MapMatcher::new(&net, MatchParams::default());
        let data = extract_segment_data(
            raw.view(),
            &symbolic,
            &registry,
            &matcher,
            ExtractionParams::default(),
        );
        assert_eq!(data.len(), 2);
        // First segment: samples t ∈ [0, 100] → 11 samples.
        assert_eq!(data[0].raw_range, (0, 11));
        // Second: t ∈ [100, 200] → samples 10..=20.
        assert_eq!(data[1].raw_range, (10, 21));
        assert!(data[0].edge.is_some());
        assert!((data[0].straight_dist_m - 1_000.0).abs() < 2.0);
        assert!(data.iter().all(|d| d.stays.is_empty() && d.u_turns.is_empty()));
    }

    #[test]
    fn context_borrows_line_up() {
        let (net, registry, raw, symbolic) = fixture();
        let matcher = MapMatcher::new(&net, MatchParams::default());
        let data = extract_segment_data(
            raw.view(),
            &symbolic,
            &registry,
            &matcher,
            ExtractionParams::default(),
        );
        let ctx = segment_context(raw.view(), &symbolic, &data, &net, 1);
        assert_eq!(ctx.from_landmark, LandmarkId(1));
        assert_eq!(ctx.to_landmark, LandmarkId(2));
        assert_eq!(ctx.duration_secs(), 100);
        assert_eq!(ctx.raw_points.len(), 11);
        assert_eq!(ctx.edge.unwrap().name, "East Rd");
    }

    #[test]
    fn nearest_landmark_name_resolves() {
        let (_, registry, _, _) = fixture();
        let name = nearest_landmark_name(&registry, &base().destination(90.0, 950.0));
        assert_eq!(name, "L1");
    }
}
