//! Trajectory partitioning: the CRF potential of Eq. (2) minimized by
//! dynamic programming — Eq. (4) for the unconstrained optimum and
//! Algorithm 1 for the k-partition.
//!
//! The chain CRF of Sec. IV assigns each segment a tag; consecutive
//! segments either share a tag (contributing `−S(TSᵢ, TSᵢ₊₁)` to the
//! potential) or the boundary landmark starts a new partition (contributing
//! `−Ca · lᵢ.s`). Minimizing the summed potential maximizes Pr(X | T) of
//! Eq. (1).
//!
//! With `n` segments there are `n − 1` boundaries; boundary `b` sits between
//! segments `b` and `b + 1` and its landmark is symbolic point `b + 1`.
//!
//! As printed, the paper's Algorithm 1 has two off-by-one defects (the inner
//! loop bound `j = 1 → i − 1` makes state `(i, i)` unreachable through the
//! recurrence, and the `E[i][0]` initialization means column `j` holds
//! `j + 1` partitions while the return indexes `E[n−1][k−1]`). We implement
//! the evidently intended DP — column `j` ⇔ `j + 1` partitions, unreachable
//! states are `+∞`, full backtracking — and verify optimality against brute
//! force in the tests (see DESIGN.md §5).

/// A partition: an inclusive range of segment indices (Definition 5's
/// `TP = [TSᵢ, …, TSᵢ₊ⱼ]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionSpan {
    /// First segment index of the partition.
    pub seg_start: usize,
    /// Last segment index (inclusive).
    pub seg_end: usize,
}

impl PartitionSpan {
    /// Number of segments in this partition (`|TP|`).
    pub fn len(&self) -> usize {
        self.seg_end - self.seg_start + 1
    }

    /// Never true: a span holds at least one segment.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A complete partitioning of a trajectory's segments.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionResult {
    /// Non-overlapping, exhaustive spans in trajectory order — exactly
    /// Definition 5's requirements.
    pub spans: Vec<PartitionSpan>,
    /// The minimized total potential Σ Φ.
    pub potential: f64,
}

impl PartitionResult {
    /// Number of partitions.
    pub fn k(&self) -> usize {
        self.spans.len()
    }
}

/// The potential of an explicit cut assignment (`cuts[b]` = boundary `b` is
/// a partition break). Exposed for tests and ablations.
pub fn partition_potential(sims: &[f64], sigs: &[f64], ca: f64, cuts: &[bool]) -> f64 {
    assert_eq!(sims.len(), sigs.len());
    assert_eq!(sims.len(), cuts.len());
    cuts.iter().enumerate().map(|(b, cut)| if *cut { -ca * sigs[b] } else { -sims[b] }).sum()
}

fn spans_from_cuts(n_segs: usize, cuts: &[bool]) -> Vec<PartitionSpan> {
    let mut spans = Vec::new();
    let mut start = 0;
    for (b, cut) in cuts.iter().enumerate() {
        if *cut {
            spans.push(PartitionSpan { seg_start: start, seg_end: b });
            start = b + 1;
        }
    }
    spans.push(PartitionSpan { seg_start: start, seg_end: n_segs - 1 });
    spans
}

/// Eq. (4): the globally optimal (unconstrained) partition.
///
/// `sims[b]` is `S(TS_b, TS_{b+1})`; `sigs[b]` is the significance of the
/// landmark shared by those segments; both have length `n_segs − 1`.
/// In this chain potential the boundary decisions decouple, so the optimum
/// cuts exactly where `Ca · l.s > S` — the DP of Eq. (4) computes precisely
/// this, which the tests confirm against brute force.
pub fn optimal_partition(sims: &[f64], sigs: &[f64], ca: f64) -> PartitionResult {
    assert_eq!(sims.len(), sigs.len(), "boundary array length mismatch");
    let n_segs = sims.len() + 1;
    let cuts: Vec<bool> = (0..sims.len()).map(|b| ca * sigs[b] > sims[b]).collect();
    let potential = partition_potential(sims, sigs, ca, &cuts);
    let result = PartitionResult { spans: spans_from_cuts(n_segs, &cuts), potential };
    crate::invariant::check_finite("unconstrained partition potential", result.potential);
    crate::invariant::check_spans_cover(&result.spans, n_segs);
    result
}

/// Algorithm 1: the optimal partition with exactly `k` partitions.
///
/// Returns `None` when `k` is 0 or exceeds the number of segments.
pub fn optimal_k_partition(
    sims: &[f64],
    sigs: &[f64],
    ca: f64,
    k: usize,
) -> Option<PartitionResult> {
    assert_eq!(sims.len(), sigs.len(), "boundary array length mismatch");
    let n = sims.len() + 1; // number of segments
    if k == 0 || k > n {
        return None;
    }
    if n == 1 {
        return Some(PartitionResult {
            spans: vec![PartitionSpan { seg_start: 0, seg_end: 0 }],
            potential: 0.0,
        });
    }

    // E[i][j]: best potential over segments 0..=i using j+1 partitions.
    // cut_choice[i][j]: whether boundary i-1 (before segment i) was a cut.
    let mut e = vec![vec![f64::INFINITY; k]; n];
    let mut cut_choice = vec![vec![false; k]; n];
    e[0][0] = 0.0;
    for i in 1..n {
        for j in 0..k {
            // Merge segment i into the current partition.
            let merge = e[i - 1][j] - sims[i - 1];
            // Cut: boundary i−1's landmark (symbolic point i) starts
            // partition j+1.
            let cut = if j > 0 { e[i - 1][j - 1] - ca * sigs[i - 1] } else { f64::INFINITY };
            if cut < merge {
                e[i][j] = cut;
                cut_choice[i][j] = true;
            } else {
                e[i][j] = merge;
            }
        }
    }

    let potential = e[n - 1][k - 1];
    if potential.is_infinite() {
        return None; // cannot split n segments into k non-empty partitions
    }

    // Backtrack the cut flags.
    let mut cuts = vec![false; n - 1];
    let mut j = k - 1;
    for i in (1..n).rev() {
        if cut_choice[i][j] {
            cuts[i - 1] = true;
            j -= 1;
        }
    }
    debug_assert_eq!(j, 0, "backtrack must consume all cuts");

    let result = PartitionResult { spans: spans_from_cuts(n, &cuts), potential };
    crate::invariant::check_spans_cover(&result.spans, n);
    debug_assert_eq!(result.k(), k, "backtracked spans must form exactly k partitions");
    #[cfg(debug_assertions)]
    crate::invariant::check_k_potential_dominates(
        potential,
        optimal_partition(sims, sigs, ca).potential,
    );
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute force: best over all cut assignments with exactly `k−1` cuts
    /// (or any number when `k` is `None`).
    fn brute_force(sims: &[f64], sigs: &[f64], ca: f64, k: Option<usize>) -> f64 {
        let b = sims.len();
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << b) {
            let cuts: Vec<bool> = (0..b).map(|i| mask & (1 << i) != 0).collect();
            if let Some(k) = k {
                if cuts.iter().filter(|c| **c).count() != k - 1 {
                    continue;
                }
            }
            best = best.min(partition_potential(sims, sigs, ca, &cuts));
        }
        best
    }

    fn check_valid(r: &PartitionResult, n_segs: usize) {
        // Definition 5: spans cover every segment exactly once, in order.
        assert_eq!(r.spans[0].seg_start, 0);
        assert_eq!(r.spans.last().unwrap().seg_end, n_segs - 1);
        for w in r.spans.windows(2) {
            assert_eq!(w[0].seg_end + 1, w[1].seg_start);
        }
    }

    #[test]
    fn unconstrained_matches_brute_force() {
        let sims = vec![0.9, 0.2, 0.75, 0.4, 0.95];
        let sigs = vec![0.1, 0.9, 0.5, 0.99, 0.2];
        let ca = 0.5;
        let r = optimal_partition(&sims, &sigs, ca);
        check_valid(&r, 6);
        let bf = brute_force(&sims, &sigs, ca, None);
        assert!((r.potential - bf).abs() < 1e-12, "{} vs {bf}", r.potential);
    }

    #[test]
    fn k_partition_matches_brute_force_for_all_k() {
        let sims = vec![0.9, 0.2, 0.75, 0.4, 0.95, 0.6];
        let sigs = vec![0.1, 0.9, 0.5, 0.99, 0.2, 0.7];
        let ca = 0.5;
        for k in 1..=7 {
            let r = optimal_k_partition(&sims, &sigs, ca, k).unwrap();
            assert_eq!(r.k(), k, "wrong number of partitions for k={k}");
            check_valid(&r, 7);
            let bf = brute_force(&sims, &sigs, ca, Some(k));
            assert!((r.potential - bf).abs() < 1e-12, "k={k}: {} vs {bf}", r.potential);
            // The reported potential matches the reconstructed cuts.
            let mut cuts = vec![false; sims.len()];
            for s in &r.spans[..r.spans.len() - 1] {
                cuts[s.seg_end] = true;
            }
            assert!((partition_potential(&sims, &sigs, ca, &cuts) - r.potential).abs() < 1e-12);
        }
    }

    #[test]
    fn unconstrained_is_lower_bound_over_all_k() {
        let sims = vec![0.9, 0.2, 0.75, 0.4, 0.95];
        let sigs = vec![0.1, 0.9, 0.5, 0.99, 0.2];
        let ca = 0.5;
        let free = optimal_partition(&sims, &sigs, ca).potential;
        for k in 1..=6 {
            let r = optimal_k_partition(&sims, &sigs, ca, k).unwrap();
            assert!(r.potential >= free - 1e-12, "k={k} beat the unconstrained optimum");
        }
    }

    #[test]
    fn k_one_and_k_n_extremes() {
        let sims = vec![0.5, 0.6, 0.7];
        let sigs = vec![0.3, 0.4, 0.5];
        let one = optimal_k_partition(&sims, &sigs, 0.5, 1).unwrap();
        assert_eq!(one.spans, vec![PartitionSpan { seg_start: 0, seg_end: 3 }]);
        assert!((one.potential - (-1.8)).abs() < 1e-12);
        let all = optimal_k_partition(&sims, &sigs, 0.5, 4).unwrap();
        assert_eq!(all.k(), 4);
        assert!((all.potential - (-0.5 * (0.3 + 0.4 + 0.5))).abs() < 1e-12);
    }

    #[test]
    fn invalid_k_is_none() {
        let sims = vec![0.5];
        let sigs = vec![0.3];
        assert!(optimal_k_partition(&sims, &sigs, 0.5, 0).is_none());
        assert!(optimal_k_partition(&sims, &sigs, 0.5, 3).is_none());
    }

    #[test]
    fn single_segment_trajectory() {
        let r = optimal_partition(&[], &[], 0.5);
        assert_eq!(r.spans, vec![PartitionSpan { seg_start: 0, seg_end: 0 }]);
        assert_eq!(r.potential, 0.0);
        let rk = optimal_k_partition(&[], &[], 0.5, 1).unwrap();
        assert_eq!(rk.spans, r.spans);
    }

    #[test]
    fn cuts_prefer_significant_landmarks() {
        // All boundaries equally similar; only boundary 1 has a famous
        // landmark. k = 2 must cut there.
        let sims = vec![0.6, 0.6, 0.6];
        let sigs = vec![0.1, 0.95, 0.1];
        let r = optimal_k_partition(&sims, &sigs, 0.5, 2).unwrap();
        assert_eq!(
            r.spans,
            vec![
                PartitionSpan { seg_start: 0, seg_end: 1 },
                PartitionSpan { seg_start: 2, seg_end: 3 }
            ]
        );
    }

    #[test]
    fn cuts_prefer_dissimilar_boundaries() {
        // Equal significance everywhere; boundary 2 joins very dissimilar
        // segments (low S): cutting there loses the least.
        let sims = vec![0.9, 0.9, 0.1];
        let sigs = vec![0.5, 0.5, 0.5];
        let r = optimal_k_partition(&sims, &sigs, 0.5, 2).unwrap();
        assert_eq!(r.spans[0], PartitionSpan { seg_start: 0, seg_end: 2 });
    }

    #[test]
    fn higher_ca_produces_more_cuts() {
        let sims = vec![0.5, 0.5, 0.5, 0.5];
        let sigs = vec![0.8, 0.8, 0.8, 0.8];
        let low = optimal_partition(&sims, &sigs, 0.1);
        let high = optimal_partition(&sims, &sigs, 1.0);
        assert!(high.k() > low.k());
    }
}
