//! # stmaker-exec — std-only deterministic parallel executor
//!
//! The paper trains STMaker's historical knowledge over a 50k-trajectory
//! corpus (Sec. VII-A) and reports per-summary latency (Fig. 12); serving
//! "heavy traffic from millions of users" needs both corpus-scale training
//! and batch summarization throughput. This crate is the workspace's one
//! parallelism substrate: scoped threads from `std` only (the build has no
//! crates.io access, so rayon is not an option), with a determinism
//! contract strong enough that *thread count never changes results*.
//!
//! Two primitives:
//!
//! * [`Executor::par_map`] — an index-preserving parallel map. Work is
//!   split into chunks on a shared queue; idle workers keep claiming
//!   chunks until the queue drains (work stealing), so an expensive item
//!   cannot strand the other workers. Results are reassembled in input
//!   order, so the output is identical to `items.iter().map(f)`.
//! * [`Executor::shard_partials`] / [`Executor::shard_reduce`] — sharded
//!   map-reduce for building aggregate state (feature maps, route
//!   indexes). The input is split into [`shard_count`]`(n)` contiguous
//!   shards — a function of the input length only, **never** of the
//!   thread count — each shard folds into a partial on whichever worker
//!   claims it, and partials merge in ascending shard order on the caller
//!   thread. Because the shard boundaries and the merge order are fixed,
//!   the reduction tree is identical for 1 thread and N threads, making
//!   even floating-point accumulations bit-identical across thread
//!   counts. See DESIGN.md §10 for the full contract.
//!
//! Telemetry: an executor carrying a recorder (via
//! [`Executor::with_recorder`]) reports an `exec.threads` gauge per
//! parallel call and an `exec.tasks_stolen` counter — the number of
//! chunks/shards a worker claimed outside its fair share, i.e. how much
//! the queue actually rebalanced.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use stmaker_obs::Recorder;

/// Fixed shard count for [`Executor::shard_partials`] on large inputs.
///
/// Shards are a function of the input length only (`min(n, 64)`), never of
/// the thread count — this is what keeps sharded reductions bit-identical
/// across thread counts. 64 shards keep every realistic worker count busy
/// while bounding per-shard merge overhead.
pub const MAX_SHARDS: usize = 64;

/// How many chunks each worker's fair share is split into by
/// [`Executor::par_map`]; more chunks = finer-grained stealing.
const CHUNKS_PER_THREAD: usize = 4;

/// The number of shards used for an input of `n` items: `min(n, 64)`.
/// Deterministic in `n` alone — see [`MAX_SHARDS`].
pub fn shard_count(n: usize) -> usize {
    n.min(MAX_SHARDS)
}

/// The contiguous index ranges of the `shards` balanced shards of `n`
/// items: shard `s` covers `[s*n/shards, (s+1)*n/shards)`, so shard sizes
/// differ by at most one and concatenating the ranges in order restores
/// `0..n` exactly.
pub fn shard_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    if n == 0 || shards == 0 {
        return Vec::new();
    }
    let shards = shards.min(n);
    (0..shards).map(|s| (s * n / shards)..((s + 1) * n / shards)).collect()
}

/// The default worker count: the `STMAKER_THREADS` environment variable if
/// set to a positive integer, otherwise [`std::thread::available_parallelism`]
/// (1 if even that is unavailable).
pub fn default_threads() -> usize {
    std::env::var("STMAKER_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
        })
}

/// A scoped-thread work executor. Cheap to construct per call site; holds
/// no threads between calls (workers live only for the duration of one
/// `par_map`/`shard_partials` invocation, borrowing the caller's data via
/// [`std::thread::scope`]).
#[derive(Clone)]
pub struct Executor {
    threads: usize,
    obs: Recorder,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor").field("threads", &self.threads).finish()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Self::new(0)
    }
}

impl Executor {
    /// An executor with the given worker count; `0` means auto
    /// ([`default_threads`]).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 { default_threads() } else { threads };
        Self { threads, obs: Recorder::disabled() }
    }

    /// Attaches a telemetry recorder (builder style): every parallel call
    /// reports `exec.threads` and `exec.tasks_stolen` into it.
    #[must_use]
    pub fn with_recorder(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Parallel, index-preserving map: returns exactly
    /// `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()`, computed
    /// on up to [`Self::threads`] workers stealing chunks from a shared
    /// queue. A panic in `f` propagates to the caller after all workers
    /// stop claiming new chunks.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let threads = self.threads.min(n).max(1);
        self.obs.gauge("exec.threads", threads as f64);
        if threads <= 1 {
            // Nothing can be stolen on the sequential path, but emit the
            // counter anyway so single-CPU runs report the same metric
            // set as multi-threaded ones (CI schema checks key on it).
            self.obs.add("exec.tasks_stolen", 0);
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }

        let chunk = n.div_ceil(threads * CHUNKS_PER_THREAD).max(1);
        let n_chunks = n.div_ceil(chunk);
        let cursor = AtomicUsize::new(0);
        let stolen = AtomicUsize::new(0);

        // Each worker returns (chunk index, chunk results); chunks are
        // reassembled in index order below, so scheduling cannot reorder
        // the output.
        let mut by_chunk: Vec<(usize, Vec<R>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let (cursor, stolen, f) = (&cursor, &stolen, &f);
                    scope.spawn(move || {
                        let mut out: Vec<(usize, Vec<R>)> = Vec::new();
                        loop {
                            let c = cursor.fetch_add(1, Ordering::Relaxed);
                            if c >= n_chunks {
                                break;
                            }
                            // Chunk c's "home" worker under a static split;
                            // claiming someone else's chunk is a steal.
                            if c * threads / n_chunks != w {
                                stolen.fetch_add(1, Ordering::Relaxed);
                            }
                            let start = c * chunk;
                            let end = (start + chunk).min(n);
                            let vals: Vec<R> = items[start..end]
                                .iter()
                                .enumerate()
                                .map(|(j, t)| f(start + j, t))
                                .collect();
                            out.push((c, vals));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().flat_map(join_propagating).collect()
        });

        self.obs.add("exec.tasks_stolen", stolen.load(Ordering::Relaxed) as u64);
        by_chunk.sort_unstable_by_key(|(c, _)| *c);
        let mut out = Vec::with_capacity(n);
        for (_, mut vals) in by_chunk {
            out.append(&mut vals);
        }
        out
    }

    /// Sharded map: splits `items` into [`shard_count`]`(items.len())`
    /// contiguous shards (a function of the input length only — see the
    /// crate docs), folds each shard into a partial with
    /// `build(shard_index, base_index, shard_slice)` on whichever worker
    /// claims it, and returns the partials **in ascending shard order**.
    ///
    /// `base_index` is the global index of `shard_slice[0]`, so builders
    /// can assign globally consistent ids regardless of which worker runs
    /// them.
    pub fn shard_partials<T, S, F>(&self, items: &[T], build: F) -> Vec<S>
    where
        T: Sync,
        S: Send,
        F: Fn(usize, usize, &[T]) -> S + Sync,
    {
        let n = items.len();
        let ranges = shard_ranges(n, shard_count(n));
        let n_shards = ranges.len();
        let threads = self.threads.min(n_shards).max(1);
        self.obs.gauge("exec.threads", threads as f64);
        if threads <= 1 {
            // Same-metric-set guarantee as `par_map`'s sequential path.
            self.obs.add("exec.tasks_stolen", 0);
            return ranges
                .into_iter()
                .enumerate()
                .map(|(s, r)| build(s, r.start, &items[r]))
                .collect();
        }

        let cursor = AtomicUsize::new(0);
        let stolen = AtomicUsize::new(0);
        let ranges = &ranges;
        let mut partials: Vec<(usize, S)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let (cursor, stolen, build) = (&cursor, &stolen, &build);
                    scope.spawn(move || {
                        let mut out: Vec<(usize, S)> = Vec::new();
                        loop {
                            let s = cursor.fetch_add(1, Ordering::Relaxed);
                            if s >= n_shards {
                                break;
                            }
                            if s * threads / n_shards != w {
                                stolen.fetch_add(1, Ordering::Relaxed);
                            }
                            let r = ranges[s].clone();
                            out.push((s, build(s, r.start, &items[r])));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().flat_map(join_propagating).collect()
        });

        self.obs.add("exec.tasks_stolen", stolen.load(Ordering::Relaxed) as u64);
        partials.sort_unstable_by_key(|(s, _)| *s);
        partials.into_iter().map(|(_, p)| p).collect()
    }

    /// Sharded map-reduce: [`Self::shard_partials`] followed by a
    /// sequential merge of the partials in ascending shard order. Returns
    /// `None` for empty input. Because the merge runs on the caller thread
    /// in fixed order over fixed shard boundaries, the result is
    /// bit-identical for every thread count.
    pub fn shard_reduce<T, S, F, M>(&self, items: &[T], build: F, mut merge: M) -> Option<S>
    where
        T: Sync,
        S: Send,
        F: Fn(usize, usize, &[T]) -> S + Sync,
        M: FnMut(&mut S, S),
    {
        let mut partials = self.shard_partials(items, build).into_iter();
        let mut acc = partials.next()?;
        for p in partials {
            merge(&mut acc, p);
        }
        Some(acc)
    }
}

/// Joins a worker, re-raising its panic (if any) on the caller thread.
fn join_propagating<R>(handle: std::thread::ScopedJoinHandle<'_, R>) -> R {
    match handle.join() {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_and_indices() {
        for threads in [1, 2, 3, 8] {
            let exec = Executor::new(threads);
            let items: Vec<u64> = (0..257).collect();
            let out = exec.par_map(&items, |i, &v| (i as u64) * 1000 + v * 2);
            let expect: Vec<u64> = (0..257).map(|i| i * 1000 + i * 2).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        let exec = Executor::new(4);
        let empty: Vec<u32> = Vec::new();
        assert!(exec.par_map(&empty, |_, &v| v).is_empty());
        assert_eq!(exec.par_map(&[7u32], |i, &v| (i, v)), vec![(0, 7)]);
    }

    #[test]
    fn shard_ranges_partition_exactly() {
        for n in [0usize, 1, 5, 63, 64, 65, 1000] {
            for k in [1usize, 2, 7, 64] {
                let ranges = shard_ranges(n, k);
                let mut covered = 0usize;
                for (i, r) in ranges.iter().enumerate() {
                    assert_eq!(r.start, covered, "n={n} k={k} shard {i} contiguous");
                    assert!(!r.is_empty(), "n={n} k={k} shard {i} non-empty");
                    covered = r.end;
                }
                assert_eq!(covered, n, "n={n} k={k} covers everything");
            }
        }
    }

    #[test]
    fn shard_count_depends_on_input_only() {
        assert_eq!(shard_count(0), 0);
        assert_eq!(shard_count(10), 10);
        assert_eq!(shard_count(64), 64);
        assert_eq!(shard_count(100_000), MAX_SHARDS);
    }

    #[test]
    fn shard_partials_are_in_shard_order_with_global_bases() {
        let exec = Executor::new(4);
        let items: Vec<usize> = (0..200).collect();
        let partials = exec.shard_partials(&items, |shard, base, slice| {
            assert_eq!(slice[0], base, "slice starts at its global base");
            (shard, base, slice.len())
        });
        assert_eq!(partials.len(), shard_count(200));
        let mut covered = 0usize;
        for (i, (shard, base, len)) in partials.iter().enumerate() {
            assert_eq!(*shard, i);
            assert_eq!(*base, covered);
            covered += len;
        }
        assert_eq!(covered, 200);
    }

    #[test]
    fn shard_reduce_is_bit_identical_across_thread_counts() {
        // Floating-point sums whose grouping matters: identical results
        // across thread counts prove the reduction tree is fixed.
        let items: Vec<f64> = (0..1000).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let reduce = |threads: usize| {
            Executor::new(threads)
                .shard_reduce(&items, |_, _, slice| slice.iter().sum::<f64>(), |acc, p| *acc += p)
                .unwrap_or(0.0)
        };
        let reference = reduce(1);
        for threads in [2, 3, 4, 8, 16] {
            assert_eq!(reduce(threads).to_bits(), reference.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn shard_reduce_empty_input_is_none() {
        let exec = Executor::new(4);
        let empty: Vec<u32> = Vec::new();
        assert!(exec.shard_reduce(&empty, |_, _, s| s.len(), |a, b| *a += b).is_none());
    }

    #[test]
    fn zero_threads_resolves_to_a_positive_default() {
        assert!(Executor::new(0).threads() >= 1);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn recorder_sees_threads_gauge_and_steal_counter() {
        let obs = Recorder::enabled();
        let exec = Executor::new(4).with_recorder(obs.clone());
        let items: Vec<u64> = (0..500).collect();
        let _ = exec.par_map(&items, |_, &v| v + 1);
        let report = obs.report();
        assert_eq!(report.gauges["exec.threads"], 4.0);
        assert!(report.counters.contains_key("exec.tasks_stolen"));
    }

    #[test]
    fn sequential_fast_path_emits_the_same_metric_set() {
        // threads=1 forces the fast path in both par_map and
        // shard_partials; the required-counter set must still appear so
        // single-CPU CI validates the same schema as parallel runs.
        let obs = Recorder::enabled();
        let exec = Executor::new(1).with_recorder(obs.clone());
        let items: Vec<u64> = (0..10).collect();
        let _ = exec.par_map(&items, |_, &v| v + 1);
        let _ = exec.shard_partials(&items, |_, _, s: &[u64]| s.len());
        let report = obs.report();
        assert_eq!(report.gauges["exec.threads"], 1.0);
        assert_eq!(report.counters["exec.tasks_stolen"], 0);
    }

    #[test]
    fn worker_panic_propagates() {
        let exec = Executor::new(2);
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.par_map(&items, |_, &v| {
                assert!(v != 40, "injected failure");
                v
            })
        }));
        assert!(result.is_err(), "panic in a worker must reach the caller");
    }
}
