//! The road-network graph: intersections, roads and direction-aware adjacency.

use crate::types::{Direction, RoadGrade};
use serde::{Deserialize, Serialize};
use stmaker_geo::{GeoPoint, GridIndex, Polyline, RTree};

/// Index of a [`RoadNode`] within its [`RoadNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Index of a [`RoadEdge`] within its [`RoadNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

/// An intersection / vertex of the road graph.
///
/// Every node is a *turning point* in the paper's sense — a stable geographic
/// point usable as a landmark anchor (Definition 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoadNode {
    pub id: NodeId,
    pub point: GeoPoint,
}

/// A road connecting two intersections, carrying the three routing features
/// of Sec. III-A (grade, width, direction) plus geometry and a display name.
///
/// A [`Direction::TwoWay`] edge is traversable in both directions; a
/// [`Direction::OneWay`] edge only from `from` to `to`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoadEdge {
    pub id: EdgeId,
    pub from: NodeId,
    pub to: NodeId,
    pub grade: RoadGrade,
    /// Paved width in metres (the paper's numeric "road width" feature).
    pub width_m: f64,
    pub direction: Direction,
    /// Display name used in summary templates, e.g. "W 3rd Ring Expressway".
    pub name: String,
    /// Edge geometry from `from` to `to`.
    pub geometry: Polyline,
    /// Cached geometric length in metres.
    pub length_m: f64,
}

impl RoadEdge {
    /// Free-flow traversal time in seconds for this edge.
    pub fn free_flow_secs(&self) -> f64 {
        self.length_m / (self.grade.free_flow_kmh() / 3.6)
    }
}

/// The city road graph.
///
/// Adjacency honours one-way restrictions: `neighbors(n)` yields `(edge,
/// other-node)` pairs only for legally traversable directions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RoadNetwork {
    nodes: Vec<RoadNode>,
    edges: Vec<RoadEdge>,
    /// Outgoing adjacency per node (direction-aware).
    adj: Vec<Vec<(EdgeId, NodeId)>>,
}

impl RoadNetwork {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an intersection at `point` and returns its id.
    pub fn add_node(&mut self, point: GeoPoint) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(RoadNode { id, point });
        self.adj.push(Vec::new());
        id
    }

    /// Adds a straight road between `from` and `to` with the given attributes.
    ///
    /// # Panics
    /// Panics if either node id is out of range or the endpoints coincide.
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        grade: RoadGrade,
        width_m: f64,
        direction: Direction,
        name: impl Into<String>,
    ) -> EdgeId {
        assert!(from != to, "self-loop roads are not supported");
        let a = self.node(from).point;
        let b = self.node(to).point;
        let geometry = Polyline::new(vec![a, b]);
        self.add_edge_with_geometry(from, to, grade, width_m, direction, name, geometry)
    }

    /// Adds a road with explicit (possibly curved) geometry.
    #[allow(clippy::too_many_arguments)] // mirrors the RoadEdge fields one-to-one
    pub fn add_edge_with_geometry(
        &mut self,
        from: NodeId,
        to: NodeId,
        grade: RoadGrade,
        width_m: f64,
        direction: Direction,
        name: impl Into<String>,
        geometry: Polyline,
    ) -> EdgeId {
        assert!((from.0 as usize) < self.nodes.len(), "from node out of range");
        assert!((to.0 as usize) < self.nodes.len(), "to node out of range");
        let id = EdgeId(self.edges.len() as u32);
        let length_m = geometry.length_m();
        self.edges.push(RoadEdge {
            id,
            from,
            to,
            grade,
            width_m,
            direction,
            name: name.into(),
            geometry,
            length_m,
        });
        self.adj[from.0 as usize].push((id, to));
        if direction == Direction::TwoWay {
            self.adj[to.0 as usize].push((id, from));
        }
        id
    }

    /// Node accessor. Panics on out-of-range ids (ids are created by this
    /// network, so that is a programming error).
    pub fn node(&self, id: NodeId) -> &RoadNode {
        &self.nodes[id.0 as usize]
    }

    /// Edge accessor.
    pub fn edge(&self, id: EdgeId) -> &RoadEdge {
        &self.edges[id.0 as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[RoadNode] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[RoadEdge] {
        &self.edges
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Legal outgoing `(edge, neighbour)` pairs from `n`.
    pub fn neighbors(&self, n: NodeId) -> &[(EdgeId, NodeId)] {
        &self.adj[n.0 as usize]
    }

    /// Whether `e` may be traversed from node `from`.
    pub fn traversable_from(&self, e: EdgeId, from: NodeId) -> bool {
        let edge = self.edge(e);
        edge.from == from || (edge.direction == Direction::TwoWay && edge.to == from)
    }

    /// Builds a spatial index of edge geometry samples for nearest-edge
    /// queries (used by map matching). Each edge contributes samples every
    /// `sample_m` metres along its geometry.
    pub fn edge_index(&self, sample_m: f64) -> GridIndex<EdgeId> {
        let mut items = Vec::new();
        for e in &self.edges {
            let rs = e.geometry.resample(sample_m);
            for p in rs.points() {
                items.push((e.id, *p));
            }
        }
        GridIndex::build(items, sample_m.max(50.0))
    }

    /// Builds a packed R-tree over the network's edge geometry, one segment
    /// entry per polyline leg, for exact nearest-edge candidate queries (no
    /// resampling: distances refine against the true segment geometry).
    pub fn edge_segment_rtree(&self) -> RTree<EdgeId> {
        let mut items = Vec::new();
        for e in &self.edges {
            let pts = e.geometry.points();
            if pts.len() == 1 {
                items.push((e.id, pts[0], pts[0]));
            }
            for w in pts.windows(2) {
                items.push((e.id, w[0], w[1]));
            }
        }
        RTree::build_segments(items)
    }

    /// Builds a spatial index over intersection locations.
    pub fn node_index(&self, cell_m: f64) -> GridIndex<NodeId> {
        GridIndex::build(self.nodes.iter().map(|n| (n.id, n.point)), cell_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon)
    }

    fn tiny_net() -> (RoadNetwork, [NodeId; 3], [EdgeId; 2]) {
        // a --(two-way)-- b --(one-way b->c)-- c
        let mut net = RoadNetwork::new();
        let a = net.add_node(p(39.90, 116.40));
        let b = net.add_node(p(39.90, 116.41));
        let c = net.add_node(p(39.90, 116.42));
        let e1 = net.add_edge(a, b, RoadGrade::National, 16.0, Direction::TwoWay, "Main St");
        let e2 = net.add_edge(b, c, RoadGrade::Feeder, 4.5, Direction::OneWay, "Alley");
        (net, [a, b, c], [e1, e2])
    }

    #[test]
    fn adjacency_respects_one_way() {
        let (net, [a, b, c], [e1, e2]) = tiny_net();
        assert_eq!(net.neighbors(a), &[(e1, b)]);
        assert_eq!(net.neighbors(b), &[(e1, a), (e2, c)]);
        assert!(net.neighbors(c).is_empty(), "one-way edge must not be reversible");
    }

    #[test]
    fn traversable_from_checks_direction() {
        let (net, [a, b, c], [e1, e2]) = tiny_net();
        assert!(net.traversable_from(e1, a));
        assert!(net.traversable_from(e1, b));
        assert!(net.traversable_from(e2, b));
        assert!(!net.traversable_from(e2, c));
    }

    #[test]
    fn edge_length_cached_from_geometry() {
        let (net, _, [e1, _]) = tiny_net();
        let e = net.edge(e1);
        let direct = net.node(e.from).point.haversine_m(&net.node(e.to).point);
        assert!((e.length_m - direct).abs() < 0.01);
        assert!(e.length_m > 800.0); // ~854 m at this latitude
    }

    #[test]
    fn free_flow_secs_uses_grade_speed() {
        let (net, _, [e1, _]) = tiny_net();
        let e = net.edge(e1);
        let expect = e.length_m / (60.0 / 3.6);
        assert!((e.free_flow_secs() - expect).abs() < 1e-9);
    }

    #[test]
    fn edge_index_finds_nearest_edge() {
        let (net, _, [e1, e2]) = tiny_net();
        let idx = net.edge_index(50.0);
        // Query near the middle of edge 1.
        let q = p(39.9002, 116.405);
        let (hit, _) = idx.nearest(&q).unwrap();
        assert_eq!(hit, e1);
        let q2 = p(39.9002, 116.415);
        let (hit2, _) = idx.nearest(&q2).unwrap();
        assert_eq!(hit2, e2);
    }

    #[test]
    fn edge_segment_rtree_refines_against_true_geometry() {
        let (net, _, [e1, e2]) = tiny_net();
        let tree = net.edge_segment_rtree();
        assert_eq!(tree.len(), 2); // one straight segment per edge
        let q = p(39.9002, 116.405);
        let (hit, d) = tree.nearest(&q).unwrap();
        assert_eq!(hit, e1);
        // Perpendicular drop onto the edge interior, not an endpoint: ~22 m.
        assert!(d < 40.0, "expected interior-segment distance, got {d}");
        let (hit2, _) = tree.nearest(&p(39.9002, 116.415)).unwrap();
        assert_eq!(hit2, e2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let mut net = RoadNetwork::new();
        let a = net.add_node(p(39.9, 116.4));
        net.add_edge(a, a, RoadGrade::Feeder, 4.0, Direction::TwoWay, "x");
    }
}
