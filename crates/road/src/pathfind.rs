//! Dijkstra path search over the road graph.
//!
//! Two cost models are supported:
//! * [`PathCost::Distance`] — metres; the geometric shortest path.
//! * [`PathCost::TravelTime`] — seconds at per-grade free-flow speeds; this is
//!   what synthetic drivers use, which makes high-grade roads attract traffic
//!   and *popular routes* emerge exactly as on a real map.

use crate::network::{EdgeId, NodeId, RoadNetwork};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Cost model for path search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathCost {
    /// Minimize geometric length (metres).
    Distance,
    /// Minimize free-flow travel time (seconds).
    TravelTime,
}

impl PathCost {
    fn edge_cost(self, net: &RoadNetwork, e: EdgeId) -> f64 {
        let edge = net.edge(e);
        match self {
            PathCost::Distance => edge.length_m,
            PathCost::TravelTime => edge.free_flow_secs(),
        }
    }
}

/// A path through the network: the node sequence and the edges between them.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutePath {
    /// Visited nodes, source first, destination last.
    pub nodes: Vec<NodeId>,
    /// Edges traversed; `edges[i]` connects `nodes[i]` to `nodes[i+1]`.
    pub edges: Vec<EdgeId>,
    /// Total cost under the requested model.
    pub cost: f64,
}

impl RoutePath {
    /// Total geometric length of the path in metres.
    pub fn length_m(&self, net: &RoadNetwork) -> f64 {
        self.edges.iter().map(|e| net.edge(*e).length_m).sum()
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost; ties broken by node id for determinism. total_cmp
        // keeps the heap ordering a real total order even if a NaN cost ever
        // slipped in (partial_cmp-with-Equal-fallback silently corrupts it).
        other.cost.total_cmp(&self.cost).then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra search from `src` to `dst` under the given cost model.
///
/// Returns `None` when `dst` is unreachable (possible with one-way roads).
pub fn shortest_path(
    net: &RoadNetwork,
    src: NodeId,
    dst: NodeId,
    cost_model: PathCost,
) -> Option<RoutePath> {
    search(net, src, dst, cost_model, false)
}

/// A\* search from `src` to `dst` — same result as [`shortest_path`], but
/// goal-directed: the straight-line (haversine) distance to the destination
/// is an admissible heuristic for [`PathCost::Distance`], and divided by the
/// best free-flow speed in the network for [`PathCost::TravelTime`]. On
/// city-sized graphs this typically expands a small fraction of Dijkstra's
/// nodes for long queries.
pub fn shortest_path_astar(
    net: &RoadNetwork,
    src: NodeId,
    dst: NodeId,
    cost_model: PathCost,
) -> Option<RoutePath> {
    search(net, src, dst, cost_model, true)
}

/// The shared label-setting search: plain Dijkstra when `goal_directed` is
/// false, A\* with an admissible straight-line heuristic when true.
fn search(
    net: &RoadNetwork,
    src: NodeId,
    dst: NodeId,
    cost_model: PathCost,
    goal_directed: bool,
) -> Option<RoutePath> {
    let n = net.node_count();
    if src.0 as usize >= n || dst.0 as usize >= n {
        return None;
    }
    if src == dst {
        return Some(RoutePath { nodes: vec![src], edges: vec![], cost: 0.0 });
    }
    let goal = net.node(dst).point;
    let max_speed_mps = crate::types::RoadGrade::Highway.free_flow_kmh() / 3.6;
    let h = |node: NodeId| -> f64 {
        if !goal_directed {
            return 0.0;
        }
        let d = net.node(node).point.haversine_m(&goal);
        match cost_model {
            PathCost::Distance => d,
            PathCost::TravelTime => d / max_speed_mps,
        }
    };

    let mut g = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut done = vec![false; n];
    g[src.0 as usize] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry { cost: h(src), node: src });

    while let Some(HeapEntry { cost: _, node }) = heap.pop() {
        let ni = node.0 as usize;
        if done[ni] {
            continue;
        }
        done[ni] = true;
        if node == dst {
            break;
        }
        for &(e, next) in net.neighbors(node) {
            let nxt = next.0 as usize;
            if done[nxt] {
                continue;
            }
            let ng = g[ni] + cost_model.edge_cost(net, e);
            if ng < g[nxt] {
                g[nxt] = ng;
                prev[nxt] = Some((node, e));
                heap.push(HeapEntry { cost: ng + h(next), node: next });
            }
        }
    }

    if g[dst.0 as usize].is_infinite() {
        return None;
    }
    let mut nodes = vec![dst];
    let mut edges = Vec::new();
    let mut cur = dst;
    while let Some((p, e)) = prev[cur.0 as usize] {
        edges.push(e);
        nodes.push(p);
        cur = p;
        if cur == src {
            break;
        }
    }
    nodes.reverse();
    edges.reverse();
    Some(RoutePath { nodes, edges, cost: g[dst.0 as usize] })
}

/// Single-source Dijkstra; returns per-node cost (`INFINITY` = unreachable).
pub fn all_costs_from(net: &RoadNetwork, src: NodeId, cost_model: PathCost) -> Vec<f64> {
    let n = net.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut done = vec![false; n];
    dist[src.0 as usize] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry { cost: 0.0, node: src });
    while let Some(HeapEntry { cost: _, node }) = heap.pop() {
        let ni = node.0 as usize;
        if done[ni] {
            continue;
        }
        done[ni] = true;
        for &(e, next) in net.neighbors(node) {
            let nxt = next.0 as usize;
            let nd = dist[ni] + cost_model.edge_cost(net, e);
            if nd < dist[nxt] {
                dist[nxt] = nd;
                heap.push(HeapEntry { cost: nd, node: next });
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Direction, RoadGrade};
    use stmaker_geo::GeoPoint;

    /// A 3x3 grid of nodes, 500 m spacing, all two-way county roads, except a
    /// fast express road along the top row.
    fn grid_net() -> (RoadNetwork, Vec<NodeId>) {
        let mut net = RoadNetwork::new();
        let base = GeoPoint::new(39.9, 116.4);
        let mut ids = Vec::new();
        for r in 0..3 {
            for c in 0..3 {
                let p = base.destination(90.0, 500.0 * c as f64).destination(0.0, 500.0 * r as f64);
                ids.push(net.add_node(p));
            }
        }
        let at = |r: usize, c: usize| ids[r * 3 + c];
        for r in 0..3 {
            for c in 0..2 {
                let grade = if r == 2 { RoadGrade::Express } else { RoadGrade::County };
                net.add_edge(at(r, c), at(r, c + 1), grade, 9.0, Direction::TwoWay, "h");
            }
        }
        for r in 0..2 {
            for c in 0..3 {
                net.add_edge(
                    at(r, c),
                    at(r + 1, c),
                    RoadGrade::County,
                    9.0,
                    Direction::TwoWay,
                    "v",
                );
            }
        }
        (net, ids)
    }

    #[test]
    fn trivial_path_same_node() {
        let (net, ids) = grid_net();
        let p = shortest_path(&net, ids[0], ids[0], PathCost::Distance).unwrap();
        assert_eq!(p.nodes, vec![ids[0]]);
        assert!(p.edges.is_empty());
        assert_eq!(p.cost, 0.0);
    }

    #[test]
    fn shortest_distance_is_manhattan() {
        let (net, ids) = grid_net();
        let p = shortest_path(&net, ids[0], ids[8], PathCost::Distance).unwrap();
        assert!((p.cost - 2000.0).abs() < 2.0, "cost {}", p.cost);
        assert_eq!(p.edges.len(), 4);
        // Edge/node sequences are consistent.
        assert_eq!(p.nodes.len(), p.edges.len() + 1);
        for (i, e) in p.edges.iter().enumerate() {
            let edge = net.edge(*e);
            let (a, b) = (p.nodes[i], p.nodes[i + 1]);
            assert!(
                (edge.from == a && edge.to == b) || (edge.from == b && edge.to == a),
                "edge {i} does not connect consecutive nodes"
            );
        }
    }

    #[test]
    fn travel_time_prefers_express_detour() {
        let (net, ids) = grid_net();
        // From bottom-left (r0,c0) to bottom-right (r0,c2): direct county route
        // is 1000 m @40 km/h = 90 s. Detour via top express row costs
        // 2*1000 m county vertical (180 s) + 1000 m @80 (45 s) = 225 s — worse.
        // So here Dijkstra keeps the direct route; but top-row trips use express.
        let p = shortest_path(&net, ids[0], ids[2], PathCost::TravelTime).unwrap();
        assert_eq!(p.edges.len(), 2);
        let top = shortest_path(&net, ids[6], ids[8], PathCost::TravelTime).unwrap();
        let secs_top = top.cost;
        assert!(secs_top < p.cost, "express row must be faster: {secs_top} vs {}", p.cost);
    }

    #[test]
    fn one_way_makes_node_unreachable() {
        let mut net = RoadNetwork::new();
        let a = net.add_node(GeoPoint::new(39.9, 116.40));
        let b = net.add_node(GeoPoint::new(39.9, 116.41));
        net.add_edge(a, b, RoadGrade::Feeder, 4.0, Direction::OneWay, "x");
        assert!(shortest_path(&net, a, b, PathCost::Distance).is_some());
        assert!(shortest_path(&net, b, a, PathCost::Distance).is_none());
    }

    #[test]
    fn all_costs_match_point_queries() {
        let (net, ids) = grid_net();
        let costs = all_costs_from(&net, ids[0], PathCost::Distance);
        for &dst in &ids {
            let p = shortest_path(&net, ids[0], dst, PathCost::Distance).unwrap();
            assert!((costs[dst.0 as usize] - p.cost).abs() < 1e-6);
        }
    }

    #[test]
    fn astar_matches_dijkstra_costs() {
        let (net, ids) = grid_net();
        for model in [PathCost::Distance, PathCost::TravelTime] {
            for &src in &ids {
                for &dst in &ids {
                    let d = shortest_path(&net, src, dst, model);
                    let a = shortest_path_astar(&net, src, dst, model);
                    match (d, a) {
                        (Some(d), Some(a)) => assert!(
                            (d.cost - a.cost).abs() < 1e-6,
                            "{src:?}->{dst:?}: dijkstra {} vs astar {}",
                            d.cost,
                            a.cost
                        ),
                        (None, None) => {}
                        other => panic!("reachability disagrees: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn astar_handles_one_way_and_trivial_cases() {
        let mut net = RoadNetwork::new();
        let a = net.add_node(GeoPoint::new(39.9, 116.40));
        let b = net.add_node(GeoPoint::new(39.9, 116.41));
        net.add_edge(a, b, RoadGrade::Feeder, 4.0, Direction::OneWay, "x");
        assert!(shortest_path_astar(&net, a, b, PathCost::Distance).is_some());
        assert!(shortest_path_astar(&net, b, a, PathCost::Distance).is_none());
        let p = shortest_path_astar(&net, a, a, PathCost::Distance).unwrap();
        assert_eq!(p.cost, 0.0);
        assert!(shortest_path_astar(&net, a, NodeId(99), PathCost::Distance).is_none());
    }

    #[test]
    fn out_of_range_nodes_yield_none() {
        let (net, ids) = grid_net();
        assert!(shortest_path(&net, ids[0], NodeId(999), PathCost::Distance).is_none());
    }
}
