//! Road attribute vocabulary: the paper's routing-feature value domains.

use serde::{Deserialize, Serialize};

/// The seven-level road hierarchy of Sec. III-A.
///
/// "There are seven grades of road: 1 (highway), 2 (express road), 3
/// (national road), 4 (provincial road), 5 (country road), 6 (village road)
/// and 7 (feeder road). The roads with higher grade (smaller numerical value)
/// usually have higher transportation capacity."
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum RoadGrade {
    Highway = 1,
    Express = 2,
    National = 3,
    Provincial = 4,
    County = 5,
    Village = 6,
    Feeder = 7,
}

impl RoadGrade {
    /// All grades, best capacity first.
    pub const ALL: [RoadGrade; 7] = [
        RoadGrade::Highway,
        RoadGrade::Express,
        RoadGrade::National,
        RoadGrade::Provincial,
        RoadGrade::County,
        RoadGrade::Village,
        RoadGrade::Feeder,
    ];

    /// The categorical integer the paper assigns (1 = highway … 7 = feeder).
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parses the paper's integer code.
    pub fn from_code(code: u8) -> Option<RoadGrade> {
        RoadGrade::ALL.get(code.checked_sub(1)? as usize).copied()
    }

    /// Human-readable name used in summary templates ("through *highway*…").
    pub fn name(self) -> &'static str {
        match self {
            RoadGrade::Highway => "highway",
            RoadGrade::Express => "express road",
            RoadGrade::National => "national road",
            RoadGrade::Provincial => "provincial road",
            RoadGrade::County => "country road",
            RoadGrade::Village => "village road",
            RoadGrade::Feeder => "feeder road",
        }
    }

    /// Typical free-flow speed for the grade, km/h. Drives both the synthetic
    /// traffic model and the fastest-path cost.
    pub fn free_flow_kmh(self) -> f64 {
        match self {
            RoadGrade::Highway => 100.0,
            RoadGrade::Express => 80.0,
            RoadGrade::National => 60.0,
            RoadGrade::Provincial => 50.0,
            RoadGrade::County => 40.0,
            RoadGrade::Village => 30.0,
            RoadGrade::Feeder => 20.0,
        }
    }

    /// Typical paved width for the grade, metres (midpoint of realistic
    /// ranges; the synthetic city jitters around these).
    pub fn typical_width_m(self) -> f64 {
        match self {
            RoadGrade::Highway => 28.0,
            RoadGrade::Express => 22.0,
            RoadGrade::National => 16.0,
            RoadGrade::Provincial => 13.0,
            RoadGrade::County => 9.0,
            RoadGrade::Village => 6.5,
            RoadGrade::Feeder => 4.5,
        }
    }
}

/// Traffic direction of a road (Sec. III-A).
///
/// "There are two values of direction, i.e., 1 (two-way road) and 2 (one-way
/// road)."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Direction {
    TwoWay = 1,
    OneWay = 2,
}

impl Direction {
    /// The categorical integer the paper assigns.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parses the paper's integer code.
    pub fn from_code(code: u8) -> Option<Direction> {
        match code {
            1 => Some(Direction::TwoWay),
            2 => Some(Direction::OneWay),
            _ => None,
        }
    }

    /// Human-readable name used in summary templates.
    pub fn name(self) -> &'static str {
        match self {
            Direction::TwoWay => "two-way road",
            Direction::OneWay => "one-way road",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grade_codes_round_trip() {
        for g in RoadGrade::ALL {
            assert_eq!(RoadGrade::from_code(g.code()), Some(g));
        }
        assert_eq!(RoadGrade::from_code(0), None);
        assert_eq!(RoadGrade::from_code(8), None);
    }

    #[test]
    fn higher_grade_means_faster_and_wider() {
        for w in RoadGrade::ALL.windows(2) {
            assert!(w[0].free_flow_kmh() > w[1].free_flow_kmh());
            assert!(w[0].typical_width_m() > w[1].typical_width_m());
        }
    }

    #[test]
    fn grade_names_match_paper() {
        assert_eq!(RoadGrade::Highway.name(), "highway");
        assert_eq!(RoadGrade::Express.name(), "express road");
        assert_eq!(RoadGrade::Feeder.name(), "feeder road");
    }

    #[test]
    fn direction_codes_round_trip() {
        assert_eq!(Direction::from_code(1), Some(Direction::TwoWay));
        assert_eq!(Direction::from_code(2), Some(Direction::OneWay));
        assert_eq!(Direction::from_code(3), None);
        assert_eq!(Direction::TwoWay.code(), 1);
    }
}
