//! Road-network substrate for the `stmaker` stack.
//!
//! The paper reads its routing features — *grade of road* (seven-level
//! hierarchy, Sec. III-A), *road width* and *traffic direction* — off a
//! commercial map of Beijing. This crate provides the equivalent substrate:
//!
//! * [`RoadNetwork`] — a directed-capable graph of intersections
//!   ([`RoadNode`]) and roads ([`RoadEdge`]) carrying exactly the paper's
//!   three routing attributes plus geometry and display names;
//! * [`pathfind`] — Dijkstra shortest/fastest path search used both by the
//!   synthetic-trajectory generator (drivers pick fastest routes) and by the
//!   popular-route fallback;
//! * [`synth`] — a hierarchical synthetic city builder standing in for the
//!   commercial Beijing map (see DESIGN.md §3 for the substitution argument).

pub mod network;
pub mod pathfind;
pub mod synth;
pub mod types;

pub use network::{EdgeId, NodeId, RoadEdge, RoadNetwork, RoadNode};
pub use pathfind::{shortest_path_astar, PathCost, RoutePath};
pub use synth::{build_city, SynthCityConfig};
pub use types::{Direction, RoadGrade};
