//! Synthetic hierarchical city builder.
//!
//! Stands in for the paper's commercial Beijing map (DESIGN.md §3). The city
//! is a Manhattan-style grid with a realistic road hierarchy:
//!
//! * a **ring highway** (grade 1) around the perimeter,
//! * **express arterials** (grade 2) every `arterial_every` rows/columns,
//! * ordinary streets graded 3–5, better grades nearer the centre,
//! * minor roads (grades 5–7) on the remaining links, a configurable
//!   fraction of which are one-way.
//!
//! All randomness comes from a seeded [`StdRng`], so a given config always
//! produces byte-identical cities — every experiment in the repository is
//! reproducible.

use crate::network::RoadNetwork;
use crate::types::{Direction, RoadGrade};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use stmaker_geo::GeoPoint;

/// Configuration for [`build_city`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthCityConfig {
    /// South-west corner of the city.
    pub origin: GeoPoint,
    /// Number of grid columns of intersections (≥ 2).
    pub cols: usize,
    /// Number of grid rows of intersections (≥ 2).
    pub rows: usize,
    /// Block edge length in metres.
    pub block_m: f64,
    /// Every `arterial_every`-th row/column is an express arterial.
    pub arterial_every: usize,
    /// Fraction of minor (grade ≥ 5) roads made one-way, `[0, 1]`.
    pub one_way_fraction: f64,
    /// RNG seed; equal seeds give byte-identical cities.
    pub seed: u64,
}

impl Default for SynthCityConfig {
    fn default() -> Self {
        Self {
            origin: GeoPoint::new(39.80, 116.25), // SW Beijing-ish
            cols: 16,
            rows: 16,
            block_m: 500.0,
            arterial_every: 4,
            one_way_fraction: 0.12,
            seed: 0x57_4D_41_4B, // "STMAK"
        }
    }
}

impl SynthCityConfig {
    /// A small city for unit tests (fast, still hierarchical).
    pub fn small(seed: u64) -> Self {
        Self { cols: 8, rows: 8, arterial_every: 3, seed, ..Self::default() }
    }
}

/// English ordinal ("1st", "2nd", "3rd", "4th", …) for road names.
fn ordinal(n: usize) -> String {
    let suffix = match (n % 10, n % 100) {
        (1, 11) | (2, 12) | (3, 13) => "th",
        (1, _) => "st",
        (2, _) => "nd",
        (3, _) => "rd",
        _ => "th",
    };
    format!("{n}{suffix}")
}

/// Deterministically builds a city road network from `cfg`.
///
/// Intersections are laid out on a `rows × cols` grid with `block_m` spacing;
/// every link between adjacent intersections becomes a [`RoadEdge`](crate::RoadEdge) whose
/// grade, width, direction and name follow the hierarchy described in the
/// module docs.
pub fn build_city(cfg: &SynthCityConfig) -> RoadNetwork {
    assert!(cfg.cols >= 2 && cfg.rows >= 2, "city needs at least a 2x2 grid");
    assert!(cfg.block_m > 0.0, "block size must be positive");
    assert!((0.0..=1.0).contains(&cfg.one_way_fraction), "one_way_fraction in [0,1]");
    assert!(cfg.arterial_every >= 1, "arterial_every must be at least 1");

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut net = RoadNetwork::new();

    // Lay out intersections. Small positional jitter (< 6 m) keeps geometry
    // from being perfectly axis-aligned without disturbing the topology.
    let mut ids = Vec::with_capacity(cfg.rows * cfg.cols);
    for r in 0..cfg.rows {
        for c in 0..cfg.cols {
            let east = cfg.block_m * c as f64 + rng.random_range(-6.0..6.0);
            let north = cfg.block_m * r as f64 + rng.random_range(-6.0..6.0);
            let p = cfg.origin.destination(90.0, east).destination(0.0, north);
            ids.push(net.add_node(p));
        }
    }
    let at = |r: usize, c: usize| ids[r * cfg.cols + c];

    let center_r = (cfg.rows - 1) as f64 / 2.0;
    let center_c = (cfg.cols - 1) as f64 / 2.0;
    let max_rad = center_r.hypot(center_c).max(1.0);

    let grade_for = |is_ring: bool, is_arterial: bool, r: f64, c: f64, rng: &mut StdRng| {
        if is_ring {
            return RoadGrade::Highway;
        }
        if is_arterial {
            return RoadGrade::Express;
        }
        // Streets: closer to the centre → better grade, with jitter.
        let rad = ((r - center_r).hypot(c - center_c)) / max_rad; // 0 centre, 1 corner
        let noise: f64 = rng.random_range(-0.18..0.18);
        let v = (rad + noise).clamp(0.0, 1.0);
        match v {
            v if v < 0.22 => RoadGrade::National,
            v if v < 0.45 => RoadGrade::Provincial,
            v if v < 0.68 => RoadGrade::County,
            v if v < 0.86 => RoadGrade::Village,
            _ => RoadGrade::Feeder,
        }
    };

    let add_link = |net: &mut RoadNetwork,
                    a: (usize, usize),
                    b: (usize, usize),
                    name: String,
                    is_ring: bool,
                    is_arterial: bool,
                    rng: &mut StdRng| {
        let mid_r = (a.0 + b.0) as f64 / 2.0;
        let mid_c = (a.1 + b.1) as f64 / 2.0;
        let grade = grade_for(is_ring, is_arterial, mid_r, mid_c, rng);
        let width = grade.typical_width_m() * rng.random_range(0.85..1.15);
        let direction = if grade >= RoadGrade::County && rng.random_bool(cfg.one_way_fraction) {
            Direction::OneWay
        } else {
            Direction::TwoWay
        };
        // Randomize one-way orientation by occasionally swapping endpoints.
        let (from, to) = if direction == Direction::OneWay && rng.random_bool(0.5) {
            (at(b.0, b.1), at(a.0, a.1))
        } else {
            (at(a.0, a.1), at(b.0, b.1))
        };
        net.add_edge(from, to, grade, width, direction, name);
    };

    // Horizontal links.
    for r in 0..cfg.rows {
        let is_ring = r == 0 || r == cfg.rows - 1;
        let is_arterial = !is_ring && r % cfg.arterial_every == 0;
        for c in 0..cfg.cols - 1 {
            let name = if is_ring {
                if r == 0 {
                    "S Ring Expressway".to_string()
                } else {
                    "N Ring Expressway".to_string()
                }
            } else if is_arterial {
                format!("E {} Avenue", ordinal(r))
            } else {
                format!("Street {}-{}", r, c)
            };
            add_link(&mut net, (r, c), (r, c + 1), name, is_ring, is_arterial, &mut rng);
        }
    }
    // Vertical links.
    for c in 0..cfg.cols {
        let is_ring = c == 0 || c == cfg.cols - 1;
        let is_arterial = !is_ring && c % cfg.arterial_every == 0;
        for r in 0..cfg.rows - 1 {
            let name = if is_ring {
                if c == 0 {
                    "W Ring Expressway".to_string()
                } else {
                    "E Ring Expressway".to_string()
                }
            } else if is_arterial {
                format!("N {} Avenue", ordinal(c))
            } else {
                format!("Lane {}-{}", r, c)
            };
            add_link(&mut net, (r, c), (r + 1, c), name, is_ring, is_arterial, &mut rng);
        }
    }

    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathfind::{all_costs_from, PathCost};

    #[test]
    fn city_has_expected_topology() {
        let cfg = SynthCityConfig::small(7);
        let net = build_city(&cfg);
        assert_eq!(net.node_count(), 64);
        // Grid of R x C has R*(C-1) + C*(R-1) links.
        assert_eq!(net.edge_count(), 8 * 7 * 2);
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let cfg = SynthCityConfig::small(42);
        let a = build_city(&cfg);
        let b = build_city(&cfg);
        assert_eq!(a.edge_count(), b.edge_count());
        for (x, y) in a.edges().iter().zip(b.edges()) {
            assert_eq!(x.grade, y.grade);
            assert_eq!(x.direction, y.direction);
            assert_eq!(x.width_m, y.width_m);
            assert_eq!(x.name, y.name);
        }
        let c = build_city(&SynthCityConfig::small(43));
        let differs = a
            .edges()
            .iter()
            .zip(c.edges())
            .any(|(x, y)| x.grade != y.grade || x.width_m != y.width_m);
        assert!(differs, "different seeds should differ somewhere");
    }

    #[test]
    fn ring_is_highway_and_interior_arterials_express() {
        let cfg = SynthCityConfig::small(7);
        let net = build_city(&cfg);
        let ring: Vec<_> = net.edges().iter().filter(|e| e.name.contains("Ring")).collect();
        assert!(!ring.is_empty());
        assert!(ring.iter().all(|e| e.grade == RoadGrade::Highway));
        let avenues: Vec<_> = net.edges().iter().filter(|e| e.name.contains("Avenue")).collect();
        assert!(!avenues.is_empty());
        assert!(avenues.iter().all(|e| e.grade == RoadGrade::Express));
    }

    #[test]
    fn grade_mix_is_hierarchical() {
        let net = build_city(&SynthCityConfig::default());
        let mut counts = [0usize; 8];
        for e in net.edges() {
            counts[e.grade.code() as usize] += 1;
        }
        // Every grade is represented in the default city.
        for g in RoadGrade::ALL {
            assert!(counts[g.code() as usize] > 0, "missing grade {g:?}");
        }
        // Minor roads outnumber highways.
        assert!(counts[5] + counts[6] + counts[7] > counts[1]);
    }

    #[test]
    fn one_way_fraction_roughly_respected() {
        let cfg = SynthCityConfig { one_way_fraction: 0.5, ..SynthCityConfig::default() };
        let net = build_city(&cfg);
        let minor: Vec<_> = net.edges().iter().filter(|e| e.grade >= RoadGrade::County).collect();
        let one_way = minor.iter().filter(|e| e.direction == Direction::OneWay).count();
        let frac = one_way as f64 / minor.len() as f64;
        assert!((frac - 0.5).abs() < 0.1, "one-way fraction {frac}");
        // Graded < County roads are never one-way.
        assert!(net
            .edges()
            .iter()
            .filter(|e| e.grade < RoadGrade::County)
            .all(|e| e.direction == Direction::TwoWay));
    }

    #[test]
    fn city_is_mostly_strongly_connected() {
        // One-way minor roads may strand a handful of nodes, but the bulk of
        // the city must be mutually reachable or the generator cannot route.
        let net = build_city(&SynthCityConfig::small(123));
        let costs = all_costs_from(&net, net.nodes()[0].id, PathCost::Distance);
        let reachable = costs.iter().filter(|c| c.is_finite()).count();
        assert!(
            reachable as f64 >= 0.95 * net.node_count() as f64,
            "only {reachable}/{} reachable",
            net.node_count()
        );
    }

    #[test]
    fn widths_jitter_around_grade_typical() {
        let net = build_city(&SynthCityConfig::default());
        for e in net.edges() {
            let t = e.grade.typical_width_m();
            assert!(e.width_m >= t * 0.85 - 1e-9 && e.width_m <= t * 1.15 + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "2x2")]
    fn degenerate_grid_rejected() {
        let cfg = SynthCityConfig { cols: 1, ..SynthCityConfig::default() };
        build_city(&cfg);
    }
}
