//! Popular routes and historical feature maps — the "common behaviour"
//! substrate that feature selection (Sec. V) compares against.
//!
//! * [`PopularRoutes`] — mines the most popular historical route `PR`
//!   between two landmarks (Sec. V-A, after Chen et al.'s popular-route
//!   work, the paper's reference \[7\]): exact most-frequent sub-route when
//!   the corpus has enough direct support, otherwise a maximum-probability
//!   walk over the landmark transfer graph.
//! * [`HistoricalFeatureMap`] — Sec. V-B verbatim: a directed graph over
//!   landmarks where each edge `(lᵢ → lⱼ)` is annotated with the average
//!   value of every moving feature observed on trajectories travelling that
//!   hop; [`HistoricalFeatureMap::regular_value`] is the `r_{lᵢ→lⱼ}` of the
//!   paper's irregular-rate formula.

pub mod featmap;
pub mod popular;
pub mod serde_vecmap;

pub use featmap::HistoricalFeatureMap;
pub use popular::{PopularRouteConfig, PopularRoutes, PopularRoutesParts};
