//! Serde adapter: (de)serializes a `HashMap<K, V>` as a sorted `Vec<(K, V)>`.
//!
//! JSON object keys must be strings, so maps keyed by tuples or newtype ids
//! cannot serialize natively. Entry-vector form works with every serde
//! format, and sorting keys makes the output canonical (byte-identical
//! files for identical models — the same determinism contract the rest of
//! the stack keeps).

use serde::de::{Deserialize, DeserializeOwned, Deserializer};
use serde::ser::{Serialize, Serializer};
use std::collections::HashMap;
use std::hash::Hash;

/// Serializes the map as a key-sorted entry vector.
pub fn serialize<K, V, S>(map: &HashMap<K, V>, serializer: S) -> Result<S::Ok, S::Error>
where
    K: Serialize + Ord + Clone,
    V: Serialize,
    S: Serializer,
{
    // lint: ordered — entries are key-sorted on the next line before serialization
    let mut entries: Vec<(&K, &V)> = map.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    serializer.collect_seq(entries)
}

/// Deserializes an entry vector back into a map.
pub fn deserialize<'de, K, V, D>(deserializer: D) -> Result<HashMap<K, V>, D::Error>
where
    K: DeserializeOwned + Eq + Hash,
    V: DeserializeOwned,
    D: Deserializer<'de>,
{
    let entries: Vec<(K, V)> = Vec::deserialize(deserializer)?;
    Ok(entries.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};
    use std::collections::HashMap;

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Holder {
        #[serde(with = "super")]
        map: HashMap<(u32, u32), Vec<f64>>,
    }

    #[test]
    fn round_trips_tuple_keys_through_json() {
        let mut map = HashMap::new();
        map.insert((1, 2), vec![1.0, 2.0]);
        map.insert((0, 9), vec![3.0]);
        let h = Holder { map };
        let json = serde_json::to_string(&h).expect("serializes");
        let back: Holder = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(h, back);
    }

    #[test]
    fn output_is_canonical() {
        // Same entries inserted in different orders produce identical JSON.
        let mut a = HashMap::new();
        a.insert((1u32, 1u32), 1.0f64);
        a.insert((0, 0), 2.0);
        let mut b = HashMap::new();
        b.insert((0u32, 0u32), 2.0f64);
        b.insert((1, 1), 1.0);
        #[derive(Serialize)]
        struct H {
            #[serde(with = "super")]
            m: HashMap<(u32, u32), f64>,
        }
        let ja = serde_json::to_string(&H { m: a }).unwrap();
        let jb = serde_json::to_string(&H { m: b }).unwrap();
        assert_eq!(ja, jb);
    }
}
