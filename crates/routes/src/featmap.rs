//! The historical feature map of Sec. V-B.
//!
//! "For each moving feature f, a historical feature map, represented as a
//! directed graph G(V, E), is built to summarize feature f between two
//! landmarks … Annotate each edge e(lᵢ, lⱼ) with the average value of feature
//! f of T(lᵢ → lⱼ)."
//!
//! One [`HistoricalFeatureMap`] holds *all* moving features at once (keyed by
//! feature name), since they share the same edge set.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};
use stmaker_poi::LandmarkId;

/// Running mean for one feature on one landmark-graph edge.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Stat {
    sum: f64,
    count: u64,
}

/// Directed landmark graph annotated with per-edge average moving-feature
/// values (the `r_{lᵢ→lⱼ}` of the paper's moving-feature irregular rate).
///
/// Numeric features aggregate as running means; categorical features (grade
/// of road, traffic direction) aggregate as per-code counts and are read
/// back as the mode, since averaging category codes is meaningless.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HistoricalFeatureMap {
    /// `(from, to) → feature key → running mean`.
    #[serde(with = "crate::serde_vecmap")]
    edges: HashMap<(LandmarkId, LandmarkId), BTreeMap<String, Stat>>,
    /// `(from, to) → feature key → category code → count`.
    #[serde(with = "crate::serde_vecmap")]
    categorical: HashMap<(LandmarkId, LandmarkId), BTreeMap<String, BTreeMap<u32, u64>>>,
}

impl HistoricalFeatureMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `feature` on the direct hop `from → to`.
    pub fn add_observation(&mut self, from: LandmarkId, to: LandmarkId, feature: &str, value: f64) {
        assert!(value.is_finite(), "feature observations must be finite");
        let stat = self.edges.entry((from, to)).or_default().entry(feature.to_owned()).or_default();
        stat.sum += value;
        stat.count += 1;
    }

    /// The regular (historical average) value of `feature` on `from → to`,
    /// or `None` if no historical trajectory travelled that hop.
    pub fn regular_value(&self, from: LandmarkId, to: LandmarkId, feature: &str) -> Option<f64> {
        let stat = self.edges.get(&(from, to))?.get(feature)?;
        Some(stat.sum / stat.count as f64)
    }

    /// How many observations back the `from → to` average of `feature`.
    pub fn observation_count(&self, from: LandmarkId, to: LandmarkId, feature: &str) -> u64 {
        self.edges.get(&(from, to)).and_then(|m| m.get(feature)).map(|s| s.count).unwrap_or(0)
    }

    /// Records one observation of a categorical `feature` (e.g. road-grade
    /// code) on the direct hop `from → to`.
    pub fn add_categorical_observation(
        &mut self,
        from: LandmarkId,
        to: LandmarkId,
        feature: &str,
        code: u32,
    ) {
        *self
            .categorical
            .entry((from, to))
            .or_default()
            .entry(feature.to_owned())
            .or_default()
            .entry(code)
            .or_insert(0) += 1;
    }

    /// The regular (modal) category of `feature` on `from → to`. Ties break
    /// towards the smaller code for determinism.
    pub fn regular_category(&self, from: LandmarkId, to: LandmarkId, feature: &str) -> Option<u32> {
        let counts = self.categorical.get(&(from, to))?.get(feature)?;
        counts.iter().max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0))).map(|(code, _)| *code)
    }

    /// Number of annotated edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Flat, key-sorted export of the numeric edge statistics: one row per
    /// `(from, to, feature)` carrying the raw running-mean parts (`sum`,
    /// `count`). The exact `sum` bits survive the trip, so a map rebuilt by
    /// [`HistoricalFeatureMap::from_rows`] answers every query — and
    /// serializes — identically to the original. This is the columnar
    /// storage boundary: the binary model codec in `stmaker-io` consumes
    /// these rows without ever seeing the private map layout.
    pub fn numeric_rows(&self) -> Vec<(LandmarkId, LandmarkId, String, f64, u64)> {
        let mut rows: Vec<(LandmarkId, LandmarkId, String, f64, u64)> = self
            .edges
            // lint: ordered — rows are key-sorted below before being returned
            .iter()
            .flat_map(|(&(from, to), feats)| {
                feats.iter().map(move |(k, s)| (from, to, k.clone(), s.sum, s.count))
            })
            .collect();
        rows.sort_by(|a, b| (a.0, a.1, &a.2).cmp(&(b.0, b.1, &b.2)));
        rows
    }

    /// Flat, key-sorted export of the categorical edge statistics: one row
    /// per `(from, to, feature, code)` carrying the observation count.
    pub fn categorical_rows(&self) -> Vec<(LandmarkId, LandmarkId, String, u32, u64)> {
        let mut rows: Vec<(LandmarkId, LandmarkId, String, u32, u64)> = self
            .categorical
            // lint: ordered — rows are key-sorted below before being returned
            .iter()
            .flat_map(|(&(from, to), feats)| {
                feats.iter().flat_map(move |(k, counts)| {
                    counts.iter().map(move |(&code, &c)| (from, to, k.clone(), code, c))
                })
            })
            .collect();
        rows.sort_by(|a, b| (a.0, a.1, &a.2, a.3).cmp(&(b.0, b.1, &b.2, b.3)));
        rows
    }

    /// Rebuilds a map from [`HistoricalFeatureMap::numeric_rows`] /
    /// [`HistoricalFeatureMap::categorical_rows`] output. Duplicate rows
    /// accumulate (sums add, counts add), matching `merge` semantics; a
    /// fresh entry starts at exactly `0.0 + sum`, so single-row rebuilds
    /// preserve the original `f64` bits.
    pub fn from_rows(
        numeric: impl IntoIterator<Item = (LandmarkId, LandmarkId, String, f64, u64)>,
        categorical: impl IntoIterator<Item = (LandmarkId, LandmarkId, String, u32, u64)>,
    ) -> Self {
        let mut m = Self::default();
        for (from, to, feature, sum, count) in numeric {
            let stat = m.edges.entry((from, to)).or_default().entry(feature).or_default();
            stat.sum += sum;
            stat.count += count;
        }
        // lint: ordered — `+=` accumulation into the entry maps is commutative over rows
        for (from, to, feature, code, count) in categorical {
            *m.categorical
                .entry((from, to))
                .or_default()
                .entry(feature)
                .or_default()
                .entry(code)
                .or_insert(0) += count;
        }
        m
    }

    /// Merges another map into this one (used to combine shards built in
    /// parallel or across corpus batches).
    pub fn merge(&mut self, other: &HistoricalFeatureMap) {
        // lint: ordered — per-edge sums/counts are merged commutatively into keyed entries
        for (edge, feats) in &other.edges {
            let dst = self.edges.entry(*edge).or_default();
            for (k, s) in feats {
                let d = dst.entry(k.clone()).or_default();
                d.sum += s.sum;
                d.count += s.count;
            }
        }
        // lint: ordered — per-edge categorical counts are merged commutatively into keyed entries
        for (edge, feats) in &other.categorical {
            let dst = self.categorical.entry(*edge).or_default();
            for (k, counts) in feats {
                let d = dst.entry(k.clone()).or_default();
                for (code, c) in counts {
                    *d.entry(*code).or_insert(0) += c;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LandmarkId {
        LandmarkId(i)
    }

    #[test]
    fn averages_accumulate() {
        let mut m = HistoricalFeatureMap::new();
        m.add_observation(l(0), l(1), "speed", 40.0);
        m.add_observation(l(0), l(1), "speed", 60.0);
        m.add_observation(l(0), l(1), "speed", 50.0);
        assert_eq!(m.regular_value(l(0), l(1), "speed"), Some(50.0));
        assert_eq!(m.observation_count(l(0), l(1), "speed"), 3);
    }

    #[test]
    fn direction_matters() {
        let mut m = HistoricalFeatureMap::new();
        m.add_observation(l(0), l(1), "speed", 80.0);
        assert_eq!(m.regular_value(l(1), l(0), "speed"), None);
    }

    #[test]
    fn unknown_edges_and_features_are_none() {
        let mut m = HistoricalFeatureMap::new();
        m.add_observation(l(0), l(1), "speed", 80.0);
        assert_eq!(m.regular_value(l(0), l(2), "speed"), None);
        assert_eq!(m.regular_value(l(0), l(1), "stay_points"), None);
        assert_eq!(m.observation_count(l(0), l(2), "speed"), 0);
    }

    #[test]
    fn multiple_features_share_an_edge() {
        let mut m = HistoricalFeatureMap::new();
        m.add_observation(l(3), l(4), "speed", 30.0);
        m.add_observation(l(3), l(4), "stay_points", 2.0);
        assert_eq!(m.edge_count(), 1);
        assert_eq!(m.regular_value(l(3), l(4), "speed"), Some(30.0));
        assert_eq!(m.regular_value(l(3), l(4), "stay_points"), Some(2.0));
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = HistoricalFeatureMap::new();
        a.add_observation(l(0), l(1), "speed", 40.0);
        let mut b = HistoricalFeatureMap::new();
        b.add_observation(l(0), l(1), "speed", 60.0);
        b.add_observation(l(1), l(2), "speed", 10.0);
        a.merge(&b);
        assert_eq!(a.regular_value(l(0), l(1), "speed"), Some(50.0));
        assert_eq!(a.regular_value(l(1), l(2), "speed"), Some(10.0));
        assert_eq!(a.edge_count(), 2);
    }

    #[test]
    fn categorical_mode_and_ties() {
        let mut m = HistoricalFeatureMap::new();
        m.add_categorical_observation(l(0), l(1), "grade", 3);
        m.add_categorical_observation(l(0), l(1), "grade", 3);
        m.add_categorical_observation(l(0), l(1), "grade", 5);
        assert_eq!(m.regular_category(l(0), l(1), "grade"), Some(3));
        // Tie: smaller code wins deterministically.
        m.add_categorical_observation(l(0), l(1), "grade", 5);
        assert_eq!(m.regular_category(l(0), l(1), "grade"), Some(3));
        assert_eq!(m.regular_category(l(0), l(2), "grade"), None);
        assert_eq!(m.regular_category(l(0), l(1), "direction"), None);
    }

    #[test]
    fn merge_combines_categorical_counts() {
        let mut a = HistoricalFeatureMap::new();
        a.add_categorical_observation(l(0), l(1), "grade", 2);
        let mut b = HistoricalFeatureMap::new();
        b.add_categorical_observation(l(0), l(1), "grade", 4);
        b.add_categorical_observation(l(0), l(1), "grade", 4);
        a.merge(&b);
        assert_eq!(a.regular_category(l(0), l(1), "grade"), Some(4));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_non_finite_observations() {
        let mut m = HistoricalFeatureMap::new();
        m.add_observation(l(0), l(1), "speed", f64::NAN);
    }
}
