//! Mining the most popular route `PR` between two landmarks.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use stmaker_exec::Executor;
use stmaker_poi::LandmarkId;
use stmaker_trajectory::SymbolicTrajectory;

/// Tunables for popular-route mining.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PopularRouteConfig {
    /// Minimum number of historical traversals for the exact most-frequent
    /// sub-route to be trusted; below this the transfer-graph fallback runs.
    pub min_support: usize,
    /// Cap on sub-route length (in landmarks) indexed per trajectory; guards
    /// the O(n²) pair index on pathological inputs.
    pub max_indexed_span: usize,
}

impl Default for PopularRouteConfig {
    fn default() -> Self {
        // min_support = 1: prefer an actually-observed route whenever any
        // historical trajectory covered the pair, falling back to the
        // transfer-graph walk only for never-co-traversed pairs. Empirically
        // this is what keeps short partitions' routing features quiet when
        // the driven route IS the popular route (EXPERIMENTS.md, Fig. 10(b)).
        Self { min_support: 1, max_indexed_span: 64 }
    }
}

/// One indexed occurrence of a `(from, to)` landmark pair.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Occurrence {
    traj: u32,
    start: u32,
    end: u32,
}

/// The popular-route miner: indexes a historical symbolic-trajectory corpus
/// and answers `PR(lᵢ, lⱼ)` queries.
#[derive(Serialize, Deserialize)]
pub struct PopularRoutes {
    corpus: Vec<Vec<LandmarkId>>,
    /// All occurrences of each ordered landmark pair in the corpus.
    #[serde(with = "crate::serde_vecmap")]
    pairs: HashMap<(LandmarkId, LandmarkId), Vec<Occurrence>>,
    /// Transfer counts of *direct* hops, for the probability fallback.
    #[serde(with = "crate::serde_vecmap")]
    transfers: HashMap<LandmarkId, Vec<(LandmarkId, f64)>>,
    /// Distinct-trajectory support per pair, precomputed at build time so
    /// [`PopularRoutes::support`] is a single lookup. Empty when loaded
    /// from a model file written before this field existed; `support()`
    /// then falls back to scanning the occurrence list.
    #[serde(with = "crate::serde_vecmap", default)]
    supports: HashMap<(LandmarkId, LandmarkId), u32>,
    /// Precomputed winning route per pair whose support reaches
    /// `min_support`, so the common serving-path query is a single map
    /// probe instead of re-hashing every occurrence slice. Empty when
    /// loaded from a model file written before this field existed;
    /// `popular_route` then falls back to a (single) occurrence scan.
    #[serde(with = "crate::serde_vecmap", default)]
    winners: HashMap<(LandmarkId, LandmarkId), Vec<LandmarkId>>,
    cfg: PopularRouteConfig,
}

/// Plain-data, canonical (key-sorted) image of a [`PopularRoutes`] miner —
/// the exchange type between the miner and external codecs. Produced by
/// [`PopularRoutes::to_parts`], consumed by [`PopularRoutes::from_parts`].
#[derive(Debug, Clone, Default)]
pub struct PopularRoutesParts {
    /// Mining tunables the miner was built with.
    pub cfg: PopularRouteConfig,
    /// Landmark sequence of every indexed trajectory, in corpus order.
    pub corpus: Vec<Vec<LandmarkId>>,
    /// Key-sorted `(from, to) → (traj, start, end)` occurrence triples;
    /// each list in ascending trajectory order, exactly as stored.
    pub pairs: Vec<((LandmarkId, LandmarkId), Vec<(u32, u32, u32)>)>,
    /// Key-sorted per-source direct-hop transition lists.
    pub transfers: Vec<(LandmarkId, Vec<(LandmarkId, f64)>)>,
    /// Key-sorted distinct-trajectory support per pair.
    pub supports: Vec<((LandmarkId, LandmarkId), u32)>,
    /// Key-sorted precomputed winning route per trusted pair.
    pub winners: Vec<((LandmarkId, LandmarkId), Vec<LandmarkId>)>,
}

impl PopularRoutes {
    /// Builds the miner from a historical corpus (single-threaded).
    pub fn build<'a>(
        corpus: impl IntoIterator<Item = &'a SymbolicTrajectory>,
        cfg: PopularRouteConfig,
    ) -> Self {
        Self::build_with(corpus, cfg, &Executor::new(1))
    }

    /// Builds the miner on `exec`'s workers: each corpus shard indexes its
    /// own pair/hop maps, and the partials merge in ascending shard order.
    /// Shard order equals trajectory order, so every occurrence list comes
    /// out in ascending trajectory order and hop counts (integer-valued,
    /// exactly representable) sum identically — the result is the same for
    /// every thread count, byte-for-byte.
    pub fn build_with<'a>(
        corpus: impl IntoIterator<Item = &'a SymbolicTrajectory>,
        cfg: PopularRouteConfig,
        exec: &Executor,
    ) -> Self {
        let seqs: Vec<Vec<LandmarkId>> = corpus.into_iter().map(|t| t.landmark_seq()).collect();

        /// Per-shard slice of the pair/hop indexes.
        struct Shard {
            pairs: HashMap<(LandmarkId, LandmarkId), Vec<Occurrence>>,
            hop_counts: HashMap<(LandmarkId, LandmarkId), f64>,
        }

        let partials = exec.shard_partials(&seqs, |_, base, shard| {
            let mut pairs: HashMap<(LandmarkId, LandmarkId), Vec<Occurrence>> = HashMap::new();
            let mut hop_counts: HashMap<(LandmarkId, LandmarkId), f64> = HashMap::new();
            for (off, seq) in shard.iter().enumerate() {
                let ti = base + off;
                let n = seq.len();
                for i in 0..n {
                    let max_j = (i + cfg.max_indexed_span).min(n - 1);
                    for j in (i + 1)..=max_j {
                        pairs.entry((seq[i], seq[j])).or_default().push(Occurrence {
                            traj: ti as u32,
                            start: i as u32,
                            end: j as u32,
                        });
                    }
                }
                for w in seq.windows(2) {
                    *hop_counts.entry((w[0], w[1])).or_insert(0.0) += 1.0;
                }
            }
            Shard { pairs, hop_counts }
        });

        let mut pairs: HashMap<(LandmarkId, LandmarkId), Vec<Occurrence>> = HashMap::new();
        let mut hop_counts: HashMap<(LandmarkId, LandmarkId), f64> = HashMap::new();
        for p in partials {
            // lint: ordered — one entry per key per partial; per-key appends land in the fixed shard order of the outer loop
            for (k, mut occ) in p.pairs {
                pairs.entry(k).or_default().append(&mut occ);
            }
            // lint: ordered — per-key addition is commutative; one contribution per key per partial
            for (k, c) in p.hop_counts {
                *hop_counts.entry(k).or_insert(0.0) += c;
            }
        }

        // Normalize hop counts into per-source transition lists.
        let mut transfers: HashMap<LandmarkId, Vec<(LandmarkId, f64)>> = HashMap::new();
        // lint: ordered — (a, b) keys are unique, so each list gets one entry per target; the sort below canonicalizes
        for (&(a, b), &c) in &hop_counts {
            transfers.entry(a).or_default().push((b, c));
        }
        // lint: ordered — each list is sorted in place; the visit order of values is irrelevant
        for list in transfers.values_mut() {
            list.sort_by_key(|(l, _)| *l); // deterministic order
        }

        let supports: HashMap<(LandmarkId, LandmarkId), u32> =
            // lint: ordered — pure per-key transform collected back into a keyed map
            pairs.iter().map(|(&k, occ)| (k, distinct_trajs(occ))).collect();

        // Resolve each trusted pair's winner once, at build time. Serving
        // queries for these pairs become a single probe; only
        // below-min_support pairs ever reach the occurrence scan again.
        let winners: HashMap<(LandmarkId, LandmarkId), Vec<LandmarkId>> = pairs
            // lint: ordered — per-key resolution; most_frequent_exact is itself order-free
            .iter()
            .filter(|(k, _)| supports.get(*k).copied().unwrap_or(0) as usize >= cfg.min_support)
            .filter_map(|(&k, occ)| most_frequent_exact(&seqs, occ).map(|w| (k, w)))
            .collect();

        Self { corpus: seqs, pairs, transfers, supports, winners, cfg }
    }

    /// Number of indexed historical trajectories.
    pub fn corpus_len(&self) -> usize {
        self.corpus.len()
    }

    /// Exports the miner as a plain-data, key-sorted image. Together with
    /// [`PopularRoutes::from_parts`] this is the columnar storage boundary:
    /// the binary model codec in `stmaker-io` reads/writes these vectors
    /// without touching the private index layout. Occurrence and winner
    /// *lists* keep their stored order (it is semantically meaningful —
    /// occurrences are in ascending trajectory order); only the map keys
    /// are sorted, the same canonical order `serde_vecmap` uses.
    pub fn to_parts(&self) -> PopularRoutesParts {
        let mut pairs: Vec<((LandmarkId, LandmarkId), Vec<(u32, u32, u32)>)> = self
            .pairs
            // lint: ordered — entries are key-sorted below before being returned
            .iter()
            .map(|(&k, occ)| (k, occ.iter().map(|o| (o.traj, o.start, o.end)).collect()))
            .collect();
        pairs.sort_by_key(|(k, _)| *k);
        let mut transfers: Vec<(LandmarkId, Vec<(LandmarkId, f64)>)> = self
            .transfers
            // lint: ordered — entries are key-sorted below before being returned
            .iter()
            .map(|(&k, outs)| (k, outs.clone()))
            .collect();
        transfers.sort_by_key(|(k, _)| *k);
        let mut supports: Vec<((LandmarkId, LandmarkId), u32)> =
            // lint: ordered — entries are key-sorted below before being returned
            self.supports.iter().map(|(&k, &v)| (k, v)).collect();
        supports.sort_by_key(|(k, _)| *k);
        let mut winners: Vec<((LandmarkId, LandmarkId), Vec<LandmarkId>)> =
            // lint: ordered — entries are key-sorted below before being returned
            self.winners.iter().map(|(&k, w)| (k, w.clone())).collect();
        winners.sort_by_key(|(k, _)| *k);
        PopularRoutesParts {
            cfg: self.cfg,
            corpus: self.corpus.clone(),
            pairs,
            transfers,
            supports,
            winners,
        }
    }

    /// Rebuilds a miner from a [`PopularRoutesParts`] image. The rebuilt
    /// miner serializes byte-identically to the one `to_parts` was called
    /// on: map insertion order is irrelevant (serialization sorts keys),
    /// and list order is preserved verbatim.
    pub fn from_parts(parts: PopularRoutesParts) -> Self {
        Self {
            corpus: parts.corpus,
            pairs: parts
                .pairs
                // lint: ordered — map insertion order is irrelevant (serialization sorts keys)
                .into_iter()
                .map(|(k, occ)| {
                    (
                        k,
                        occ.into_iter()
                            .map(|(traj, start, end)| Occurrence { traj, start, end })
                            .collect(),
                    )
                })
                .collect(),
            // lint: ordered — map insertion order is irrelevant (serialization sorts keys)
            transfers: parts.transfers.into_iter().collect(),
            // lint: ordered — map insertion order is irrelevant (serialization sorts keys)
            supports: parts.supports.into_iter().collect(),
            // lint: ordered — map insertion order is irrelevant (serialization sorts keys)
            winners: parts.winners.into_iter().collect(),
            cfg: parts.cfg,
        }
    }

    /// How many *distinct* historical trajectories traverse `from … to` (in
    /// order). A looping trajectory that covers the pair several times
    /// counts once. O(1): precomputed at build time.
    pub fn support(&self, from: LandmarkId, to: LandmarkId) -> usize {
        if !self.supports.is_empty() {
            return self.supports.get(&(from, to)).copied().unwrap_or(0) as usize;
        }
        // Model files written before the precomputed table existed: the
        // occurrence lists are stored in ascending trajectory order, so a
        // linear run count gives the distinct-trajectory support.
        self.pairs.get(&(from, to)).map(|v| distinct_trajs(v) as usize).unwrap_or(0)
    }

    /// The most popular historical route from `from` to `to`, inclusive of
    /// both endpoints. Returns `None` when the corpus gives no basis at all
    /// (no exact support *and* no transfer-graph path).
    pub fn popular_route(&self, from: LandmarkId, to: LandmarkId) -> Option<Vec<LandmarkId>> {
        if from == to {
            return Some(vec![from]);
        }
        // Common case: the winner for every pair at/above min_support is
        // resolved at build time — one map probe, no occurrence re-hash.
        if let Some(winner) = self.winners.get(&(from, to)) {
            return Some(winner.clone());
        }
        // No precomputed winner: the pair is below min_support (or the
        // model file predates the winners table, leaving it empty). Scan
        // the occurrence list at most once, reusing the result for both
        // the support gate and the last-resort fallback.
        let mut scanned: Option<(u32, Option<Vec<LandmarkId>>)> = None;
        if self.winners.is_empty() {
            scanned = self.pairs.get(&(from, to)).map(|occ| scan_pair(&self.corpus, occ));
            if let Some((support, winner)) = &scanned {
                if *support as usize >= self.cfg.min_support {
                    if let Some(route) = winner {
                        return Some(route.clone());
                    }
                }
            }
        }
        self.max_probability_route(from, to).or_else(|| {
            // Last resort: any exact occurrence, even below min_support.
            match scanned {
                Some((_, winner)) => winner,
                None => self
                    .pairs
                    .get(&(from, to))
                    .and_then(|occ| most_frequent_exact(&self.corpus, occ)),
            }
        })
    }

    /// Maximum-probability walk on the transfer graph: Dijkstra on
    /// `−ln p(next | cur)` edge costs.
    fn max_probability_route(&self, from: LandmarkId, to: LandmarkId) -> Option<Vec<LandmarkId>> {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct Entry {
            cost: f64,
            node: LandmarkId,
        }
        impl Eq for Entry {}
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                // total_cmp: a real total order for the heap (see pathfind.rs).
                other.cost.total_cmp(&self.cost).then_with(|| other.node.cmp(&self.node))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut dist: HashMap<LandmarkId, f64> = HashMap::new();
        let mut prev: HashMap<LandmarkId, LandmarkId> = HashMap::new();
        let mut heap = BinaryHeap::new();
        dist.insert(from, 0.0);
        heap.push(Entry { cost: 0.0, node: from });

        while let Some(Entry { cost, node }) = heap.pop() {
            if cost > *dist.get(&node).unwrap_or(&f64::INFINITY) {
                continue;
            }
            if node == to {
                break;
            }
            let Some(outs) = self.transfers.get(&node) else { continue };
            let total: f64 = outs.iter().map(|(_, c)| c).sum();
            for (next, c) in outs {
                let p = c / total;
                let nd = cost - p.ln();
                if nd < *dist.get(next).unwrap_or(&f64::INFINITY) {
                    dist.insert(*next, nd);
                    prev.insert(*next, node);
                    heap.push(Entry { cost: nd, node: *next });
                }
            }
        }

        if !dist.contains_key(&to) {
            return None;
        }
        let mut route = vec![to];
        let mut cur = to;
        while cur != from {
            cur = prev[&cur];
            route.push(cur);
        }
        route.reverse();
        Some(route)
    }
}

/// Among the occurrences, the most frequent concrete landmark sequence
/// (`None` only for an empty occurrence list, which the pair index never
/// stores). Ties break by count, then longer, then lexicographically
/// smaller — a total order, so builds are reproducible.
fn most_frequent_exact(corpus: &[Vec<LandmarkId>], occ: &[Occurrence]) -> Option<Vec<LandmarkId>> {
    scan_pair(corpus, occ).1
}

/// One pass over an occurrence list yielding the two facts `popular_route`
/// needs: the distinct-trajectory support and the most frequent concrete
/// sequence. Folding them keeps the fallback path at a single scan.
fn scan_pair(corpus: &[Vec<LandmarkId>], occ: &[Occurrence]) -> (u32, Option<Vec<LandmarkId>>) {
    let mut counts: HashMap<&[LandmarkId], usize> = HashMap::new();
    let mut distinct = 0u32;
    let mut last = None;
    for o in occ {
        if last != Some(o.traj) {
            distinct += 1;
            last = Some(o.traj);
        }
        let seq = &corpus[o.traj as usize][o.start as usize..=o.end as usize];
        *counts.entry(seq).or_insert(0) += 1;
    }
    let winner = counts
        // lint: ordered — max_by applies a total order (count, length, lexicographic) so the reduction is order-free
        .into_iter()
        .max_by(|a, b| {
            a.1.cmp(&b.1).then_with(|| b.0.len().cmp(&a.0.len())).then_with(|| b.0.cmp(a.0))
        })
        .map(|(seq, _)| seq.to_vec());
    (distinct, winner)
}

/// Distinct trajectory ids in an occurrence list. Occurrences are inserted
/// in ascending trajectory order, so counting runs suffices — no sort.
fn distinct_trajs(occ: &[Occurrence]) -> u32 {
    let mut count = 0u32;
    let mut last = None;
    for o in occ {
        if last != Some(o.traj) {
            count += 1;
            last = Some(o.traj);
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmaker_trajectory::{SymbolicPoint, Timestamp};

    fn traj(ids: &[u32]) -> SymbolicTrajectory {
        SymbolicTrajectory::new(
            ids.iter()
                .enumerate()
                .map(|(i, l)| SymbolicPoint {
                    landmark: LandmarkId(*l),
                    t: Timestamp(60 * i as i64),
                })
                .collect(),
        )
    }

    fn l(i: u32) -> LandmarkId {
        LandmarkId(i)
    }

    #[test]
    fn exact_majority_route_wins() {
        // 0→1→2 three times, 0→3→2 once.
        let corpus = vec![traj(&[0, 1, 2]), traj(&[0, 1, 2]), traj(&[0, 1, 2]), traj(&[0, 3, 2])];
        let pr = PopularRoutes::build(&corpus, PopularRouteConfig::default());
        assert_eq!(pr.support(l(0), l(2)), 4);
        assert_eq!(pr.popular_route(l(0), l(2)).unwrap(), vec![l(0), l(1), l(2)]);
    }

    #[test]
    fn sub_routes_are_indexed() {
        let corpus = vec![traj(&[5, 6, 7, 8, 9]); 3];
        let pr = PopularRoutes::build(&corpus, PopularRouteConfig::default());
        assert_eq!(pr.popular_route(l(6), l(8)).unwrap(), vec![l(6), l(7), l(8)]);
        assert_eq!(pr.support(l(5), l(9)), 3);
    }

    #[test]
    fn fallback_stitches_transfer_graph() {
        // No single trajectory goes 0→4, but hops 0→1→2 and 2→3→4 exist.
        let corpus = vec![traj(&[0, 1, 2]), traj(&[0, 1, 2]), traj(&[2, 3, 4]), traj(&[2, 3, 4])];
        let pr = PopularRoutes::build(&corpus, PopularRouteConfig::default());
        assert_eq!(pr.support(l(0), l(4)), 0);
        assert_eq!(pr.popular_route(l(0), l(4)).unwrap(), vec![l(0), l(1), l(2), l(3), l(4)]);
    }

    #[test]
    fn fallback_prefers_frequent_transitions() {
        // From 0: to 1 nine times, to 2 once; both reach 3.
        let mut corpus = vec![traj(&[0, 2, 3])];
        for _ in 0..9 {
            corpus.push(traj(&[0, 1]));
        }
        corpus.push(traj(&[1, 3]));
        corpus.push(traj(&[1, 3]));
        // Support for (0,3) is 1 (< min_support 3) → probability fallback.
        let cfg = PopularRouteConfig { min_support: 3, ..PopularRouteConfig::default() };
        let pr = PopularRoutes::build(&corpus, cfg);
        let route = pr.popular_route(l(0), l(3)).unwrap();
        // p(1|0) = 0.9, p(3|1) = 1.0 → 0.9; p(2|0) = 0.1, p(3|2) = 1.0 → 0.1.
        assert_eq!(route, vec![l(0), l(1), l(3)]);
    }

    #[test]
    fn below_min_support_single_occurrence_still_returned_when_no_path() {
        // One lone trajectory 7→8 with landmark 8 having no other appearances:
        // transfer fallback *also* finds 7→8 (it is a direct hop), so check a
        // disconnected pair instead.
        let corpus = vec![traj(&[7, 8]), traj(&[1, 2])];
        let pr = PopularRoutes::build(&corpus, PopularRouteConfig::default());
        assert_eq!(pr.popular_route(l(7), l(8)).unwrap(), vec![l(7), l(8)]);
        assert!(pr.popular_route(l(8), l(7)).is_none());
        assert!(pr.popular_route(l(7), l(2)).is_none());
    }

    #[test]
    fn same_endpoint_is_trivial() {
        let corpus = vec![traj(&[0, 1])];
        let pr = PopularRoutes::build(&corpus, PopularRouteConfig::default());
        assert_eq!(pr.popular_route(l(0), l(0)).unwrap(), vec![l(0)]);
    }

    #[test]
    fn deterministic_tie_break() {
        // Two routes with equal frequency; result must be stable across builds.
        let corpus = vec![traj(&[0, 1, 2]), traj(&[0, 3, 2]), traj(&[0, 1, 2]), traj(&[0, 3, 2])];
        let a = PopularRoutes::build(&corpus, PopularRouteConfig::default());
        let b = PopularRoutes::build(&corpus, PopularRouteConfig::default());
        assert_eq!(a.popular_route(l(0), l(2)), b.popular_route(l(0), l(2)));
    }

    #[test]
    fn looping_trajectory_counts_once_in_support() {
        // One trajectory covering 0→1 twice (it loops back), plus a second
        // plain traversal: distinct-trajectory support is 2, not 3.
        let corpus = vec![traj(&[0, 1, 2, 0, 1]), traj(&[0, 1])];
        let pr = PopularRoutes::build(&corpus, PopularRouteConfig::default());
        assert_eq!(pr.support(l(0), l(1)), 2);
        assert_eq!(pr.support(l(1), l(0)), 1);
        assert_eq!(pr.support(l(2), l(1)), 1); // 2→0→1 via the loop
        assert_eq!(pr.support(l(9), l(0)), 0);
    }

    #[test]
    fn parallel_build_matches_sequential_build() {
        let corpus: Vec<SymbolicTrajectory> = (0..150)
            .map(|i| {
                let ids: Vec<u32> = (0..6).map(|j| (i * 7 + j * 3) % 40).collect();
                traj(&ids)
            })
            .collect();
        let seq =
            serde_json::to_string(&PopularRoutes::build(&corpus, PopularRouteConfig::default()))
                .expect("serializes");
        for threads in [2, 4, 8] {
            let par = serde_json::to_string(&PopularRoutes::build_with(
                &corpus,
                PopularRouteConfig::default(),
                &Executor::new(threads),
            ))
            .expect("serializes");
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn winner_probe_matches_legacy_scan_path() {
        // A model file written before the winners/supports tables existed
        // deserializes with both empty; answers must not change.
        let corpus: Vec<SymbolicTrajectory> = (0..60)
            .map(|i| {
                let ids: Vec<u32> = (0..5).map(|j| (i * 5 + j * 2) % 23).collect();
                traj(&ids)
            })
            .collect();
        let pr = PopularRoutes::build(&corpus, PopularRouteConfig::default());
        let mut legacy = PopularRoutes::build(&corpus, PopularRouteConfig::default());
        legacy.winners = HashMap::new();
        legacy.supports = HashMap::new();
        for a in 0..23 {
            for b in 0..23 {
                assert_eq!(
                    pr.popular_route(l(a), l(b)),
                    legacy.popular_route(l(a), l(b)),
                    "pair ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn winners_respect_min_support() {
        let cfg = PopularRouteConfig { min_support: 2, ..PopularRouteConfig::default() };
        let corpus = vec![traj(&[0, 1, 2]), traj(&[0, 1, 2]), traj(&[5, 6])];
        let pr = PopularRoutes::build(&corpus, cfg);
        assert!(pr.winners.contains_key(&(l(0), l(2))));
        assert!(!pr.winners.contains_key(&(l(5), l(6))));
        // The below-threshold pair is still answered via the fallback.
        assert_eq!(pr.popular_route(l(5), l(6)).unwrap(), vec![l(5), l(6)]);
    }

    #[test]
    fn max_indexed_span_caps_pair_index() {
        let cfg = PopularRouteConfig { min_support: 1, max_indexed_span: 2 };
        let corpus = vec![traj(&[0, 1, 2, 3, 4])];
        let pr = PopularRoutes::build(&corpus, cfg);
        // Span-2 pair is indexed…
        assert_eq!(pr.support(l(0), l(2)), 1);
        // …span-4 pair is not, but the transfer fallback still answers.
        assert_eq!(pr.support(l(0), l(4)), 0);
        assert_eq!(pr.popular_route(l(0), l(4)).unwrap(), vec![l(0), l(1), l(2), l(3), l(4)]);
    }
}
