//! Property tests for [`HistoricalFeatureMap::merge`] — the property the
//! parallel trainer leans on: splitting an observation stream into any
//! consecutive shards, building a partial map per shard, and merging the
//! partials in shard order must reproduce sequential insertion exactly, and
//! merge must be associative.
//!
//! Observation values are generated as small multiples of 0.25 so every
//! partial sum is exactly representable in an f64: the properties then hold
//! bit-for-bit, not just approximately, which is exactly the determinism
//! contract `Summarizer::train` relies on (DESIGN.md §10).

use proptest::prelude::*;
use stmaker_poi::LandmarkId;
use stmaker_routes::HistoricalFeatureMap;

/// One generated observation: (from, to, numeric-or-categorical, feature
/// index, quantized value).
type Ob = (u32, u32, u8, u8, u32);

const KEYS: [&str; 3] = ["speed", "stops", "grade"];

fn apply(m: &mut HistoricalFeatureMap, obs: &[Ob]) {
    for &(from, to, kind, feat, val) in obs {
        let (from, to) = (LandmarkId(from), LandmarkId(to));
        let key = KEYS[feat as usize % KEYS.len()];
        if kind == 0 {
            // Multiples of 0.25 up to 8.0: exactly representable, and sums
            // of ≤ 60 of them stay exact, so grouping cannot change them.
            m.add_observation(from, to, key, f64::from(val) * 0.25);
        } else {
            m.add_categorical_observation(from, to, key, val % 5);
        }
    }
}

/// Builds one partial per consecutive shard of `obs` (split at the given
/// cut points) and merges the partials in shard order.
fn build_sharded(obs: &[Ob], cuts: &[usize]) -> HistoricalFeatureMap {
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (obs.len() + 1)).collect();
    bounds.push(0);
    bounds.push(obs.len());
    bounds.sort_unstable();
    let mut merged = HistoricalFeatureMap::new();
    for w in bounds.windows(2) {
        let mut partial = HistoricalFeatureMap::new();
        apply(&mut partial, &obs[w[0]..w[1]]);
        merged.merge(&partial);
    }
    merged
}

/// Canonical form for exact comparison (sorted map serialization; exact
/// f64 sums make byte equality meaningful).
fn canon(m: &HistoricalFeatureMap) -> String {
    serde_json::to_string(m).expect("feature maps serialize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_shard_split_matches_sequential_insertion(
        obs in prop::collection::vec((0u32..4, 0u32..4, 0u8..2, 0u8..3, 0u32..32), 0..60),
        cuts in prop::collection::vec(0usize..61, 0..6),
    ) {
        let mut sequential = HistoricalFeatureMap::new();
        apply(&mut sequential, &obs);
        let sharded = build_sharded(&obs, &cuts);

        prop_assert_eq!(canon(&sharded), canon(&sequential));

        // Spot-check the query surface too, not just the serialized form.
        for from in 0..4u32 {
            for to in 0..4u32 {
                let (f, t) = (LandmarkId(from), LandmarkId(to));
                for key in KEYS {
                    prop_assert_eq!(sharded.regular_value(f, t, key), sequential.regular_value(f, t, key));
                    prop_assert_eq!(sharded.regular_category(f, t, key), sequential.regular_category(f, t, key));
                    prop_assert_eq!(sharded.observation_count(f, t, key), sequential.observation_count(f, t, key));
                }
            }
        }
    }

    #[test]
    fn merge_is_associative(
        a in prop::collection::vec((0u32..4, 0u32..4, 0u8..2, 0u8..3, 0u32..32), 0..30),
        b in prop::collection::vec((0u32..4, 0u32..4, 0u8..2, 0u8..3, 0u32..32), 0..30),
        c in prop::collection::vec((0u32..4, 0u32..4, 0u8..2, 0u8..3, 0u32..32), 0..30),
    ) {
        let build = |obs: &[Ob]| {
            let mut m = HistoricalFeatureMap::new();
            apply(&mut m, obs);
            m
        };

        // (a ⊕ b) ⊕ c
        let mut left = build(&a);
        left.merge(&build(&b));
        left.merge(&build(&c));

        // a ⊕ (b ⊕ c)
        let mut bc = build(&b);
        bc.merge(&build(&c));
        let mut right = build(&a);
        right.merge(&bc);

        prop_assert_eq!(canon(&left), canon(&right));
    }
}
