//! Property-based tests for the recorder: span durations are
//! non-negative, nesting follows open/close order, parents contain their
//! children, histogram percentiles stay ordered and bounded, and the
//! event journal honors its ring-buffer contract (capacity bound,
//! drop-oldest ordering, overflow accounting, and begin/end pairing
//! surviving overflow).

use proptest::prelude::*;
use stmaker_obs::{
    chrome_trace, validate_chrome_trace, EventKind, Histogram, Journal, Recorder, Span, SpanNode,
    TraceClock,
};

/// Interprets a program of open/close operations against a recorder,
/// keeping guards on a stack so drops close innermost-first. Returns the
/// expected (name, depth) sequence of opens for shape checking.
fn run_program(obs: &Recorder, ops: &[(u8, u8)]) -> Vec<(String, usize)> {
    let mut guards: Vec<Span> = Vec::new();
    let mut opened = Vec::new();
    for (op, name) in ops {
        if *op == 1 {
            let name = format!("s{}", name % 4);
            opened.push((name.clone(), guards.len()));
            guards.push(obs.span(&name));
        } else if guards.pop().is_some() {
            // guard dropped here, closing the innermost span
        }
    }
    while guards.pop().is_some() {}
    opened
}

/// Depth-first walk collecting (name, depth, calls, total_ms) rows.
fn flatten(nodes: &[SpanNode], depth: usize, out: &mut Vec<(String, usize, u64, f64)>) {
    for n in nodes {
        out.push((n.name.clone(), depth, n.calls, n.total_ms));
        flatten(&n.children, depth + 1, out);
    }
}

/// Sum of direct children's total_ms per node must not exceed the node's
/// own total (children intervals nest strictly inside the parent's).
fn check_containment(nodes: &[SpanNode]) -> Result<(), String> {
    for n in nodes {
        let child_sum: f64 = n.children.iter().map(|c| c.total_ms).sum();
        if child_sum > n.total_ms + 1e-6 {
            return Err(format!(
                "span `{}`: children total {child_sum} ms exceeds own {} ms",
                n.name, n.total_ms
            ));
        }
        check_containment(&n.children)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn span_trees_nest_correctly_with_non_negative_durations(
        ops in prop::collection::vec((0u8..2, 0u8..8), 0..40),
    ) {
        let obs = Recorder::enabled();
        let opened = run_program(&obs, &ops);
        let report = obs.report();

        let mut rows = Vec::new();
        flatten(&report.spans, 0, &mut rows);

        // Durations are non-negative and call counts positive everywhere.
        for (name, _, calls, total_ms) in &rows {
            prop_assert!(*calls >= 1, "span `{name}` reported without calls");
            prop_assert!(*total_ms >= 0.0, "span `{name}` has negative duration");
            prop_assert!(total_ms.is_finite());
        }

        // Every (name, depth) that was opened appears at that depth, and
        // nothing appears that was never opened there.
        for (name, depth) in &opened {
            prop_assert!(
                rows.iter().any(|(n, d, _, _)| n == name && d == depth),
                "opened span `{name}` at depth {depth} missing from the tree"
            );
        }
        for (name, depth, _, _) in &rows {
            prop_assert!(
                opened.iter().any(|(n, d)| n == name && d == depth),
                "tree invented span `{name}` at depth {depth}"
            );
        }

        // Total calls across the tree equals the number of opens.
        let total_calls: u64 = rows.iter().map(|(_, _, c, _)| *c).sum();
        prop_assert_eq!(total_calls, opened.len() as u64);

        // Parents contain their children.
        if let Err(msg) = check_containment(&report.spans) {
            prop_assert!(false, "{}", msg);
        }

        // Each close also feeds the histogram of the span's name.
        for (name, _) in &opened {
            prop_assert!(report.histograms.contains_key(name));
        }
    }

    #[test]
    fn histogram_percentiles_are_ordered_and_bounded(
        samples in prop::collection::vec(0.0f64..10_000.0, 1..200),
    ) {
        let mut h = Histogram::default_ms();
        for s in &samples {
            h.record(*s);
        }
        let sum: f64 = samples.iter().sum();
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let s = h.summary().expect("non-empty");
        prop_assert_eq!(s.count, samples.len() as u64);
        prop_assert!((s.sum - sum).abs() < 1e-6 * (1.0 + sum.abs()));
        prop_assert_eq!(s.min, min);
        prop_assert_eq!(s.max, max);
        prop_assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max,
            "percentiles out of order: {:?}", s);
        prop_assert!(s.mean >= s.min && s.mean <= s.max);
    }

    #[test]
    fn journal_ring_bounds_retention_and_drops_oldest_first(
        capacity in 1usize..32,
        pushes in prop::collection::vec(0u8..4, 0..200),
    ) {
        let mut j = Journal::new(capacity);
        for (i, name) in pushes.iter().enumerate() {
            j.push(EventKind::Instant, &format!("e{name}"), 0, 0, i as u64, &[]);
        }
        let events = j.events();
        // Capacity bound.
        prop_assert!(events.len() <= capacity, "{} > {capacity}", events.len());
        // Drained count + dropped == total pushed.
        prop_assert_eq!(events.len() as u64 + j.dropped(), j.total_pushed());
        prop_assert_eq!(j.total_pushed(), pushes.len() as u64);
        // Drop-oldest: the retained window is the contiguous newest
        // suffix, in ascending seq order.
        if let Some(oldest) = j.oldest_seq() {
            prop_assert_eq!(oldest, j.dropped(), "everything below oldest was dropped");
            for (k, e) in events.iter().enumerate() {
                prop_assert_eq!(e.seq, oldest + k as u64, "drain order is ascending seq");
            }
        } else {
            prop_assert!(pushes.is_empty() || capacity == 0);
        }
    }

    #[test]
    fn begin_end_pairing_survives_overflow(
        capacity in 1usize..48,
        ops in prop::collection::vec((0u8..2, 0u8..4), 0..120),
    ) {
        let obs = Recorder::enabled_with_journal(capacity);
        let opened = run_program(&obs, &ops);
        // The report's drop counter and the journal agree.
        let report = obs.report();
        prop_assert_eq!(report.counters["obs.events_dropped"], obs.journal_dropped());
        let events = obs.journal_events();
        prop_assert!(events.len() <= capacity);
        prop_assert_eq!(
            events.len() as u64 + obs.journal_dropped(),
            2 * opened.len() as u64,
            "every span contributes exactly one begin and one end"
        );
        // After dropping ends whose begins were shed, the exported trace
        // still has balanced pairs and monotone timestamps.
        let text = chrome_trace(&events, TraceClock::Logical);
        let stats = validate_chrome_trace(&text);
        prop_assert!(stats.is_ok(), "{:?}", stats.err());
    }

    #[test]
    fn quantile_is_monotone_in_q(
        samples in prop::collection::vec(0.0f64..1_000.0, 1..100),
        qs in prop::collection::vec(0.0f64..=1.0, 2..10),
    ) {
        let mut h = Histogram::default_ms();
        for s in &samples {
            h.record(*s);
        }
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        let values: Vec<f64> = qs.iter().map(|q| h.quantile(*q).expect("non-empty")).collect();
        for w in values.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {values:?} for {qs:?}");
        }
    }
}
