//! The machine-readable telemetry snapshot and its schema checks.
//!
//! One schema serves every producer — `stmaker-cli --metrics-json`, the
//! Fig. 12 eval binary, and the benches' `BENCH_obs.json` — so the perf
//! trajectory can be diffed across PRs. The top level is always an object
//! with the four keys in [`REQUIRED_KEYS`] (plus the optional `exemplars`
//! and `windows` arrays added by observability v2); [`validate_json`] is
//! the single gate used by `cargo xtask obs-schema` and CI.
//!
//! Serialization is **byte-stable**: counters/gauges/histograms are
//! ordered maps already, and [`Report::to_json_pretty`] additionally
//! sorts span trees by name, exemplars by duration, and windows by index
//! before writing — two runs over identical inputs (and a
//! parse → re-serialize round trip) produce identical bytes, which is
//! what lets `stmaker obs diff` and CI compare reports textually.

use crate::exemplar::Exemplar;
use crate::hist::HistogramSummary;
use crate::window::WindowSummary;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The top-level keys every report JSON must carry.
pub const REQUIRED_KEYS: [&str; 4] = ["spans", "counters", "gauges", "histograms"];

/// A snapshot of everything a [`Recorder`](crate::Recorder) collected.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Report {
    /// Aggregated span trees, in first-seen order (sorted by name when
    /// serialized).
    pub spans: Vec<SpanNode>,
    /// Saturating event counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries (empty histograms are omitted).
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Top-K slowest per-trip breakdowns (absent in pre-v2 reports).
    #[serde(default)]
    pub exemplars: Vec<Exemplar>,
    /// Sliding-window summaries from the streaming path (absent in
    /// pre-v2 reports).
    #[serde(default)]
    pub windows: Vec<WindowSummary>,
}

/// One aggregated span: every entry of the same name under the same
/// parent folds into a single node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanNode {
    /// Span name (stage name in the pipeline schema).
    pub name: String,
    /// Times the span was entered and closed.
    pub calls: u64,
    /// Total wall-clock across all calls, milliseconds.
    pub total_ms: f64,
    /// Child spans, in first-seen order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Mean wall-clock per call, milliseconds (0 when never called).
    pub fn mean_ms(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            // cast-ok: call count precision beyond 2^53 is irrelevant for a mean
            self.total_ms / self.calls as f64
        }
    }
}

fn sort_spans(spans: &mut [SpanNode]) {
    spans.sort_by(|a, b| a.name.cmp(&b.name));
    for s in spans {
        sort_spans(&mut s.children);
    }
}

impl Report {
    /// A clone with every collection in canonical order: span trees
    /// sorted by name at every level, exemplars by duration (then id),
    /// windows by index. Maps are `BTreeMap`s and need no work.
    pub fn normalized(&self) -> Report {
        let mut out = self.clone();
        sort_spans(&mut out.spans);
        out.exemplars
            .sort_by(|a, b| b.total_ms.total_cmp(&a.total_ms).then_with(|| a.id.cmp(&b.id)));
        out.windows.sort_by_key(|w| w.index);
        out
    }

    /// Serializes to pretty JSON (the `BENCH_obs.json` /
    /// `--metrics-json` format), in canonical order — byte-stable for
    /// identical recorded state.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(&self.normalized()).unwrap_or_else(|_| "{}".to_owned())
    }

    /// Parses a report back from JSON. Reports written before
    /// observability v2 (no `exemplars`/`windows` keys) parse with empty
    /// defaults.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Writes the pretty JSON form to `path`.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut body = self.to_json_pretty();
        body.push('\n');
        std::fs::write(path, body)
    }

    /// Every span name appearing anywhere in the tree.
    pub fn span_names(&self) -> BTreeSet<String> {
        fn walk(nodes: &[SpanNode], out: &mut BTreeSet<String>) {
            for n in nodes {
                out.insert(n.name.clone());
                walk(&n.children, out);
            }
        }
        let mut out = BTreeSet::new();
        walk(&self.spans, &mut out);
        out
    }
}

/// Validates that `text` is a report-shaped JSON document: a top-level
/// object with all [`REQUIRED_KEYS`], `spans` an array and the other
/// three objects; when the optional `exemplars`/`windows` keys are
/// present they must be arrays of the right shape. Returns the set of
/// span names found (for stage-presence checks). This is deliberately
/// structural, not a full deserialization, so it also guards against a
/// future producer drifting the schema.
pub fn validate_json(text: &str) -> Result<BTreeSet<String>, String> {
    let value: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let serde_json::Value::Map(entries) = &value else {
        return Err("top level must be a JSON object".to_owned());
    };
    for key in REQUIRED_KEYS {
        let Some(v) = entries.iter().find(|(k, _)| k == key).map(|(_, v)| v) else {
            return Err(format!("missing required top-level key `{key}`"));
        };
        let ok = match key {
            "spans" => matches!(v, serde_json::Value::Seq(_)),
            _ => matches!(v, serde_json::Value::Map(_)),
        };
        if !ok {
            let want = if key == "spans" { "array" } else { "object" };
            return Err(format!("top-level key `{key}` must be a JSON {want}"));
        }
    }
    let mut names = BTreeSet::new();
    if let Some(spans) = value.get("spans") {
        collect_span_names(spans, &mut names)?;
    }
    if let Some(exemplars) = entries.iter().find(|(k, _)| k == "exemplars").map(|(_, v)| v) {
        validate_exemplars(exemplars)?;
    }
    if let Some(windows) = entries.iter().find(|(k, _)| k == "windows").map(|(_, v)| v) {
        validate_windows(windows)?;
    }
    Ok(names)
}

fn collect_span_names(spans: &serde_json::Value, out: &mut BTreeSet<String>) -> Result<(), String> {
    let serde_json::Value::Seq(items) = spans else {
        return Err("`spans`/`children` must be arrays".to_owned());
    };
    for item in items {
        let Some(name) = item.get("name").and_then(|n| n.as_str()) else {
            return Err("every span needs a string `name`".to_owned());
        };
        out.insert(name.to_owned());
        if let Some(children) = item.get("children") {
            collect_span_names(children, out)?;
        }
    }
    Ok(())
}

fn validate_exemplars(exemplars: &serde_json::Value) -> Result<(), String> {
    let serde_json::Value::Seq(items) = exemplars else {
        return Err("`exemplars` must be an array".to_owned());
    };
    for item in items {
        if item.get("id").and_then(|v| v.as_str()).is_none() {
            return Err("every exemplar needs a string `id`".to_owned());
        }
        if item.get("total_ms").and_then(|v| v.as_f64()).is_none() {
            return Err("every exemplar needs a numeric `total_ms`".to_owned());
        }
        if !matches!(item.get("stages"), Some(serde_json::Value::Map(_))) {
            return Err("every exemplar needs a `stages` object".to_owned());
        }
    }
    Ok(())
}

fn validate_windows(windows: &serde_json::Value) -> Result<(), String> {
    let serde_json::Value::Seq(items) = windows else {
        return Err("`windows` must be an array".to_owned());
    };
    for item in items {
        if item.get("index").and_then(|v| v.as_u64()).is_none() {
            return Err("every window needs a non-negative integer `index`".to_owned());
        }
        if !matches!(item.get("counters"), Some(serde_json::Value::Map(_))) {
            return Err("every window needs a `counters` object".to_owned());
        }
        if !matches!(item.get("histograms"), Some(serde_json::Value::Map(_))) {
            return Err("every window needs a `histograms` object".to_owned());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample_report() -> Report {
        let obs = Recorder::enabled();
        {
            let _root = obs.span("summarize");
            let _stage = obs.span("partition");
        }
        obs.add("partition.dp_cells", 99);
        obs.gauge("k", 3.0);
        obs.observe_ms("summarize", 1.5);
        obs.report()
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let json = report.to_json_pretty();
        let back = Report::from_json(&json).expect("round-trips");
        assert_eq!(back.counters["partition.dp_cells"], 99);
        assert_eq!(back.spans[0].name, "summarize");
        assert_eq!(back.spans[0].children[0].name, "partition");
        assert_eq!(back.span_names(), report.span_names());
        assert!(back.exemplars.is_empty() && back.windows.is_empty());
    }

    #[test]
    fn serialization_is_byte_stable() {
        let report = sample_report();
        assert_eq!(report.to_json_pretty(), report.to_json_pretty(), "same state, same bytes");
        // A parse → re-serialize round trip is also byte-identical.
        let json = report.to_json_pretty();
        let back = Report::from_json(&json).expect("round-trips");
        assert_eq!(back.to_json_pretty(), json);
    }

    #[test]
    fn serialization_sorts_spans_by_name_recursively() {
        let obs = Recorder::enabled();
        {
            let _z = obs.span("zeta");
        }
        {
            let _a = obs.span("alpha");
            {
                let _d = obs.span("delta");
            }
            {
                let _b = obs.span("beta");
            }
        }
        let json = obs.report().to_json_pretty();
        let back = Report::from_json(&json).expect("round-trips");
        let roots: Vec<&str> = back.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(roots, ["alpha", "zeta"]);
        let kids: Vec<&str> = back.spans[0].children.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(kids, ["beta", "delta"]);
    }

    #[test]
    fn pre_v2_reports_without_new_keys_still_parse() {
        let legacy = r#"{"spans": [], "counters": {"c.x": 1}, "gauges": {}, "histograms": {}}"#;
        let report = Report::from_json(legacy).expect("legacy parses");
        assert!(report.exemplars.is_empty() && report.windows.is_empty());
        assert!(validate_json(legacy).is_ok());
    }

    #[test]
    fn validate_accepts_real_reports_and_returns_span_names() {
        let json = sample_report().to_json_pretty();
        let names = validate_json(&json).expect("valid");
        assert!(names.contains("summarize") && names.contains("partition"), "{names:?}");
    }

    #[test]
    fn validate_rejects_missing_keys_and_wrong_shapes() {
        assert!(validate_json("[1, 2]").unwrap_err().contains("object"));
        assert!(validate_json("{not json").unwrap_err().contains("not valid JSON"));
        let err = validate_json(r#"{"spans": [], "counters": {}, "gauges": {}}"#).unwrap_err();
        assert!(err.contains("histograms"), "{err}");
        let err = validate_json(r#"{"spans": {}, "counters": {}, "gauges": {}, "histograms": {}}"#)
            .unwrap_err();
        assert!(err.contains("array"), "{err}");
        let err = validate_json(
            r#"{"spans": [{"calls": 1}], "counters": {}, "gauges": {}, "histograms": {}}"#,
        )
        .unwrap_err();
        assert!(err.contains("name"), "{err}");
    }

    #[test]
    fn validate_checks_exemplar_and_window_shapes() {
        let base = r#"{"spans": [], "counters": {}, "gauges": {}, "histograms": {}"#;
        let bad = format!(r#"{base}, "exemplars": {{}}}}"#);
        assert!(validate_json(&bad).unwrap_err().contains("exemplars"), "{bad}");
        let bad = format!(r#"{base}, "exemplars": [{{"id": "t"}}]}}"#);
        assert!(validate_json(&bad).unwrap_err().contains("total_ms"));
        let bad = format!(r#"{base}, "exemplars": [{{"id": "t", "total_ms": 1.0}}]}}"#);
        assert!(validate_json(&bad).unwrap_err().contains("stages"));
        let ok = format!(
            r#"{base}, "exemplars": [{{"id": "t", "total_ms": 1.0, "stages": {{"p": 0.5}}}}]}}"#
        );
        assert!(validate_json(&ok).is_ok(), "{ok}");
        let bad = format!(r#"{base}, "windows": [{{"counters": {{}}}}]}}"#);
        assert!(validate_json(&bad).unwrap_err().contains("index"));
        let ok = format!(
            r#"{base}, "windows": [{{"index": 3, "counters": {{}}, "histograms": {{}}}}]}}"#
        );
        assert!(validate_json(&ok).is_ok(), "{ok}");
    }

    #[test]
    fn exemplars_and_windows_round_trip() {
        let obs = Recorder::enabled();
        let mut stages = BTreeMap::new();
        stages.insert("partition".to_owned(), 2.0);
        obs.exemplar(Exemplar { id: "trip_3".into(), total_ms: 2.5, stages });
        let mut w = crate::SlidingWindow::new(2);
        w.add(1, "stream.window.points", 4);
        obs.set_windows(w.summaries());
        let json = obs.report().to_json_pretty();
        assert!(validate_json(&json).is_ok(), "{json}");
        let back = Report::from_json(&json).expect("round-trips");
        assert_eq!(back.exemplars.len(), 1);
        assert_eq!(back.exemplars[0].id, "trip_3");
        assert_eq!(back.exemplars[0].stages["partition"], 2.0);
        assert_eq!(back.windows.len(), 1);
        assert_eq!(back.windows[0].counters["stream.window.points"], 4);
    }

    #[test]
    fn empty_report_is_valid() {
        let names = validate_json(&Report::default().to_json_pretty()).expect("valid");
        assert!(names.is_empty());
    }

    #[test]
    fn mean_ms_handles_zero_calls() {
        let node = SpanNode { name: "x".into(), calls: 0, total_ms: 0.0, children: vec![] };
        assert_eq!(node.mean_ms(), 0.0);
        let node = SpanNode { name: "x".into(), calls: 4, total_ms: 10.0, children: vec![] };
        assert_eq!(node.mean_ms(), 2.5);
    }
}
