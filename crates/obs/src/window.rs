//! Sliding-window metrics for streaming summarization.
//!
//! A never-ending stream (the online-segmentation framing) needs
//! per-window visibility, not end-of-run totals. Windows are keyed by a
//! **data-derived index** — for `StreamingSummarizer`, the point
//! timestamps divided by the window length — never by wall clock, so the
//! same input stream always yields the same window boundaries and the
//! same summaries (the L5 determinism contract).
//!
//! The store keeps the most recent `capacity` windows; older windows are
//! evicted front-first and counted, mirroring the journal's drop-oldest
//! policy.

use crate::hist::{Histogram, HistogramSummary};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Default number of retained windows.
pub const DEFAULT_WINDOW_CAPACITY: usize = 8;

/// The serializable snapshot of one window: its index plus the counters
/// and histogram summaries accumulated while it was current.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WindowSummary {
    /// Data-derived window index (e.g. `(t - t0) / window_secs`).
    pub index: u64,
    /// Saturating per-window counters.
    pub counters: BTreeMap<String, u64>,
    /// Per-window histogram summaries (empty histograms are omitted).
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// Live accumulation state for one window.
#[derive(Debug, Default)]
struct WindowState {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A bounded store of per-window counters and histograms.
#[derive(Debug)]
pub struct SlidingWindow {
    capacity: usize,
    windows: VecDeque<(u64, WindowState)>,
    evicted: u64,
}

impl Default for SlidingWindow {
    fn default() -> Self {
        Self::new(DEFAULT_WINDOW_CAPACITY)
    }
}

impl SlidingWindow {
    /// A store retaining at most `capacity` windows (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), windows: VecDeque::new(), evicted: 0 }
    }

    /// Retained-window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Windows evicted so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The window state for `index`, creating (and evicting) as needed.
    /// Indices are expected to be non-decreasing; a stale index that was
    /// already evicted is folded into the oldest retained window so no
    /// sample is silently lost.
    fn window_mut(&mut self, index: u64) -> &mut WindowState {
        let pos = self.windows.iter().position(|(i, _)| *i == index);
        if let Some(pos) = pos {
            // `pos` came from a successful search just above.
            return &mut self.windows[pos].1;
        }
        let newest = self.windows.back().map(|(i, _)| *i);
        if matches!(newest, Some(n) if index < n) {
            // Already-evicted index: fold into the oldest retained window
            // (non-empty here, since `newest` was `Some`).
            return &mut self.windows[0].1;
        }
        if self.windows.len() >= self.capacity {
            self.windows.pop_front();
            self.evicted = self.evicted.saturating_add(1);
        }
        self.windows.push_back((index, WindowState::default()));
        let last = self.windows.len() - 1;
        &mut self.windows[last].1
    }

    /// Adds `by` to the named counter in window `index` (saturating).
    pub fn add(&mut self, index: u64, name: &str, by: u64) {
        let w = self.window_mut(index);
        let c = w.counters.entry(name.to_owned()).or_insert(0);
        *c = c.saturating_add(by);
    }

    /// Records one millisecond sample into the named histogram in window
    /// `index`.
    pub fn observe_ms(&mut self, index: u64, name: &str, ms: f64) {
        self.window_mut(index)
            .histograms
            .entry(name.to_owned())
            .or_insert_with(Histogram::default_ms)
            .record(ms);
    }

    /// Snapshots the retained windows, oldest first.
    pub fn summaries(&self) -> Vec<WindowSummary> {
        self.windows
            .iter()
            .map(|(index, w)| WindowSummary {
                index: *index,
                counters: w.counters.clone(),
                histograms: w
                    .histograms
                    .iter()
                    .filter_map(|(k, h)| h.summary().map(|s| (k.clone(), s)))
                    .collect(),
            })
            .collect()
    }

    /// The newest window index seen, if any.
    pub fn current_index(&self) -> Option<u64> {
        self.windows.back().map(|(i, _)| *i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms_accumulate_per_window() {
        let mut w = SlidingWindow::new(4);
        w.add(0, "stream.window.points", 3);
        w.add(0, "stream.window.points", 2);
        w.observe_ms(0, "stream.window.refresh_ms", 1.5);
        w.add(1, "stream.window.points", 7);
        let s = w.summaries();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].index, 0);
        assert_eq!(s[0].counters["stream.window.points"], 5);
        assert_eq!(s[0].histograms["stream.window.refresh_ms"].count, 1);
        assert_eq!(s[1].counters["stream.window.points"], 7);
        assert_eq!(w.current_index(), Some(1));
    }

    #[test]
    fn capacity_bounds_retention_and_counts_evictions() {
        let mut w = SlidingWindow::new(2);
        for i in 0..5u64 {
            w.add(i, "stream.window.points", 1);
        }
        let s = w.summaries();
        let idx: Vec<u64> = s.iter().map(|x| x.index).collect();
        assert_eq!(idx, [3, 4], "newest two retained, oldest first");
        assert_eq!(w.evicted(), 3);
    }

    #[test]
    fn stale_index_folds_into_the_oldest_window() {
        let mut w = SlidingWindow::new(2);
        w.add(5, "stream.window.points", 1);
        w.add(6, "stream.window.points", 1);
        w.add(0, "stream.window.points", 9); // evicted window: folds into 5
        let s = w.summaries();
        assert_eq!(s[0].index, 5);
        assert_eq!(s[0].counters["stream.window.points"], 10);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let mut w = SlidingWindow::new(2);
        w.add(3, "stream.window.refreshes", 2);
        w.observe_ms(3, "stream.window.refresh_ms", 0.7);
        let s = w.summaries();
        let json = serde_json::to_string(&s[0]).unwrap_or_default();
        let back: WindowSummary = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(back, s[0]);
    }
}
