//! Chrome trace-event (`about://tracing` / Perfetto) JSON export.
//!
//! Two producers share the format:
//!
//! * [`chrome_trace`] turns the journal's event stream into `B`/`E`/`i`
//!   phase events — the full event-level view, one entry per journal
//!   event.
//! * [`Report::to_chrome_trace`] turns the *aggregated* span tree into
//!   `X` complete events laid out sequentially — a coarse view for runs
//!   that recorded no journal.
//!
//! Timestamps come from a [`TraceClock`]:
//!
//! * `Wall` — the journal's monotonic nanoseconds, exported as integer
//!   microseconds. Real durations, but two runs never byte-match.
//! * `Logical` — each event's drain position as its microsecond
//!   timestamp. Durations become event counts, but the bytes are a pure
//!   function of the event *structure*, so two runs over identical
//!   inputs produce byte-identical traces at any `--threads` value
//!   (the `span_observed`/`replay_span` determinism contract). This is
//!   the default for `--trace-out`.
//!
//! Both clocks emit integer timestamps only, so the serialized text
//! never depends on float formatting.

use crate::journal::{ArgValue, Event, EventKind};
use crate::report::{Report, SpanNode};
use serde_json::{json, Value};
use std::collections::BTreeSet;

/// Timestamp source for exported traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceClock {
    /// Journal monotonic time, integer microseconds.
    Wall,
    /// Drain position as microseconds: byte-stable across runs and
    /// thread counts.
    #[default]
    Logical,
}

impl TraceClock {
    /// Parses `"wall"` / `"logical"` (the `--trace-clock` CLI values).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "wall" => Some(Self::Wall),
            "logical" => Some(Self::Logical),
            _ => None,
        }
    }
}

fn arg_value(v: &ArgValue) -> Value {
    match v {
        ArgValue::U64(n) => Value::U64(*n),
        ArgValue::F64(x) => Value::F64(*x),
        ArgValue::Str(s) => Value::Str((*s).to_owned()),
    }
}

fn event_args(e: &Event) -> Value {
    let mut entries: Vec<(String, Value)> = vec![
        ("trace_id".to_owned(), Value::U64(e.trace_id)),
        ("span_id".to_owned(), Value::U64(e.span_id)),
        ("parent_id".to_owned(), Value::U64(e.parent_id)),
    ];
    for (k, v) in &e.args {
        entries.push(((*k).to_owned(), arg_value(v)));
    }
    Value::Map(entries)
}

fn metadata_event() -> Value {
    json!({
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "tid": 1,
        "args": { "name": "stmaker" },
    })
}

/// Renders journal events as a Chrome trace-event JSON document.
///
/// End events whose matching begin was shed by the journal's drop-oldest
/// overflow are skipped, so the exported trace always has balanced
/// `B`/`E` pairs (still-open spans keep their `B`, which viewers accept).
pub fn chrome_trace(events: &[Event], clock: TraceClock) -> String {
    let begun: BTreeSet<u64> =
        events.iter().filter(|e| e.kind == EventKind::Begin).map(|e| e.span_id).collect();
    let mut out: Vec<Value> = vec![metadata_event()];
    for (i, e) in events.iter().enumerate() {
        let ts = match clock {
            TraceClock::Wall => e.ts_ns / 1_000,
            TraceClock::Logical => i as u64,
        };
        let entry = match e.kind {
            EventKind::Begin => json!({
                "name": e.name,
                "cat": "stmaker",
                "ph": "B",
                "ts": ts,
                "pid": 1,
                "tid": 1,
                "args": event_args(e),
            }),
            EventKind::End => {
                if !begun.contains(&e.span_id) {
                    continue; // begin was dropped by ring overflow
                }
                json!({
                    "name": e.name,
                    "cat": "stmaker",
                    "ph": "E",
                    "ts": ts,
                    "pid": 1,
                    "tid": 1,
                })
            }
            EventKind::Instant => json!({
                "name": e.name,
                "cat": "stmaker",
                "ph": "i",
                "ts": ts,
                "pid": 1,
                "tid": 1,
                "s": "t",
                "args": event_args(e),
            }),
        };
        out.push(entry);
    }
    let doc = json!({ "traceEvents": out, "displayTimeUnit": "ms" });
    serde_json::to_string(&doc).unwrap_or_else(|_| "{}".to_owned())
}

impl Report {
    /// Renders the aggregated span tree as `X` complete events, children
    /// laid out sequentially inside their parent starting at the parent's
    /// timestamp. Durations are the aggregate totals (microseconds), so
    /// this is a coarse profile view; runs that carry a journal should
    /// export via [`chrome_trace`] instead for real event interleaving.
    pub fn to_chrome_trace(&self) -> String {
        fn emit(node: &SpanNode, ts: u64, out: &mut Vec<Value>) -> u64 {
            let own = (node.total_ms * 1_000.0).max(0.0).round() as u64;
            let mut cursor = ts;
            let mean_us = if node.calls == 0 { 0 } else { own / node.calls };
            let args: Vec<(String, Value)> = vec![
                ("calls".to_owned(), Value::U64(node.calls)),
                ("mean_us".to_owned(), Value::U64(mean_us)),
            ];
            let mut child_total = 0u64;
            let mut children: Vec<Value> = Vec::new();
            for c in &node.children {
                let d = emit(c, cursor, &mut children);
                cursor = cursor.saturating_add(d);
                child_total = child_total.saturating_add(d);
            }
            let dur = own.max(child_total).max(1);
            out.push(json!({
                "name": node.name,
                "cat": "stmaker",
                "ph": "X",
                "ts": ts,
                "dur": dur,
                "pid": 1,
                "tid": 1,
                "args": Value::Map(args),
            }));
            out.extend(children);
            dur
        }
        let mut out: Vec<Value> = vec![metadata_event()];
        let mut cursor = 0u64;
        for root in &self.spans {
            let d = emit(root, cursor, &mut out);
            cursor = cursor.saturating_add(d);
        }
        let doc = json!({ "traceEvents": out, "displayTimeUnit": "ms" });
        serde_json::to_string(&doc).unwrap_or_else(|_| "{}".to_owned())
    }
}

/// Summary returned by a successful [`validate_chrome_trace`].
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    /// Non-metadata events in the document.
    pub events: usize,
    /// Distinct event names (spans, instants, and complete events).
    pub names: BTreeSet<String>,
}

fn event_ts(item: &Value) -> Result<u64, String> {
    match item.get("ts") {
        Some(v) => v.as_u64().ok_or_else(|| "`ts` must be a non-negative integer".to_owned()),
        None => Err("every event needs a `ts`".to_owned()),
    }
}

/// Structural validation of a Chrome trace-event JSON document: a
/// `traceEvents` array whose entries carry known phases, non-negative
/// integer timestamps that never go backwards, stable pid/tid, balanced
/// `B`/`E` pairs per tid, and non-negative durations on `X` events.
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let doc: Value = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let Some(events) = doc.get("traceEvents").and_then(Value::as_array) else {
        return Err("top level must be an object with a `traceEvents` array".to_owned());
    };
    let mut stats = TraceStats::default();
    let mut pid_tid: Option<(u64, u64)> = None;
    let mut last_ts: Option<u64> = None;
    let mut stack: Vec<String> = Vec::new();
    for (i, item) in events.iter().enumerate() {
        let Some(ph) = item.get("ph").and_then(Value::as_str) else {
            return Err(format!("event {i}: missing string `ph`"));
        };
        let name = item.get("name").and_then(Value::as_str);
        if let Some(n) = name {
            stats.names.insert(n.to_owned());
        }
        if ph == "M" {
            continue; // metadata: no ts/pairing requirements
        }
        stats.events += 1;
        let pid = item.get("pid").and_then(Value::as_u64).unwrap_or(0);
        let tid = item.get("tid").and_then(Value::as_u64).unwrap_or(0);
        match pid_tid {
            None => pid_tid = Some((pid, tid)),
            Some(expect) if expect != (pid, tid) => {
                return Err(format!(
                    "event {i}: pid/tid ({pid},{tid}) differ from first event {expect:?}"
                ));
            }
            Some(_) => {}
        }
        let ts = event_ts(item).map_err(|e| format!("event {i}: {e}"))?;
        if let Some(prev) = last_ts {
            if ts < prev {
                return Err(format!("event {i}: `ts` {ts} goes backwards (prev {prev})"));
            }
        }
        last_ts = Some(ts);
        match ph {
            "B" => {
                let Some(n) = name else {
                    return Err(format!("event {i}: `B` event needs a `name`"));
                };
                stack.push(n.to_owned());
            }
            "E" => {
                let Some(open) = stack.pop() else {
                    return Err(format!("event {i}: `E` without a matching `B`"));
                };
                if let Some(n) = name {
                    if n != open {
                        return Err(format!(
                            "event {i}: `E` for `{n}` but innermost open span is `{open}`"
                        ));
                    }
                }
            }
            "i" => {
                if name.is_none() {
                    return Err(format!("event {i}: `i` event needs a `name`"));
                }
            }
            "X" => {
                if name.is_none() {
                    return Err(format!("event {i}: `X` event needs a `name`"));
                }
                let ok = item.get("dur").and_then(Value::as_u64).is_some();
                if !ok {
                    return Err(format!("event {i}: `X` needs a non-negative integer `dur`"));
                }
            }
            other => return Err(format!("event {i}: unknown phase `{other}`")),
        }
    }
    // Still-open spans are fine (a trace may end mid-span); mismatches
    // were already rejected above.
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;
    use crate::Recorder;

    fn sample_events() -> Vec<Event> {
        let mut j = Journal::new(64);
        j.push(EventKind::Begin, "summarize", 1, 0, 1_000, &[("trip", ArgValue::U64(7))]);
        j.push(EventKind::Begin, "partition", 2, 1, 2_000, &[]);
        j.push(EventKind::Instant, "checkpoint", 0, 2, 2_500, &[("mode", ArgValue::Str("dp"))]);
        j.push(EventKind::End, "partition", 2, 1, 3_000, &[]);
        j.push(EventKind::End, "summarize", 1, 0, 4_000, &[]);
        j.events()
    }

    #[test]
    fn export_is_valid_and_carries_every_name() {
        for clock in [TraceClock::Wall, TraceClock::Logical] {
            let text = chrome_trace(&sample_events(), clock);
            let stats = validate_chrome_trace(&text).expect("valid");
            assert_eq!(stats.events, 5, "{clock:?}");
            for name in ["summarize", "partition", "checkpoint"] {
                assert!(stats.names.contains(name), "{clock:?} missing {name}");
            }
        }
    }

    #[test]
    fn wall_clock_timestamps_are_microseconds() {
        let text = chrome_trace(&sample_events(), TraceClock::Wall);
        let doc: Value = serde_json::from_str(&text).expect("json");
        let events = doc.get("traceEvents").and_then(Value::as_array).expect("array");
        let ts: Vec<u64> =
            events.iter().filter_map(|e| e.get("ts").and_then(Value::as_u64)).collect();
        assert_eq!(ts, [1, 2, 2, 3, 4], "ns → µs");
    }

    #[test]
    fn logical_clock_is_byte_stable_for_equal_structure() {
        let a = chrome_trace(&sample_events(), TraceClock::Logical);
        let mut shifted = sample_events();
        for e in &mut shifted {
            e.ts_ns += 999_999; // same structure, different wall times
        }
        let b = chrome_trace(&shifted, TraceClock::Logical);
        assert_eq!(a, b, "logical export must not depend on wall time");
        assert_ne!(
            chrome_trace(&sample_events(), TraceClock::Wall),
            b,
            "wall export does depend on wall time"
        );
    }

    #[test]
    fn orphan_end_after_overflow_is_skipped() {
        let mut j = Journal::new(3);
        j.push(EventKind::Begin, "lost", 1, 0, 10, &[]);
        j.push(EventKind::Begin, "kept", 2, 1, 20, &[]);
        j.push(EventKind::End, "kept", 2, 1, 30, &[]);
        j.push(EventKind::End, "lost", 1, 0, 40, &[]); // begin was dropped
        let text = chrome_trace(&j.events(), TraceClock::Logical);
        let stats = validate_chrome_trace(&text).expect("balanced after skip");
        assert_eq!(stats.events, 2, "kept B/E survive, the orphan E is skipped: {text}");
    }

    #[test]
    fn empty_journal_exports_a_valid_empty_trace() {
        let text = chrome_trace(&[], TraceClock::Logical);
        let stats = validate_chrome_trace(&text).expect("valid");
        assert_eq!(stats.events, 0);
        assert!(text.contains("traceEvents"));
    }

    #[test]
    fn report_export_produces_valid_complete_events() {
        let obs = Recorder::enabled();
        {
            let _root = obs.span("summarize");
            let _stage = obs.span("partition");
        }
        let text = obs.report().to_chrome_trace();
        let stats = validate_chrome_trace(&text).expect("valid");
        assert!(stats.names.contains("summarize") && stats.names.contains("partition"));
        let doc: Value = serde_json::from_str(&text).expect("json");
        let events = doc.get("traceEvents").and_then(Value::as_array).expect("array");
        for e in events.iter().filter(|e| e.get("ph").and_then(Value::as_str) == Some("X")) {
            assert!(e.get("dur").and_then(Value::as_u64).is_some_and(|d| d >= 1));
        }
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("[]").unwrap_err().contains("traceEvents"));
        assert!(validate_chrome_trace("{nope").unwrap_err().contains("not valid JSON"));
        let unmatched = r#"{"traceEvents":[{"name":"x","ph":"E","ts":1,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(unmatched).unwrap_err().contains("without a matching"));
        let backwards = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":5,"pid":1,"tid":1},
            {"name":"a","ph":"E","ts":3,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(backwards).unwrap_err().contains("backwards"));
        let wrong_pair = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
            {"name":"b","ph":"E","ts":2,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(wrong_pair).unwrap_err().contains("innermost"));
        let pid_drift = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
            {"name":"a","ph":"E","ts":2,"pid":2,"tid":1}]}"#;
        assert!(validate_chrome_trace(pid_drift).unwrap_err().contains("pid/tid"));
    }
}
