//! # stmaker-obs — std-only tracing and metrics for the pipeline
//!
//! The paper's Sec. VII / Fig. 12 claims are *performance* claims
//! ("most trajectories can be summarized within tens of milliseconds"),
//! so the reproduction needs to attribute wall-clock to the pipeline
//! stages of Fig. 3. This crate is the measurement substrate:
//!
//! * **[`Recorder`]** — a cheaply clonable handle threaded through
//!   [`SummarizerConfig`](https://docs.rs/stmaker). A *disabled* recorder
//!   (the default) is a true no-op: every call is a single branch on an
//!   `Option`, with no allocation and no locking, so instrumented hot
//!   paths cost nothing when telemetry is off.
//! * **Spans** — hierarchical RAII timers over a monotonic clock
//!   ([`std::time::Instant`]). Re-entering a span name under the same
//!   parent aggregates into one node (call count + total time), so a
//!   400-trip evaluation run produces a compact tree, not 400 copies.
//!   Every span close also feeds a duration histogram under the span's
//!   name.
//! * **[`Journal`]** — an optional bounded ring buffer of the individual
//!   begin/end/instant events (trace id, span id, parent id, monotonic
//!   timestamps, static-str args) behind the same lock; see
//!   [`journal`]. Exported via [`trace_export`] as Chrome trace-event
//!   JSON for `about://tracing` / Perfetto.
//! * **Counters / gauges** — saturating `u64` counters for domain volumes
//!   (DP cells filled, segments scanned, features kept vs. dropped) and
//!   last-write-wins `f64` gauges.
//! * **[`Histogram`]** — fixed-bucket (exponential bounds) histograms with
//!   p50/p95/p99 summaries and saturating bucket counts.
//! * **[`Exemplar`]s** — a top-K reservoir of the slowest per-trip
//!   breakdowns from `summarize_batch`; see [`exemplar`].
//! * **[`WindowSummary`]** — sliding-window counters/histograms for
//!   streaming, keyed by data-derived window index; see [`window`].
//! * **[`Report`]** — a serializable snapshot (`spans`, `counters`,
//!   `gauges`, `histograms`, plus `exemplars`/`windows`) shared by
//!   `stmaker-cli --metrics-json`, the Fig. 12 eval binary, and the
//!   benches (`BENCH_obs.json`); the [`stats`] module renders the same
//!   data as a human table, and [`diff`] compares two snapshots for the
//!   `stmaker obs diff` regression gate.
//!
//! Std-only by design: the workspace builds with no crates.io access, and
//! a tracing layer must never be the reason the build grows a dependency.
//! The only deps are the vendored `serde`/`serde_json` stubs used for the
//! report schema.
//!
//! ## Example
//!
//! ```
//! use stmaker_obs::Recorder;
//!
//! let obs = Recorder::enabled();
//! {
//!     let _outer = obs.span("summarize");
//!     let _inner = obs.span("partition");
//!     obs.add("partition.dp_cells", 42);
//! }
//! let report = obs.report();
//! assert_eq!(report.spans[0].name, "summarize");
//! assert_eq!(report.spans[0].children[0].name, "partition");
//! assert_eq!(report.counters["partition.dp_cells"], 42);
//! ```
//!
//! Threading: the enabled recorder guards its state with a [`Mutex`], so
//! sharing a handle across threads is safe; span *nesting*, however,
//! follows global open/close order, so give each worker thread its own
//! recorder when per-thread trees matter — and replay worker results on
//! the coordinating thread via [`Recorder::span_observed`] /
//! [`Recorder::replay_span`], which is what keeps the journal's event
//! order (and hence the logical-clock trace bytes) independent of the
//! thread count.

pub mod diff;
pub mod exemplar;
pub mod hist;
pub mod journal;
pub mod report;
pub mod stats;
pub mod trace_export;
pub mod window;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

pub use diff::{diff, render_deltas, DiffOptions, Finding, Severity};
pub use exemplar::{Exemplar, ExemplarReservoir, DEFAULT_EXEMPLAR_K};
pub use hist::{Histogram, HistogramSummary};
pub use journal::{Arg, ArgValue, Event, EventKind, Journal, DEFAULT_JOURNAL_CAPACITY};
pub use report::{Report, SpanNode};
pub use trace_export::{chrome_trace, validate_chrome_trace, TraceClock, TraceStats};
pub use window::{SlidingWindow, WindowSummary, DEFAULT_WINDOW_CAPACITY};

/// A handle to a telemetry sink, or a no-op when disabled.
///
/// Cloning is cheap (an `Option<Arc>` copy); all clones share the same
/// underlying state, so the handle stored inside a `Summarizer` and the
/// handle the CLI keeps for reporting see the same spans.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("enabled", &self.is_enabled()).finish()
    }
}

impl Recorder {
    /// The no-op recorder: every operation is a branch and nothing else.
    /// This is also [`Default`].
    pub const fn disabled() -> Self {
        Self { inner: None }
    }

    /// A live recorder with empty state and no journal.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                state: Mutex::new(State::default()),
                origin: Instant::now(),
            })),
        }
    }

    /// A live recorder that additionally journals every begin/end/instant
    /// event into a ring buffer of `capacity` events (drop-oldest on
    /// overflow, accounted as `obs.events_dropped` in the report).
    pub fn enabled_with_journal(capacity: usize) -> Self {
        let r = Self::enabled();
        if let Some(inner) = &r.inner {
            inner.state().journal = Some(Journal::new(capacity));
        }
        r
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether this handle journals events.
    pub fn has_journal(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => inner.state().journal.is_some(),
        }
    }

    /// Opens a named span; the elapsed time is recorded when the returned
    /// guard drops. Disabled recorders return an inert guard without
    /// allocating or locking.
    #[inline]
    #[must_use = "a span records its duration when the guard drops"]
    pub fn span(&self, name: &str) -> Span {
        match &self.inner {
            None => Span { active: None },
            Some(inner) => {
                let idx = inner.open(name, &[]);
                Span {
                    active: Some(ActiveSpan {
                        inner: Arc::clone(inner),
                        idx,
                        start: Instant::now(),
                    }),
                }
            }
        }
    }

    /// Records one already-measured interval as a span under the current
    /// nesting point, feeding the same call/duration aggregates and
    /// histogram as a [`Recorder::span`] guard would. Workers that run
    /// with a disabled recorder measure with `Instant` themselves and the
    /// coordinating thread replays the durations here in deterministic
    /// order, keeping the span tree single-threaded. Journaled replays
    /// lay out end-to-end on the timeline (`end = begin + dur`), so a
    /// batch replayed in input order reads as a sequential trace.
    #[inline]
    pub fn span_observed(&self, name: &str, dur: std::time::Duration) {
        if let Some(inner) = &self.inner {
            let idx = inner.open(name, &[]);
            inner.close(idx, dur.as_nanos(), dur.as_secs_f64() * 1e3, true);
        }
    }

    /// Replays one already-measured interval as a span *with children*:
    /// `f` runs between the open and the close, so any `span_observed` /
    /// `replay_span` / counter calls it makes nest under this span. This
    /// is how `summarize_batch` reconstructs each worker trip's stage
    /// breakdown on the coordinating thread in input order. `args` are
    /// attached to the journaled begin event. With a disabled recorder
    /// `f` still runs (against the same no-op handle).
    pub fn replay_span<F: FnOnce(&Recorder)>(
        &self,
        name: &str,
        dur: std::time::Duration,
        args: &[Arg],
        f: F,
    ) {
        match &self.inner {
            None => f(self),
            Some(inner) => {
                let idx = inner.open(name, args);
                f(self);
                inner.close(idx, dur.as_nanos(), dur.as_secs_f64() * 1e3, true);
            }
        }
    }

    /// Journals a zero-duration marker under the current nesting point.
    /// Only visible in the journal/trace (no aggregate state changes);
    /// a no-op without a journal.
    pub fn instant(&self, name: &str, args: &[Arg]) {
        if let Some(inner) = &self.inner {
            inner.instant(name, args);
        }
    }

    /// Adds `by` to the named counter (saturating).
    #[inline]
    pub fn add(&self, name: &str, by: u64) {
        if let Some(inner) = &self.inner {
            let mut s = inner.state();
            let c = s.counters.entry(name.to_owned()).or_insert(0);
            *c = c.saturating_add(by);
        }
    }

    /// Sets the named gauge (last write wins).
    #[inline]
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.state().gauges.insert(name.to_owned(), value);
        }
    }

    /// Records one sample (in milliseconds) into the named histogram.
    #[inline]
    pub fn observe_ms(&self, name: &str, ms: f64) {
        if let Some(inner) = &self.inner {
            inner
                .state()
                .histograms
                .entry(name.to_owned())
                .or_insert_with(Histogram::default_ms)
                .record(ms);
        }
    }

    /// Offers one per-trip exemplar to the top-K reservoir surfaced under
    /// the report's `exemplars` key.
    pub fn exemplar(&self, ex: Exemplar) {
        if let Some(inner) = &self.inner {
            inner.state().exemplars.offer(ex);
        }
    }

    /// Replaces the report's sliding-window summaries (the streaming
    /// summarizer snapshots its [`SlidingWindow`] store here).
    pub fn set_windows(&self, windows: Vec<WindowSummary>) {
        if let Some(inner) = &self.inner {
            inner.state().windows = windows;
        }
    }

    /// Snapshot of the journal's retained events in drain order (empty
    /// without a journal).
    pub fn journal_events(&self) -> Vec<Event> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.state().journal.as_ref().map(Journal::events).unwrap_or_default(),
        }
    }

    /// Events shed by the journal's drop-oldest overflow so far.
    pub fn journal_dropped(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.state().journal.as_ref().map_or(0, Journal::dropped),
        }
    }

    /// Renders a Chrome trace-event JSON document: the journal's event
    /// stream when one is recorded, otherwise the aggregated span tree as
    /// complete (`X`) events via [`Report::to_chrome_trace`].
    pub fn chrome_trace(&self, clock: TraceClock) -> String {
        if self.has_journal() {
            trace_export::chrome_trace(&self.journal_events(), clock)
        } else {
            self.report().to_chrome_trace()
        }
    }

    /// Snapshots everything recorded so far. Open spans are not included;
    /// a disabled recorder returns an empty report.
    pub fn report(&self) -> Report {
        let Some(inner) = &self.inner else { return Report::default() };
        let s = inner.state();
        let spans = s.roots.iter().filter_map(|&i| s.span_node(i)).collect();
        let mut counters = s.counters.clone();
        if let Some(j) = &s.journal {
            counters.insert("obs.events_dropped".to_owned(), j.dropped());
        }
        Report {
            spans,
            counters,
            gauges: s.gauges.clone(),
            histograms: s
                .histograms
                .iter()
                .filter_map(|(k, h)| h.summary().map(|sum| (k.clone(), sum)))
                .collect(),
            exemplars: s.exemplars.sorted(),
            windows: s.windows.clone(),
        }
    }

    /// Clears all recorded state (the handle stays enabled; a journal
    /// keeps its configured capacity but starts empty).
    pub fn reset(&self) {
        if let Some(inner) = &self.inner {
            let mut s = inner.state();
            let journal_capacity = s.journal.as_ref().map(Journal::capacity);
            *s = State::default();
            if let Some(capacity) = journal_capacity {
                s.journal = Some(Journal::new(capacity));
            }
        }
    }
}

struct Inner {
    state: Mutex<State>,
    /// The journal's time origin; event timestamps are nanoseconds since
    /// this instant, clamped monotone under the lock.
    origin: Instant,
}

impl Inner {
    /// Locks the state; a poisoning panic elsewhere only means telemetry
    /// from that thread is partial, so recording continues.
    fn state(&self) -> MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The next journal timestamp: wall nanoseconds since `origin`,
    /// clamped so timestamps never go backwards (replayed closes can run
    /// ahead of the wall clock).
    fn tick(&self, s: &mut State) -> u64 {
        let now = self.origin.elapsed().as_nanos();
        let now = u64::try_from(now).unwrap_or(u64::MAX);
        let ts = now.max(s.last_ts_ns);
        s.last_ts_ns = ts;
        ts
    }

    /// Opens (or re-enters) the child named `name` under the current span
    /// and returns its node index. Journals a begin event carrying `args`.
    fn open(&self, name: &str, args: &[Arg]) -> usize {
        let mut s = self.state();
        let parent = s.stack.last().map(|o| o.node);
        let siblings = match parent {
            Some(p) => &s.nodes[p].children,
            None => &s.roots,
        };
        let existing = siblings.iter().copied().find(|&i| s.nodes[i].name == name);
        let idx = match existing {
            Some(i) => i,
            None => {
                let idx = s.nodes.len();
                s.nodes.push(Node {
                    name: name.to_owned(),
                    children: Vec::new(),
                    calls: 0,
                    total_ns: 0,
                });
                match parent {
                    Some(p) => s.nodes[p].children.push(idx),
                    None => s.roots.push(idx),
                }
                idx
            }
        };
        let parent_span_id = s.stack.last().map_or(0, |o| o.span_id);
        s.next_span_id += 1;
        let span_id = s.next_span_id;
        let ts = self.tick(&mut s);
        if let Some(j) = &mut s.journal {
            j.push(EventKind::Begin, name, span_id, parent_span_id, ts, args);
        }
        s.stack.push(OpenSpan { node: idx, span_id, begin_ts_ns: ts });
        idx
    }

    /// Journals an instant marker under the current span (journal-only).
    fn instant(&self, name: &str, args: &[Arg]) {
        let mut s = self.state();
        let parent_span_id = s.stack.last().map_or(0, |o| o.span_id);
        let ts = self.tick(&mut s);
        if let Some(j) = &mut s.journal {
            j.push(EventKind::Instant, name, 0, parent_span_id, ts, args);
        }
    }

    /// Closes the span at `idx` with the measured duration. Tolerates
    /// out-of-order guard drops by unwinding the stack down to `idx`
    /// (journaling synthesized end events for the unwound orphans, so
    /// exported traces stay balanced). A close whose stack entry was
    /// already unwound only updates the aggregates — its end event was
    /// synthesized when the parent closed.
    ///
    /// `replayed` closes (from [`Recorder::span_observed`] /
    /// [`Recorder::replay_span`]) place the end event at
    /// `begin + dur` on the journal timeline instead of "now", so a
    /// sequence of replays lays out as a contiguous sequential trace.
    fn close(&self, idx: usize, dur_ns: u128, ms: f64, replayed: bool) {
        let mut s = self.state();
        let unwound: Vec<OpenSpan> = match s.stack.iter().rposition(|o| o.node == idx) {
            Some(pos) => s.stack.drain(pos..).collect(),
            None => Vec::new(),
        };
        if let Some(own) = unwound.first() {
            let close_ts = if replayed {
                let dur = u64::try_from(dur_ns).unwrap_or(u64::MAX);
                let ts = own.begin_ts_ns.saturating_add(dur).max(s.last_ts_ns);
                s.last_ts_ns = ts;
                ts
            } else {
                self.tick(&mut s)
            };
            let state = &mut *s;
            if let Some(j) = &mut state.journal {
                // Orphans closed innermost-first keep B/E pairs balanced.
                for orphan in unwound.iter().skip(1).rev() {
                    let name = state.nodes[orphan.node].name.as_str();
                    j.push(EventKind::End, name, orphan.span_id, 0, close_ts, &[]);
                }
                let name = state.nodes[own.node].name.as_str();
                j.push(EventKind::End, name, own.span_id, 0, close_ts, &[]);
            }
        }
        let name = {
            let node = &mut s.nodes[idx];
            node.calls = node.calls.saturating_add(1);
            node.total_ns = node.total_ns.saturating_add(dur_ns);
            node.name.clone()
        };
        s.histograms.entry(name).or_insert_with(Histogram::default_ms).record(ms);
    }
}

/// One entry of the open-span stack.
struct OpenSpan {
    /// Aggregate node index in the arena.
    node: usize,
    /// Journal span instance id (unique per open, even for re-entries of
    /// the same aggregate node).
    span_id: u64,
    /// Journal timestamp of the begin event.
    begin_ts_ns: u64,
}

/// Aggregated span-tree state plus the scalar metric stores.
#[derive(Default)]
struct State {
    /// Arena of aggregated span nodes.
    nodes: Vec<Node>,
    /// Indices of top-level spans, in first-seen order.
    roots: Vec<usize>,
    /// Currently open spans, innermost last.
    stack: Vec<OpenSpan>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    /// Optional event journal (see [`journal`]).
    journal: Option<Journal>,
    /// High-water timestamp keeping journal time monotone.
    last_ts_ns: u64,
    /// Journal span-instance id source (0 = "no span").
    next_span_id: u64,
    /// Top-K slowest per-trip breakdowns.
    exemplars: ExemplarReservoir,
    /// Sliding-window summaries from the streaming path.
    windows: Vec<WindowSummary>,
}

impl State {
    /// Builds the reported subtree at `idx`; `None` when the span (and
    /// every descendant) is still open and has nothing to report yet.
    fn span_node(&self, idx: usize) -> Option<SpanNode> {
        let node = &self.nodes[idx];
        let children: Vec<SpanNode> =
            node.children.iter().filter_map(|&c| self.span_node(c)).collect();
        if node.calls == 0 && children.is_empty() {
            return None;
        }
        Some(SpanNode {
            name: node.name.clone(),
            calls: node.calls,
            total_ms: node.total_ns as f64 / 1e6, // cast-ok: ns precision beyond f64 is irrelevant at ms scale
            children,
        })
    }
}

/// One aggregated node: all calls to the same span name under the same
/// parent share a node.
struct Node {
    name: String,
    children: Vec<usize>,
    calls: u64,
    total_ns: u128,
}

/// RAII guard for an open span; records the elapsed time on drop.
/// Inert (zero state) when produced by a disabled recorder.
#[must_use = "a span records its duration when the guard drops"]
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    inner: Arc<Inner>,
    idx: usize,
    start: Instant,
}

impl Span {
    /// Whether this guard will record anything (false for disabled
    /// recorders).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let elapsed = active.start.elapsed();
            // cast-ok: sub-ns precision is irrelevant at ms scale
            active.inner.close(active.idx, elapsed.as_nanos(), elapsed.as_secs_f64() * 1e3, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_observed_aggregates_like_a_guard() {
        let obs = Recorder::enabled();
        obs.span_observed("stage", std::time::Duration::from_millis(3));
        {
            let _outer = obs.span("outer");
            obs.span_observed("stage.child", std::time::Duration::from_millis(2));
            obs.span_observed("stage.child", std::time::Duration::from_millis(5));
        }
        let report = obs.report();
        let stage = report.spans.iter().find(|s| s.name == "stage").expect("root span");
        assert_eq!(stage.calls, 1);
        assert!(stage.total_ms >= 2.9);
        let outer = report.spans.iter().find(|s| s.name == "outer").expect("outer span");
        let child = outer.children.iter().find(|s| s.name == "stage.child").expect("child");
        assert_eq!(child.calls, 2);
        assert!(child.total_ms >= 6.9);
        assert!(report.histograms.contains_key("stage.child"));
        // The disabled recorder stays inert.
        Recorder::disabled().span_observed("stage", std::time::Duration::from_millis(1));
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let obs = Recorder::disabled();
        assert!(!obs.is_enabled());
        assert!(!obs.has_journal());
        let span = obs.span("anything");
        assert!(!span.is_recording());
        drop(span);
        obs.add("c", 1);
        obs.gauge("g", 1.0);
        obs.observe_ms("h", 1.0);
        obs.instant("marker", &[]);
        obs.exemplar(Exemplar { id: "x".into(), total_ms: 1.0, stages: BTreeMap::new() });
        obs.set_windows(vec![WindowSummary::default()]);
        let mut ran = false;
        obs.replay_span("r", std::time::Duration::from_millis(1), &[], |_| ran = true);
        assert!(ran, "replay closure still runs when disabled");
        let report = obs.report();
        assert!(report.spans.is_empty());
        assert!(report.counters.is_empty());
        assert!(report.gauges.is_empty());
        assert!(report.histograms.is_empty());
        assert!(report.exemplars.is_empty());
        assert!(report.windows.is_empty());
        assert!(obs.journal_events().is_empty());
        assert_eq!(obs.journal_dropped(), 0);
        assert_eq!(format!("{obs:?}"), "Recorder { enabled: false }");
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Recorder::default().is_enabled());
    }

    #[test]
    fn spans_nest_and_aggregate_by_name() {
        let obs = Recorder::enabled();
        for _ in 0..3 {
            let _outer = obs.span("outer");
            {
                let _inner = obs.span("inner");
            }
            {
                let _inner = obs.span("inner");
            }
        }
        let report = obs.report();
        assert_eq!(report.spans.len(), 1);
        let outer = &report.spans[0];
        assert_eq!((outer.name.as_str(), outer.calls), ("outer", 3));
        assert_eq!(outer.children.len(), 1, "same-name children aggregate");
        let inner = &outer.children[0];
        assert_eq!((inner.name.as_str(), inner.calls), ("inner", 6));
        assert!(outer.total_ms >= inner.total_ms, "parent time includes children");
        // Span closes feed the histograms under the span's name.
        assert_eq!(report.histograms["outer"].count, 3);
        assert_eq!(report.histograms["inner"].count, 6);
    }

    #[test]
    fn sibling_spans_stay_distinct() {
        let obs = Recorder::enabled();
        {
            let _root = obs.span("root");
            let _a = obs.span("a");
            drop(_a);
            let _b = obs.span("b");
        }
        let report = obs.report();
        let names: Vec<&str> = report.spans[0].children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn out_of_order_drop_does_not_corrupt_the_tree() {
        let obs = Recorder::enabled();
        let outer = obs.span("outer");
        let inner = obs.span("inner");
        drop(outer); // parent first: stack unwinds through the child
        drop(inner);
        let _next = obs.span("next");
        drop(_next);
        let report = obs.report();
        let roots: Vec<&str> = report.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(roots, ["outer", "next"], "next must not nest under a dead span");
    }

    #[test]
    fn counters_saturate_and_gauges_overwrite() {
        let obs = Recorder::enabled();
        obs.add("c", u64::MAX - 1);
        obs.add("c", 5);
        obs.gauge("g", 1.0);
        obs.gauge("g", 2.5);
        let report = obs.report();
        assert_eq!(report.counters["c"], u64::MAX);
        assert_eq!(report.gauges["g"], 2.5);
    }

    #[test]
    fn reset_clears_state_but_stays_enabled() {
        let obs = Recorder::enabled();
        obs.add("c", 1);
        let _s = obs.span("s");
        drop(_s);
        obs.reset();
        assert!(obs.is_enabled());
        let report = obs.report();
        assert!(report.spans.is_empty() && report.counters.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let obs = Recorder::enabled();
        let clone = obs.clone();
        clone.add("shared", 7);
        assert_eq!(obs.report().counters["shared"], 7);
    }

    #[test]
    fn open_spans_are_excluded_from_the_report() {
        let obs = Recorder::enabled();
        let _open = obs.span("open");
        let report = obs.report();
        assert!(report.spans.is_empty(), "unclosed spans must not appear");
    }

    #[test]
    fn journal_records_begin_end_with_ids_and_monotone_time() {
        let obs = Recorder::enabled_with_journal(64);
        assert!(obs.has_journal());
        {
            let _outer = obs.span("outer");
            obs.instant("marker", &[("k", ArgValue::Str("v"))]);
            let _inner = obs.span("inner");
        }
        let events = obs.journal_events();
        let shape: Vec<(EventKind, &str)> =
            events.iter().map(|e| (e.kind, e.name.as_str())).collect();
        assert_eq!(
            shape,
            [
                (EventKind::Begin, "outer"),
                (EventKind::Instant, "marker"),
                (EventKind::Begin, "inner"),
                (EventKind::End, "inner"),
                (EventKind::End, "outer"),
            ]
        );
        // Parent/child ids line up.
        assert_eq!(events[0].parent_id, 0);
        assert_eq!(events[1].parent_id, events[0].span_id, "instant under outer");
        assert_eq!(events[2].parent_id, events[0].span_id);
        assert_eq!(events[3].span_id, events[2].span_id);
        assert_eq!(events[4].span_id, events[0].span_id);
        // Timestamps never go backwards.
        for pair in events.windows(2) {
            assert!(pair[1].ts_ns >= pair[0].ts_ns);
        }
        // The report surfaces the drop counter (0 here).
        assert_eq!(obs.report().counters["obs.events_dropped"], 0);
    }

    #[test]
    fn journal_overflow_drops_oldest_and_reports_it() {
        let obs = Recorder::enabled_with_journal(4);
        for _ in 0..10 {
            obs.span_observed("s", std::time::Duration::from_micros(5));
        }
        let events = obs.journal_events();
        assert_eq!(events.len(), 4, "capacity bound holds");
        assert_eq!(obs.journal_dropped(), 16, "20 pushed, 4 retained");
        assert_eq!(obs.report().counters["obs.events_dropped"], 16);
        // Reset keeps the journal (and its capacity), empty again.
        obs.reset();
        assert!(obs.has_journal());
        assert!(obs.journal_events().is_empty());
        assert_eq!(obs.journal_dropped(), 0);
    }

    #[test]
    fn out_of_order_drop_synthesizes_balanced_end_events() {
        let obs = Recorder::enabled_with_journal(64);
        let outer = obs.span("outer");
        let inner = obs.span("inner");
        drop(outer); // unwinds through inner: its end is synthesized
        drop(inner); // aggregate-only; must NOT journal a second end
        let events = obs.journal_events();
        let shape: Vec<(EventKind, &str)> =
            events.iter().map(|e| (e.kind, e.name.as_str())).collect();
        assert_eq!(
            shape,
            [
                (EventKind::Begin, "outer"),
                (EventKind::Begin, "inner"),
                (EventKind::End, "inner"),
                (EventKind::End, "outer"),
            ]
        );
        let text = chrome_trace(&events, TraceClock::Logical);
        validate_chrome_trace(&text).expect("balanced trace");
    }

    #[test]
    fn replay_span_nests_children_and_lays_out_sequentially() {
        let obs = Recorder::enabled_with_journal(64);
        for trip in 0..2u64 {
            obs.replay_span(
                "summarize_batch.trip",
                std::time::Duration::from_millis(4),
                &[("trip", ArgValue::U64(trip))],
                |o| {
                    o.span_observed("partition", std::time::Duration::from_millis(3));
                    o.span_observed("render", std::time::Duration::from_millis(1));
                },
            );
        }
        let report = obs.report();
        let trip = &report.spans[0];
        assert_eq!((trip.name.as_str(), trip.calls), ("summarize_batch.trip", 2));
        let kids: Vec<&str> = trip.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(kids, ["partition", "render"]);
        let events = obs.journal_events();
        assert_eq!(events.len(), 12, "2 trips x (1 trip span + 2 stages) x B/E");
        assert_eq!(events[0].args, vec![("trip", ArgValue::U64(0))]);
        // Replayed closes advance the timeline: trip 1 begins at or after
        // trip 0's replayed end (begin + 4ms).
        let t0_end = events[0].ts_ns + 4_000_000;
        assert!(events[6].ts_ns >= t0_end, "{} < {t0_end}", events[6].ts_ns);
        validate_chrome_trace(&chrome_trace(&events, TraceClock::Logical)).expect("valid");
    }

    #[test]
    fn exemplars_surface_in_the_report_sorted() {
        let obs = Recorder::enabled();
        for (id, ms) in [("a", 1.0), ("b", 9.0), ("c", 4.0)] {
            obs.exemplar(Exemplar { id: id.into(), total_ms: ms, stages: BTreeMap::new() });
        }
        let report = obs.report();
        let ids: Vec<&str> = report.exemplars.iter().map(|e| e.id.as_str()).collect();
        assert_eq!(ids, ["b", "c", "a"]);
    }

    #[test]
    fn windows_surface_in_the_report() {
        let obs = Recorder::enabled();
        let mut w = SlidingWindow::new(4);
        w.add(0, "stream.window.points", 3);
        obs.set_windows(w.summaries());
        let report = obs.report();
        assert_eq!(report.windows.len(), 1);
        assert_eq!(report.windows[0].counters["stream.window.points"], 3);
    }

    #[test]
    fn recorder_without_journal_reports_no_drop_counter() {
        let obs = Recorder::enabled();
        obs.add("c", 1);
        assert!(!obs.report().counters.contains_key("obs.events_dropped"));
    }
}
