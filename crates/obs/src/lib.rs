//! # stmaker-obs — std-only tracing and metrics for the pipeline
//!
//! The paper's Sec. VII / Fig. 12 claims are *performance* claims
//! ("most trajectories can be summarized within tens of milliseconds"),
//! so the reproduction needs to attribute wall-clock to the pipeline
//! stages of Fig. 3. This crate is the measurement substrate:
//!
//! * **[`Recorder`]** — a cheaply clonable handle threaded through
//!   [`SummarizerConfig`](https://docs.rs/stmaker). A *disabled* recorder
//!   (the default) is a true no-op: every call is a single branch on an
//!   `Option`, with no allocation and no locking, so instrumented hot
//!   paths cost nothing when telemetry is off.
//! * **Spans** — hierarchical RAII timers over a monotonic clock
//!   ([`std::time::Instant`]). Re-entering a span name under the same
//!   parent aggregates into one node (call count + total time), so a
//!   400-trip evaluation run produces a compact tree, not 400 copies.
//!   Every span close also feeds a duration histogram under the span's
//!   name.
//! * **Counters / gauges** — saturating `u64` counters for domain volumes
//!   (DP cells filled, segments scanned, features kept vs. dropped) and
//!   last-write-wins `f64` gauges.
//! * **[`Histogram`]** — fixed-bucket (exponential bounds) histograms with
//!   p50/p95/p99 summaries and saturating bucket counts.
//! * **[`Report`]** — a serializable snapshot (`spans`, `counters`,
//!   `gauges`, `histograms`) shared by `stmaker-cli --metrics-json`, the
//!   Fig. 12 eval binary, and the benches (`BENCH_obs.json`); the
//!   [`stats`] module renders the same data as a human table.
//!
//! Std-only by design: the workspace builds with no crates.io access, and
//! a tracing layer must never be the reason the build grows a dependency.
//! The only deps are the vendored `serde`/`serde_json` stubs used for the
//! report schema.
//!
//! ## Example
//!
//! ```
//! use stmaker_obs::Recorder;
//!
//! let obs = Recorder::enabled();
//! {
//!     let _outer = obs.span("summarize");
//!     let _inner = obs.span("partition");
//!     obs.add("partition.dp_cells", 42);
//! }
//! let report = obs.report();
//! assert_eq!(report.spans[0].name, "summarize");
//! assert_eq!(report.spans[0].children[0].name, "partition");
//! assert_eq!(report.counters["partition.dp_cells"], 42);
//! ```
//!
//! Threading: the enabled recorder guards its state with a [`Mutex`], so
//! sharing a handle across threads is safe; span *nesting*, however,
//! follows global open/close order, so give each worker thread its own
//! recorder when per-thread trees matter.

pub mod hist;
pub mod report;
pub mod stats;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

pub use hist::{Histogram, HistogramSummary};
pub use report::{Report, SpanNode};

/// A handle to a telemetry sink, or a no-op when disabled.
///
/// Cloning is cheap (an `Option<Arc>` copy); all clones share the same
/// underlying state, so the handle stored inside a `Summarizer` and the
/// handle the CLI keeps for reporting see the same spans.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("enabled", &self.is_enabled()).finish()
    }
}

impl Recorder {
    /// The no-op recorder: every operation is a branch and nothing else.
    /// This is also [`Default`].
    pub const fn disabled() -> Self {
        Self { inner: None }
    }

    /// A live recorder with empty state.
    pub fn enabled() -> Self {
        Self { inner: Some(Arc::new(Inner { state: Mutex::new(State::default()) })) }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a named span; the elapsed time is recorded when the returned
    /// guard drops. Disabled recorders return an inert guard without
    /// allocating or locking.
    #[inline]
    #[must_use = "a span records its duration when the guard drops"]
    pub fn span(&self, name: &str) -> Span {
        match &self.inner {
            None => Span { active: None },
            Some(inner) => {
                let idx = inner.open(name);
                Span {
                    active: Some(ActiveSpan {
                        inner: Arc::clone(inner),
                        idx,
                        start: Instant::now(),
                    }),
                }
            }
        }
    }

    /// Records one already-measured interval as a span under the current
    /// nesting point, feeding the same call/duration aggregates and
    /// histogram as a [`Recorder::span`] guard would. Workers that run
    /// with a disabled recorder measure with `Instant` themselves and the
    /// coordinating thread replays the durations here in deterministic
    /// order, keeping the span tree single-threaded.
    #[inline]
    pub fn span_observed(&self, name: &str, dur: std::time::Duration) {
        if let Some(inner) = &self.inner {
            let idx = inner.open(name);
            inner.close(idx, dur.as_nanos(), dur.as_secs_f64() * 1e3);
        }
    }

    /// Adds `by` to the named counter (saturating).
    #[inline]
    pub fn add(&self, name: &str, by: u64) {
        if let Some(inner) = &self.inner {
            let mut s = inner.state();
            let c = s.counters.entry(name.to_owned()).or_insert(0);
            *c = c.saturating_add(by);
        }
    }

    /// Sets the named gauge (last write wins).
    #[inline]
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.state().gauges.insert(name.to_owned(), value);
        }
    }

    /// Records one sample (in milliseconds) into the named histogram.
    #[inline]
    pub fn observe_ms(&self, name: &str, ms: f64) {
        if let Some(inner) = &self.inner {
            inner
                .state()
                .histograms
                .entry(name.to_owned())
                .or_insert_with(Histogram::default_ms)
                .record(ms);
        }
    }

    /// Snapshots everything recorded so far. Open spans are not included;
    /// a disabled recorder returns an empty report.
    pub fn report(&self) -> Report {
        let Some(inner) = &self.inner else { return Report::default() };
        let s = inner.state();
        let spans = s.roots.iter().filter_map(|&i| s.span_node(i)).collect();
        Report {
            spans,
            counters: s.counters.clone(),
            gauges: s.gauges.clone(),
            histograms: s
                .histograms
                .iter()
                .filter_map(|(k, h)| h.summary().map(|sum| (k.clone(), sum)))
                .collect(),
        }
    }

    /// Clears all recorded state (the handle stays enabled).
    pub fn reset(&self) {
        if let Some(inner) = &self.inner {
            *inner.state() = State::default();
        }
    }
}

struct Inner {
    state: Mutex<State>,
}

impl Inner {
    /// Locks the state; a poisoning panic elsewhere only means telemetry
    /// from that thread is partial, so recording continues.
    fn state(&self) -> MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Opens (or re-enters) the child named `name` under the current span
    /// and returns its node index.
    fn open(&self, name: &str) -> usize {
        let mut s = self.state();
        let parent = s.stack.last().copied();
        let siblings = match parent {
            Some(p) => &s.nodes[p].children,
            None => &s.roots,
        };
        let existing = siblings.iter().copied().find(|&i| s.nodes[i].name == name);
        let idx = match existing {
            Some(i) => i,
            None => {
                let idx = s.nodes.len();
                s.nodes.push(Node {
                    name: name.to_owned(),
                    children: Vec::new(),
                    calls: 0,
                    total_ns: 0,
                });
                match parent {
                    Some(p) => s.nodes[p].children.push(idx),
                    None => s.roots.push(idx),
                }
                idx
            }
        };
        s.stack.push(idx);
        idx
    }

    /// Closes the span at `idx` with the measured duration. Tolerates
    /// out-of-order guard drops by unwinding the stack down to `idx`.
    fn close(&self, idx: usize, dur_ns: u128, ms: f64) {
        let mut s = self.state();
        if let Some(pos) = s.stack.iter().rposition(|&i| i == idx) {
            s.stack.truncate(pos);
        }
        let name = {
            let node = &mut s.nodes[idx];
            node.calls = node.calls.saturating_add(1);
            node.total_ns = node.total_ns.saturating_add(dur_ns);
            node.name.clone()
        };
        s.histograms.entry(name).or_insert_with(Histogram::default_ms).record(ms);
    }
}

/// Aggregated span-tree state plus the scalar metric stores.
#[derive(Default)]
struct State {
    /// Arena of aggregated span nodes.
    nodes: Vec<Node>,
    /// Indices of top-level spans, in first-seen order.
    roots: Vec<usize>,
    /// Currently open span indices, innermost last.
    stack: Vec<usize>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl State {
    /// Builds the reported subtree at `idx`; `None` when the span (and
    /// every descendant) is still open and has nothing to report yet.
    fn span_node(&self, idx: usize) -> Option<SpanNode> {
        let node = &self.nodes[idx];
        let children: Vec<SpanNode> =
            node.children.iter().filter_map(|&c| self.span_node(c)).collect();
        if node.calls == 0 && children.is_empty() {
            return None;
        }
        Some(SpanNode {
            name: node.name.clone(),
            calls: node.calls,
            total_ms: node.total_ns as f64 / 1e6, // cast-ok: ns precision beyond f64 is irrelevant at ms scale
            children,
        })
    }
}

/// One aggregated node: all calls to the same span name under the same
/// parent share a node.
struct Node {
    name: String,
    children: Vec<usize>,
    calls: u64,
    total_ns: u128,
}

/// RAII guard for an open span; records the elapsed time on drop.
/// Inert (zero state) when produced by a disabled recorder.
#[must_use = "a span records its duration when the guard drops"]
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    inner: Arc<Inner>,
    idx: usize,
    start: Instant,
}

impl Span {
    /// Whether this guard will record anything (false for disabled
    /// recorders).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let elapsed = active.start.elapsed();
            // cast-ok: sub-ns precision is irrelevant at ms scale
            active.inner.close(active.idx, elapsed.as_nanos(), elapsed.as_secs_f64() * 1e3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_observed_aggregates_like_a_guard() {
        let obs = Recorder::enabled();
        obs.span_observed("stage", std::time::Duration::from_millis(3));
        {
            let _outer = obs.span("outer");
            obs.span_observed("stage.child", std::time::Duration::from_millis(2));
            obs.span_observed("stage.child", std::time::Duration::from_millis(5));
        }
        let report = obs.report();
        let stage = report.spans.iter().find(|s| s.name == "stage").expect("root span");
        assert_eq!(stage.calls, 1);
        assert!(stage.total_ms >= 2.9);
        let outer = report.spans.iter().find(|s| s.name == "outer").expect("outer span");
        let child = outer.children.iter().find(|s| s.name == "stage.child").expect("child");
        assert_eq!(child.calls, 2);
        assert!(child.total_ms >= 6.9);
        assert!(report.histograms.contains_key("stage.child"));
        // The disabled recorder stays inert.
        Recorder::disabled().span_observed("stage", std::time::Duration::from_millis(1));
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let obs = Recorder::disabled();
        assert!(!obs.is_enabled());
        let span = obs.span("anything");
        assert!(!span.is_recording());
        drop(span);
        obs.add("c", 1);
        obs.gauge("g", 1.0);
        obs.observe_ms("h", 1.0);
        let report = obs.report();
        assert!(report.spans.is_empty());
        assert!(report.counters.is_empty());
        assert!(report.gauges.is_empty());
        assert!(report.histograms.is_empty());
        assert_eq!(format!("{obs:?}"), "Recorder { enabled: false }");
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Recorder::default().is_enabled());
    }

    #[test]
    fn spans_nest_and_aggregate_by_name() {
        let obs = Recorder::enabled();
        for _ in 0..3 {
            let _outer = obs.span("outer");
            {
                let _inner = obs.span("inner");
            }
            {
                let _inner = obs.span("inner");
            }
        }
        let report = obs.report();
        assert_eq!(report.spans.len(), 1);
        let outer = &report.spans[0];
        assert_eq!((outer.name.as_str(), outer.calls), ("outer", 3));
        assert_eq!(outer.children.len(), 1, "same-name children aggregate");
        let inner = &outer.children[0];
        assert_eq!((inner.name.as_str(), inner.calls), ("inner", 6));
        assert!(outer.total_ms >= inner.total_ms, "parent time includes children");
        // Span closes feed the histograms under the span's name.
        assert_eq!(report.histograms["outer"].count, 3);
        assert_eq!(report.histograms["inner"].count, 6);
    }

    #[test]
    fn sibling_spans_stay_distinct() {
        let obs = Recorder::enabled();
        {
            let _root = obs.span("root");
            let _a = obs.span("a");
            drop(_a);
            let _b = obs.span("b");
        }
        let report = obs.report();
        let names: Vec<&str> = report.spans[0].children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn out_of_order_drop_does_not_corrupt_the_tree() {
        let obs = Recorder::enabled();
        let outer = obs.span("outer");
        let inner = obs.span("inner");
        drop(outer); // parent first: stack unwinds through the child
        drop(inner);
        let _next = obs.span("next");
        drop(_next);
        let report = obs.report();
        let roots: Vec<&str> = report.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(roots, ["outer", "next"], "next must not nest under a dead span");
    }

    #[test]
    fn counters_saturate_and_gauges_overwrite() {
        let obs = Recorder::enabled();
        obs.add("c", u64::MAX - 1);
        obs.add("c", 5);
        obs.gauge("g", 1.0);
        obs.gauge("g", 2.5);
        let report = obs.report();
        assert_eq!(report.counters["c"], u64::MAX);
        assert_eq!(report.gauges["g"], 2.5);
    }

    #[test]
    fn reset_clears_state_but_stays_enabled() {
        let obs = Recorder::enabled();
        obs.add("c", 1);
        let _s = obs.span("s");
        drop(_s);
        obs.reset();
        assert!(obs.is_enabled());
        let report = obs.report();
        assert!(report.spans.is_empty() && report.counters.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let obs = Recorder::enabled();
        let clone = obs.clone();
        clone.add("shared", 7);
        assert_eq!(obs.report().counters["shared"], 7);
    }

    #[test]
    fn open_spans_are_excluded_from_the_report() {
        let obs = Recorder::enabled();
        let _open = obs.span("open");
        let report = obs.report();
        assert!(report.spans.is_empty(), "unclosed spans must not appear");
    }
}
