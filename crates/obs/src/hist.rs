//! Fixed-bucket histograms with percentile summaries.
//!
//! Buckets are defined by a fixed, sorted list of upper bounds chosen at
//! construction (no re-bucketing, no allocation on the record path); one
//! implicit overflow bucket catches everything above the last bound.
//! Percentiles are estimated as the upper bound of the bucket containing
//! the target rank, clamped to the observed `[min, max]` — so single-sample
//! and all-equal histograms report the exact value, and
//! `p50 ≤ p95 ≤ p99` holds by construction (cumulative ranks are
//! monotone and clamping preserves order).

use serde::{Deserialize, Serialize};

/// A fixed-bucket histogram over `f64` samples (milliseconds by
/// convention, but any unit works). Bucket counts and the total count
/// saturate instead of wrapping.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Strictly increasing bucket upper bounds; a sample `v` lands in the
    /// first bucket with `v <= bound`, or in the overflow bucket.
    bounds: Vec<f64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1` (overflow last).
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over the given upper bounds. Non-finite bounds are
    /// dropped and the rest sorted and deduplicated.
    pub fn new(mut bounds: Vec<f64>) -> Self {
        bounds.retain(|b| b.is_finite());
        bounds.sort_by(f64::total_cmp);
        bounds.dedup();
        let n = bounds.len();
        Self {
            bounds,
            counts: vec![0; n + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The default latency scale: exponential bounds from 1 µs to ~134 s
    /// (0.001 ms · 2⁰ … 2²⁷), 28 buckets plus overflow.
    pub fn default_ms() -> Self {
        Self::new((0..28).map(|i| 0.001 * f64::powi(2.0, i)).collect())
    }

    /// Records one sample. Non-finite samples are ignored (a NaN duration
    /// is a caller bug, and poisoning min/max would hide real data).
    pub fn record(&mut self, value: f64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples at once (counts saturate; used by
    /// tests to exercise overflow without 2⁶⁴ iterations).
    pub fn record_n(&mut self, value: f64, n: u64) {
        if !value.is_finite() || n == 0 {
            return;
        }
        let idx = self.bounds.partition_point(|b| value > *b);
        self.counts[idx] = self.counts[idx].saturating_add(n);
        self.count = self.count.saturating_add(n);
        // cast-ok: sample multiplicity, exact well below 2^53 in practice
        self.sum += value * n as f64;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded sample, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        // cast-ok: count precision beyond 2^53 is irrelevant for a mean
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Estimated `q`-quantile (`q` clamped to `[0, 1]`), `None` when
    /// empty: the upper bound of the bucket holding the target rank,
    /// clamped to the observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // cast-ok: rank arithmetic; saturating at 2^53 ranks is harmless
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cumulative = cumulative.saturating_add(*c);
            if cumulative >= target {
                let estimate = self.bounds.get(i).copied().unwrap_or(self.max);
                return Some(estimate.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// The serializable summary, `None` when empty.
    pub fn summary(&self) -> Option<HistogramSummary> {
        let (min, max, mean) = (self.min()?, self.max()?, self.mean()?);
        let (p50, p95, p99) = (self.quantile(0.5)?, self.quantile(0.95)?, self.quantile(0.99)?);
        Some(HistogramSummary { count: self.count, sum: self.sum, min, max, mean, p50, p95, p99 })
    }
}

/// The reported shape of one histogram: totals plus percentile estimates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Samples recorded (saturating).
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Mean sample.
    pub mean: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_nothing() {
        let h = Histogram::default_ms();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert!(h.summary().is_none());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = Histogram::default_ms();
        h.record(3.7);
        let s = h.summary().unwrap();
        assert_eq!(s.count, 1);
        assert_eq!((s.min, s.max, s.mean), (3.7, 3.7, 3.7));
        assert_eq!((s.p50, s.p95, s.p99), (3.7, 3.7, 3.7));
    }

    #[test]
    fn all_equal_samples_collapse_percentiles() {
        let mut h = Histogram::default_ms();
        for _ in 0..1000 {
            h.record(0.25);
        }
        let s = h.summary().unwrap();
        assert_eq!(s.count, 1000);
        assert_eq!((s.p50, s.p95, s.p99), (0.25, 0.25, 0.25));
        assert!((s.sum - 250.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let mut h = Histogram::default_ms();
        for i in 0..500 {
            // cast-ok: test data
            h.record(0.01 * (i as f64 + 1.0));
        }
        let s = h.summary().unwrap();
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99, "{s:?}");
        assert!(s.min <= s.p50 && s.p99 <= s.max, "{s:?}");
    }

    #[test]
    fn overflow_bucket_catches_huge_samples() {
        let mut h = Histogram::new(vec![1.0, 2.0]);
        h.record(1e12); // far beyond the last bound
        h.record(0.5);
        let s = h.summary().unwrap();
        assert_eq!(s.max, 1e12);
        assert_eq!(s.p99, 1e12, "overflow percentile estimates from max");
        assert_eq!(s.p50, 1.0, "median bucket's upper bound");
    }

    #[test]
    fn bucket_counts_saturate_instead_of_wrapping() {
        let mut h = Histogram::new(vec![1.0]);
        h.record_n(0.5, u64::MAX - 1);
        h.record_n(0.5, 10);
        assert_eq!(h.count(), u64::MAX);
        // Percentiles still answer sanely after saturation.
        assert_eq!(h.quantile(0.99), Some(0.5));
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut h = Histogram::default_ms();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
        h.record(1.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.summary().unwrap().max, 1.0);
    }

    #[test]
    fn bounds_are_sanitized() {
        let mut h = Histogram::new(vec![2.0, f64::NAN, 1.0, 2.0, f64::INFINITY]);
        h.record(1.5);
        h.record(3.0);
        assert_eq!(h.count(), 2);
        let s = h.summary().unwrap();
        assert!(s.p50 >= 1.5 && s.p99 <= 3.0, "{s:?}");
    }

    #[test]
    fn quantile_estimates_respect_bucket_bounds() {
        let mut h = Histogram::new(vec![1.0, 10.0, 100.0]);
        for _ in 0..90 {
            h.record(0.5); // bucket ≤ 1.0
        }
        for _ in 0..10 {
            h.record(50.0); // bucket ≤ 100.0
        }
        let s = h.summary().unwrap();
        assert_eq!(s.p50, 1.0, "median bucket's upper bound");
        assert!(s.p95 > 1.0 && s.p95 <= 100.0);
    }
}
