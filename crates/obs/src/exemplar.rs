//! Per-trip exemplars: the top-K slowest units of work, each with its
//! full stage breakdown.
//!
//! Aggregates (the span tree) say *how much* time a stage took across a
//! batch; exemplars say *which trips* paid for it. `summarize_batch`
//! offers one [`Exemplar`] per trip and the reservoir keeps the K
//! slowest, deterministically: ties on total duration break on the trip
//! id, and offers arrive in input order on the caller thread, so two
//! runs over identical inputs keep identical exemplar sets.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default reservoir size: enough to eyeball the slow tail without
/// bloating the report.
pub const DEFAULT_EXEMPLAR_K: usize = 5;

/// One retained unit of work: a trip id, its total duration, and the
/// per-stage breakdown (stage name → milliseconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Exemplar {
    /// Stable identifier, e.g. `trip_17` (batch index) or a dataset id.
    pub id: String,
    /// End-to-end duration in milliseconds.
    pub total_ms: f64,
    /// Stage name → milliseconds spent in that stage.
    pub stages: BTreeMap<String, f64>,
}

/// Top-K (by `total_ms`, descending) reservoir of [`Exemplar`]s.
#[derive(Debug, Clone)]
pub struct ExemplarReservoir {
    k: usize,
    items: Vec<Exemplar>,
}

impl Default for ExemplarReservoir {
    fn default() -> Self {
        Self::new(DEFAULT_EXEMPLAR_K)
    }
}

impl ExemplarReservoir {
    /// A reservoir keeping the `k` slowest offers (clamped to ≥ 1).
    pub fn new(k: usize) -> Self {
        Self { k: k.max(1), items: Vec::new() }
    }

    /// The reservoir capacity.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Offers one exemplar; it is retained iff it ranks in the top K by
    /// duration (ties break toward the lexicographically smaller id, so
    /// retention is deterministic).
    pub fn offer(&mut self, ex: Exemplar) {
        self.items.push(ex);
        self.items.sort_by(|a, b| b.total_ms.total_cmp(&a.total_ms).then_with(|| a.id.cmp(&b.id)));
        self.items.truncate(self.k);
    }

    /// Retained exemplars, slowest first.
    pub fn sorted(&self) -> Vec<Exemplar> {
        self.items.clone()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(id: &str, total_ms: f64) -> Exemplar {
        Exemplar { id: id.to_owned(), total_ms, stages: BTreeMap::new() }
    }

    #[test]
    fn keeps_the_k_slowest_in_descending_order() {
        let mut r = ExemplarReservoir::new(3);
        for (id, ms) in [("a", 1.0), ("b", 9.0), ("c", 4.0), ("d", 7.0), ("e", 2.0)] {
            r.offer(ex(id, ms));
        }
        let kept: Vec<(String, f64)> = r.sorted().into_iter().map(|e| (e.id, e.total_ms)).collect();
        assert_eq!(kept, vec![("b".to_owned(), 9.0), ("d".to_owned(), 7.0), ("c".to_owned(), 4.0)]);
    }

    #[test]
    fn ties_break_on_id_deterministically() {
        let mut r = ExemplarReservoir::new(2);
        r.offer(ex("z", 5.0));
        r.offer(ex("a", 5.0));
        r.offer(ex("m", 5.0));
        let ids: Vec<String> = r.sorted().into_iter().map(|e| e.id).collect();
        assert_eq!(ids, ["a", "m"]);
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut r = ExemplarReservoir::new(0);
        assert_eq!(r.capacity(), 1);
        r.offer(ex("a", 1.0));
        r.offer(ex("b", 2.0));
        assert_eq!(r.sorted().len(), 1);
        assert_eq!(r.sorted()[0].id, "b");
    }

    #[test]
    fn stages_round_trip_through_json() {
        let mut stages = BTreeMap::new();
        stages.insert("partition".to_owned(), 3.5);
        stages.insert("render".to_owned(), 0.5);
        let e = Exemplar { id: "trip_7".to_owned(), total_ms: 4.0, stages };
        let json = serde_json::to_string(&e).unwrap_or_default();
        let back: Exemplar = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(back, e);
    }
}
