//! Bounded event journal: the event-level complement of the aggregated
//! span tree.
//!
//! The aggregate report answers "how much time did stage X take in
//! total?"; it cannot answer "which trip was slow, and in which stage?".
//! The journal keeps the individual begin/end/instant events — trace id,
//! span id, parent id, monotonic timestamp, and a small static-str arg
//! set — in a fixed-capacity ring buffer. When the buffer is full the
//! *oldest* event is dropped and counted, so a long run keeps the most
//! recent window of activity and the report's `obs.events_dropped`
//! counter says exactly how much history was shed.
//!
//! Determinism: events are drained in ascending sequence order, and the
//! sequence is assigned on push under the recorder's one lock — replayed
//! batch events (see `Recorder::replay_span`) arrive in input order on
//! the caller thread, so two runs with identical inputs produce journals
//! with identical event *structure* (names, nesting, order); only the
//! wall-clock timestamps differ. The Chrome exporter's logical clock
//! (`trace_export::TraceClock::Logical`) erases that last difference.

use std::collections::VecDeque;

/// Default ring capacity used by `Recorder::enabled_with_journal` callers
/// that do not pick their own: 64k events ≈ 4k fully-instrumented trips.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1 << 16;

/// What an [`Event`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A zero-duration marker.
    Instant,
}

/// A small, allocation-free argument value attached to an event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument (indices, counts).
    U64(u64),
    /// Floating-point argument (durations, rates).
    F64(f64),
    /// Static string argument (mode names, stage labels).
    Str(&'static str),
}

/// One named argument: the keys are `&'static str` by design, so pushing
/// an event never allocates for the arg *names*.
pub type Arg = (&'static str, ArgValue);

/// One journaled event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotonically increasing sequence number, assigned on push; the
    /// drain order. Never reused, so `seq` also counts total pushes.
    pub seq: u64,
    /// Begin / end / instant.
    pub kind: EventKind,
    /// Span or marker name.
    pub name: String,
    /// Trace this event belongs to (one per journal).
    pub trace_id: u64,
    /// Span instance id (0 for instants).
    pub span_id: u64,
    /// Enclosing span instance id (0 at the root).
    pub parent_id: u64,
    /// Monotonic nanoseconds since the journal's origin.
    pub ts_ns: u64,
    /// Small argument set (begin/instant events only by convention).
    pub args: Vec<Arg>,
}

/// Fixed-capacity ring buffer of [`Event`]s with drop-oldest overflow.
#[derive(Debug)]
pub struct Journal {
    capacity: usize,
    buf: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
    trace_id: u64,
}

impl Journal {
    /// A journal holding at most `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(1024)),
            next_seq: 0,
            dropped: 0,
            trace_id: 1,
        }
    }

    /// The fixed capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events shed by drop-oldest overflow so far (the report surfaces
    /// this as the `obs.events_dropped` counter).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed (retained + dropped).
    pub fn total_pushed(&self) -> u64 {
        self.next_seq
    }

    /// The trace id stamped on every event.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Appends one event, dropping the oldest retained event when full.
    /// Returns the assigned sequence number.
    pub fn push(
        &mut self,
        kind: EventKind,
        name: &str,
        span_id: u64,
        parent_id: u64,
        ts_ns: u64,
        args: &[Arg],
    ) -> u64 {
        if self.buf.len() >= self.capacity {
            self.buf.pop_front();
            self.dropped = self.dropped.saturating_add(1);
        }
        let seq = self.next_seq;
        self.next_seq = self.next_seq.saturating_add(1);
        self.buf.push_back(Event {
            seq,
            kind,
            name: name.to_owned(),
            trace_id: self.trace_id,
            span_id,
            parent_id,
            ts_ns,
            args: args.to_vec(),
        });
        seq
    }

    /// Snapshot of the retained events in ascending `seq` order — the
    /// deterministic drain order.
    pub fn events(&self) -> Vec<Event> {
        self.buf.iter().cloned().collect()
    }

    /// The sequence number of the oldest retained event (`None` when
    /// empty). Everything below it was dropped.
    pub fn oldest_seq(&self) -> Option<u64> {
        self.buf.front().map(|e| e.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_n(j: &mut Journal, n: u64) {
        for i in 0..n {
            j.push(EventKind::Instant, "e", 0, 0, i, &[]);
        }
    }

    #[test]
    fn capacity_is_clamped_and_bounds_retention() {
        let mut j = Journal::new(0);
        assert_eq!(j.capacity(), 1);
        push_n(&mut j, 5);
        assert_eq!(j.len(), 1);
        assert_eq!(j.dropped(), 4);
        assert_eq!(j.total_pushed(), 5);
    }

    #[test]
    fn drop_oldest_keeps_the_newest_window_in_order() {
        let mut j = Journal::new(4);
        push_n(&mut j, 10);
        let events = j.events();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [6, 7, 8, 9], "newest 4 of 10, ascending");
        assert_eq!(j.oldest_seq(), Some(6));
        assert_eq!(j.dropped(), 6);
        assert_eq!(j.len() as u64 + j.dropped(), j.total_pushed());
    }

    #[test]
    fn events_carry_ids_timestamps_and_args() {
        let mut j = Journal::new(8);
        j.push(EventKind::Begin, "trip", 3, 1, 42, &[("trip", ArgValue::U64(7))]);
        j.push(EventKind::End, "trip", 3, 1, 99, &[]);
        let events = j.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Begin);
        assert_eq!((events[0].span_id, events[0].parent_id), (3, 1));
        assert_eq!(events[0].ts_ns, 42);
        assert_eq!(events[0].trace_id, j.trace_id());
        assert_eq!(events[0].args, vec![("trip", ArgValue::U64(7))]);
        assert_eq!(events[1].kind, EventKind::End);
        assert_eq!(events[1].ts_ns, 99);
    }

    #[test]
    fn empty_journal_reports_nothing() {
        let j = Journal::new(16);
        assert!(j.is_empty());
        assert_eq!(j.events().len(), 0);
        assert_eq!(j.oldest_seq(), None);
        assert_eq!(j.dropped(), 0);
    }
}
