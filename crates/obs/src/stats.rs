//! Human-readable rendering of a [`Report`]: the span tree with timings
//! plus compact counter/gauge/histogram tables. This is what
//! `stmaker-cli --trace` prints.

use crate::report::{Report, SpanNode};
use std::fmt::Write as _;

/// Renders the whole report as an aligned text block.
pub fn render(report: &Report) -> String {
    let mut out = String::new();
    render_span_tree(report, &mut out);
    render_exemplars(report, &mut out);
    render_windows(report, &mut out);
    render_counters(report, &mut out);
    render_gauges(report, &mut out);
    render_histograms(report, &mut out);
    out
}

/// Renders the top-K slowest trips with their stage breakdowns.
fn render_exemplars(report: &Report, out: &mut String) {
    if report.exemplars.is_empty() {
        return;
    }
    let _ = writeln!(out, "\n== exemplars (slowest trips) ==");
    let width = report.exemplars.iter().map(|e| e.id.len()).max().unwrap_or(0);
    for e in &report.exemplars {
        let mut stages: Vec<String> =
            e.stages.iter().map(|(name, ms)| format!("{name} {}", fmt_ms(*ms))).collect();
        if stages.is_empty() {
            stages.push("(no stage breakdown)".to_owned());
        }
        let _ = writeln!(
            out,
            "{:<width$}  total {:>10}  [{}]",
            e.id,
            fmt_ms(e.total_ms),
            stages.join(", "),
        );
    }
}

/// Renders the sliding-window counters from the streaming path.
fn render_windows(report: &Report, out: &mut String) {
    if report.windows.is_empty() {
        return;
    }
    let _ = writeln!(out, "\n== windows ==");
    for w in &report.windows {
        let counters: Vec<String> =
            w.counters.iter().map(|(name, v)| format!("{name} {v}")).collect();
        let hists: Vec<String> =
            w.histograms.iter().map(|(name, h)| format!("{name} p95 {}", fmt_ms(h.p95))).collect();
        let mut parts = counters;
        parts.extend(hists);
        let body = if parts.is_empty() { "(empty)".to_owned() } else { parts.join(", ") };
        let _ = writeln!(out, "window {:>4}  {body}", w.index);
    }
}

/// Renders only the span tree (`--trace` header block).
fn render_span_tree(report: &Report, out: &mut String) {
    let _ = writeln!(out, "== spans ==");
    if report.spans.is_empty() {
        let _ = writeln!(out, "(no spans recorded)");
        return;
    }
    // Pre-compute the widest indented name so timings align.
    let mut width = 0;
    fn measure(nodes: &[SpanNode], depth: usize, width: &mut usize) {
        for n in nodes {
            *width = (*width).max(depth * 2 + n.name.len());
            measure(&n.children, depth + 1, width);
        }
    }
    measure(&report.spans, 0, &mut width);
    fn walk(nodes: &[SpanNode], depth: usize, width: usize, out: &mut String) {
        for n in nodes {
            let indent = "  ".repeat(depth);
            let _ = writeln!(
                out,
                "{indent}{:<pad$}  calls {:>6}  total {:>10}  mean {:>10}",
                n.name,
                n.calls,
                fmt_ms(n.total_ms),
                fmt_ms(n.mean_ms()),
                pad = width - depth * 2,
            );
            walk(&n.children, depth + 1, width, out);
        }
    }
    walk(&report.spans, 0, width, out);
}

fn render_counters(report: &Report, out: &mut String) {
    if report.counters.is_empty() {
        return;
    }
    let _ = writeln!(out, "\n== counters ==");
    let width = report.counters.keys().map(String::len).max().unwrap_or(0);
    for (name, value) in &report.counters {
        let _ = writeln!(out, "{name:<width$}  {value}");
    }
}

fn render_gauges(report: &Report, out: &mut String) {
    if report.gauges.is_empty() {
        return;
    }
    let _ = writeln!(out, "\n== gauges ==");
    let width = report.gauges.keys().map(String::len).max().unwrap_or(0);
    for (name, value) in &report.gauges {
        let _ = writeln!(out, "{name:<width$}  {value}");
    }
}

fn render_histograms(report: &Report, out: &mut String) {
    if report.histograms.is_empty() {
        return;
    }
    let _ = writeln!(out, "\n== histograms (ms) ==");
    let width = report.histograms.keys().map(String::len).max().unwrap_or(4).max(4);
    let _ = writeln!(
        out,
        "{:<width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
        "name", "count", "mean", "p50", "p95", "p99", "max"
    );
    for (name, h) in &report.histograms {
        let _ = writeln!(
            out,
            "{name:<width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
            h.count,
            fmt_ms(h.mean),
            fmt_ms(h.p50),
            fmt_ms(h.p95),
            fmt_ms(h.p99),
            fmt_ms(h.max),
        );
    }
}

/// Milliseconds with a unit, scaled for readability.
fn fmt_ms(ms: f64) -> String {
    if !ms.is_finite() {
        "-".to_owned()
    } else if ms >= 1000.0 {
        format!("{:.2} s", ms / 1000.0)
    } else if ms >= 1.0 {
        format!("{ms:.2} ms")
    } else {
        format!("{:.1} µs", ms * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn render_covers_every_section() {
        let obs = Recorder::enabled();
        {
            let _root = obs.span("summarize");
            let _stage = obs.span("partition");
        }
        obs.add("partition.dp_cells", 7);
        obs.gauge("k", 3.0);
        let text = render(&obs.report());
        assert!(text.contains("== spans =="), "{text}");
        assert!(text.contains("summarize"), "{text}");
        assert!(text.contains("  partition"), "child is indented: {text}");
        assert!(text.contains("== counters =="), "{text}");
        assert!(text.contains("partition.dp_cells"), "{text}");
        assert!(text.contains("== gauges =="), "{text}");
        assert!(text.contains("== histograms (ms) =="), "{text}");
    }

    #[test]
    fn exemplars_and_windows_render_when_present() {
        let obs = Recorder::enabled();
        let mut stages = std::collections::BTreeMap::new();
        stages.insert("partition".to_owned(), 3.0);
        obs.exemplar(crate::Exemplar { id: "trip_9".into(), total_ms: 4.0, stages });
        let mut w = crate::SlidingWindow::new(2);
        w.add(2, "stream.window.points", 6);
        w.observe_ms(2, "stream.window.refresh_ms", 1.0);
        obs.set_windows(w.summaries());
        let text = render(&obs.report());
        assert!(text.contains("== exemplars (slowest trips) =="), "{text}");
        assert!(text.contains("trip_9"), "{text}");
        assert!(text.contains("partition 3.00 ms"), "{text}");
        assert!(text.contains("== windows =="), "{text}");
        assert!(text.contains("window    2"), "{text}");
        assert!(text.contains("stream.window.points 6"), "{text}");
        // Absent sections stay absent.
        let plain = render(&Recorder::enabled().report());
        assert!(!plain.contains("== exemplars"), "{plain}");
        assert!(!plain.contains("== windows"), "{plain}");
    }

    #[test]
    fn empty_report_renders_placeholder() {
        let text = render(&Report::default());
        assert!(text.contains("(no spans recorded)"));
        assert!(!text.contains("== counters =="), "empty sections are omitted");
    }

    #[test]
    fn fmt_ms_scales_units() {
        assert_eq!(fmt_ms(0.5), "500.0 µs");
        assert_eq!(fmt_ms(12.345), "12.35 ms");
        assert_eq!(fmt_ms(2500.0), "2.50 s");
        assert_eq!(fmt_ms(f64::NAN), "-");
    }
}
