//! Report diffing: the regression gate behind `stmaker obs diff`.
//!
//! Compares two telemetry reports (committed baseline vs. fresh run) and
//! classifies differences:
//!
//! * **hard** — a metric key or span name present in the baseline is
//!   missing from the new report. Schema loss breaks every CI check keyed
//!   on that name, so this always fails the gate.
//! * **soft** — a span's mean time regressed by more than the threshold
//!   ratio. Timing on shared CI hosts is noisy, so callers may downgrade
//!   these to warnings (`--timing-warn-only`).
//!
//! New keys in the fresh report are *not* findings: schema growth is the
//! normal direction of travel (a baseline predating `exemplars` must not
//! fail against a producer that emits them).

use crate::report::{Report, SpanNode};
use std::collections::BTreeMap;

/// Tuning for [`diff`].
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// A span regresses when `new_mean / base_mean > threshold`.
    pub threshold: f64,
    /// Means below this many milliseconds in the baseline are ignored
    /// for timing comparisons (ratio noise on trivial spans).
    pub min_base_ms: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self { threshold: 2.0, min_base_ms: 0.05 }
    }
}

/// How serious one [`Finding`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Schema/key loss: always a failure.
    Hard,
    /// Timing regression: failure by default, downgradable to a warning.
    Soft,
}

/// One difference worth reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Hard (key loss) or soft (timing).
    pub severity: Severity,
    /// Human-readable description naming the metric and the delta.
    pub message: String,
}

/// Flattens a span tree into `parent/child` path → (calls, mean_ms).
fn flatten(spans: &[SpanNode], prefix: &str, out: &mut BTreeMap<String, (u64, f64)>) {
    for n in spans {
        let path = if prefix.is_empty() { n.name.clone() } else { format!("{prefix}/{}", n.name) };
        out.insert(path.clone(), (n.calls, n.mean_ms()));
        flatten(&n.children, &path, out);
    }
}

/// Compares `new` against `base`; see the module docs for the rules.
/// Findings come out hard-first, then alphabetically by message.
pub fn diff(base: &Report, new: &Report, opts: &DiffOptions) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lost = |kind: &str, name: &str| Finding {
        severity: Severity::Hard,
        message: format!("{kind} `{name}` is in the baseline but missing from the new report"),
    };
    for name in base.counters.keys() {
        if !new.counters.contains_key(name) {
            findings.push(lost("counter", name));
        }
    }
    for name in base.gauges.keys() {
        if !new.gauges.contains_key(name) {
            findings.push(lost("gauge", name));
        }
    }
    for name in base.histograms.keys() {
        if !new.histograms.contains_key(name) {
            findings.push(lost("histogram", name));
        }
    }
    let new_names = new.span_names();
    for name in base.span_names() {
        if !new_names.contains(&name) {
            findings.push(lost("span", &name));
        }
    }
    let mut base_flat = BTreeMap::new();
    let mut new_flat = BTreeMap::new();
    flatten(&base.spans, "", &mut base_flat);
    flatten(&new.spans, "", &mut new_flat);
    for (path, (_, base_mean)) in &base_flat {
        let Some((_, new_mean)) = new_flat.get(path) else { continue };
        if *base_mean < opts.min_base_ms {
            continue;
        }
        let ratio = new_mean / base_mean;
        if ratio > opts.threshold {
            findings.push(Finding {
                severity: Severity::Soft,
                message: format!(
                    "span `{path}` mean regressed {ratio:.2}x \
                     ({base_mean:.3} ms -> {new_mean:.3} ms, threshold {:.2}x)",
                    opts.threshold
                ),
            });
        }
    }
    findings.sort_by(|a, b| {
        let rank = |s: Severity| if s == Severity::Hard { 0 } else { 1 };
        rank(a.severity).cmp(&rank(b.severity)).then_with(|| a.message.cmp(&b.message))
    });
    findings
}

/// Renders a compact per-metric delta table (counters, gauges, span
/// means) for `stmaker obs diff`'s stdout, independent of pass/fail.
pub fn render_deltas(base: &Report, new: &Report) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== counter deltas ==");
    let mut any = false;
    for (name, new_v) in &new.counters {
        let base_v = base.counters.get(name).copied();
        match base_v {
            Some(b) if *new_v == b => {}
            Some(b) => {
                // cast-ok: display-only delta; precision loss beyond 2^53 is cosmetic
                let delta = *new_v as f64 - b as f64;
                let _ = writeln!(out, "{name}: {b} -> {new_v} ({delta:+})");
                any = true;
            }
            None => {
                let _ = writeln!(out, "{name}: (new) {new_v}");
                any = true;
            }
        }
    }
    if !any {
        let _ = writeln!(out, "(no counter changes)");
    }
    let _ = writeln!(out, "== span mean deltas (ms) ==");
    let mut base_flat = BTreeMap::new();
    let mut new_flat = BTreeMap::new();
    flatten(&base.spans, "", &mut base_flat);
    flatten(&new.spans, "", &mut new_flat);
    let mut any = false;
    for (path, (_, new_mean)) in &new_flat {
        match base_flat.get(path) {
            Some((_, base_mean)) if *base_mean > 0.0 => {
                let _ = writeln!(
                    out,
                    "{path}: {base_mean:.3} -> {new_mean:.3} ({:.2}x)",
                    new_mean / base_mean
                );
                any = true;
            }
            Some(_) => {
                let _ = writeln!(out, "{path}: 0.000 -> {new_mean:.3}");
                any = true;
            }
            None => {
                let _ = writeln!(out, "{path}: (new) {new_mean:.3}");
                any = true;
            }
        }
    }
    if !any {
        let _ = writeln!(out, "(no spans)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use std::time::Duration;

    fn report(span_ms: u64) -> Report {
        let obs = Recorder::enabled();
        obs.span_observed("summarize", Duration::from_millis(span_ms));
        obs.add("batch.summaries_ok", 10);
        obs.gauge("exec.threads", 1.0);
        obs.observe_ms("summarize", span_ms as f64); // cast-ok: test data
        obs.report()
    }

    #[test]
    fn identical_reports_have_no_findings() {
        let r = report(10);
        assert!(diff(&r, &r, &DiffOptions::default()).is_empty());
    }

    #[test]
    fn timing_regression_is_soft() {
        let base = report(10);
        let new = report(50);
        let f = diff(&base, &new, &DiffOptions::default());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].severity, Severity::Soft);
        assert!(f[0].message.contains("summarize"), "{}", f[0].message);
        // A looser threshold lets it pass.
        let loose = DiffOptions { threshold: 10.0, ..DiffOptions::default() };
        assert!(diff(&base, &new, &loose).is_empty());
    }

    #[test]
    fn key_loss_is_hard_and_sorts_first() {
        let base = report(10);
        let mut new = report(50);
        new.counters.clear();
        let f = diff(&base, &new, &DiffOptions::default());
        assert!(f.len() >= 2, "{f:?}");
        assert_eq!(f[0].severity, Severity::Hard);
        assert!(f[0].message.contains("batch.summaries_ok"), "{}", f[0].message);
        assert!(f.iter().any(|x| x.severity == Severity::Soft));
    }

    #[test]
    fn lost_span_and_gauge_and_histogram_are_hard() {
        let base = report(10);
        let new = Report::default();
        let f = diff(&base, &new, &DiffOptions::default());
        assert!(f.iter().all(|x| x.severity == Severity::Hard));
        let text: Vec<&str> = f.iter().map(|x| x.message.as_str()).collect();
        assert!(text.iter().any(|m| m.starts_with("span `summarize`")), "{text:?}");
        assert!(text.iter().any(|m| m.starts_with("gauge `exec.threads`")), "{text:?}");
        assert!(text.iter().any(|m| m.starts_with("histogram `summarize`")), "{text:?}");
    }

    #[test]
    fn new_keys_are_not_findings() {
        let base = Report::default();
        let new = report(10);
        assert!(diff(&base, &new, &DiffOptions::default()).is_empty());
    }

    #[test]
    fn tiny_baseline_means_are_ignored_for_timing() {
        let base = report(0); // 0 ms mean, below the floor
        let new = report(100);
        let f = diff(&base, &new, &DiffOptions::default());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn delta_table_lists_changes_and_new_keys() {
        let base = report(10);
        let mut new = report(20);
        new.counters.insert("batch.summaries_failed".to_owned(), 1);
        let text = render_deltas(&base, &new);
        assert!(text.contains("== counter deltas =="), "{text}");
        assert!(text.contains("batch.summaries_failed: (new) 1"), "{text}");
        assert!(text.contains("summarize: "), "{text}");
    }
}
