//! Semantic (annotated) trajectories — the baseline representation the paper
//! argues against.
//!
//! Sec. I: "researchers have proposed several models by associating GPS
//! locations with semantic entities such as POIs, roads, regions, resulting
//! in semantic trajectories or annotated trajectories \[38\], \[30\].
//! Nevertheless semantic trajectories have their disadvantages in terms of
//! expressiveness and data volume. … Essentially a semantic trajectory is an
//! enriched version of the raw trajectory, i.e., each space-time point is
//! attached with a set of semantic attributes. Therefore the volume of
//! semantic trajectories can be excessive for storage, processing and
//! communication."
//!
//! This crate implements that baseline faithfully — every sample annotated
//! with its matched road (name/grade/width/direction) and nearby POIs — so
//! the paper's data-volume claim can be *measured* rather than asserted:
//! `exp_volume` in `stmaker-eval` compares bytes(raw) vs bytes(semantic) vs
//! bytes(summary) on the same trips.

use serde::{Deserialize, Serialize};
use stmaker_mapmatch::{MapMatcher, MatchParams};
use stmaker_poi::LandmarkRegistry;
use stmaker_road::RoadNetwork;
use stmaker_trajectory::RawTrajectory;

/// The semantic attributes attached to one GPS sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointAnnotation {
    /// Matched road name, if map matching found one.
    pub road: Option<String>,
    /// The paper's grade code (1 = highway … 7 = feeder).
    pub road_grade: Option<u8>,
    /// Road width in metres.
    pub road_width_m: Option<f64>,
    /// Traffic-direction code (1 = two-way, 2 = one-way).
    pub direction: Option<u8>,
    /// Names of landmarks within the annotation radius, nearest first.
    pub nearby: Vec<String>,
}

/// One annotated space-time point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemanticPoint {
    pub lat: f64,
    pub lon: f64,
    pub t: i64,
    pub annotation: PointAnnotation,
}

/// A semantic trajectory: "an enriched version of the raw trajectory".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemanticTrajectory {
    pub points: Vec<SemanticPoint>,
}

/// Annotation controls.
#[derive(Debug, Clone, Copy)]
pub struct AnnotateParams {
    /// Landmarks within this radius of a sample are attached, metres.
    pub nearby_radius_m: f64,
    /// At most this many nearby landmarks per sample.
    pub max_nearby: usize,
    /// Map-matching parameters.
    pub matching: MatchParams,
}

impl Default for AnnotateParams {
    fn default() -> Self {
        Self { nearby_radius_m: 120.0, max_nearby: 3, matching: MatchParams::default() }
    }
}

/// Builds the semantic trajectory for `raw`: every sample map-matched and
/// annotated with road attributes and nearby landmarks.
pub fn annotate(
    raw: &RawTrajectory,
    net: &RoadNetwork,
    registry: &LandmarkRegistry,
    params: AnnotateParams,
) -> SemanticTrajectory {
    let matcher = MapMatcher::new(net, params.matching);
    let matched = matcher.match_hmm(raw.points());
    let points = raw
        .points()
        .iter()
        .zip(&matched)
        .map(|(p, edge)| {
            let (road, road_grade, road_width_m, direction) = match edge {
                Some(e) => {
                    let e = net.edge(*e);
                    (
                        Some(e.name.clone()),
                        Some(e.grade.code()),
                        Some(e.width_m),
                        Some(e.direction.code()),
                    )
                }
                None => (None, None, None, None),
            };
            // Bounded kNN with a radius cap: dense registries stop
            // materializing every in-radius hit, while the ordering
            // (`total_cmp` distance, then id) is unchanged.
            let nearby = registry
                .k_nearest_within(&p.point, params.max_nearby, params.nearby_radius_m)
                .into_iter()
                .map(|(id, _)| registry.get(id).name.clone())
                .collect();
            SemanticPoint {
                lat: p.point.lat,
                lon: p.point.lon,
                t: p.t.0,
                annotation: PointAnnotation { road, road_grade, road_width_m, direction, nearby },
            }
        })
        .collect();
    SemanticTrajectory { points }
}

impl SemanticTrajectory {
    /// Serialized size in bytes (compact JSON) — the storage/communication
    /// cost the paper's data-volume argument is about.
    pub fn json_bytes(&self) -> usize {
        serde_json::to_string(self).expect("plain data serializes").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmaker_geo::GeoPoint;
    use stmaker_poi::{Landmark, LandmarkId, LandmarkKind};
    use stmaker_road::{Direction, RoadGrade};
    use stmaker_trajectory::{RawPoint, Timestamp};

    fn base() -> GeoPoint {
        GeoPoint::new(39.9, 116.4)
    }

    fn fixture() -> (RoadNetwork, LandmarkRegistry, RawTrajectory) {
        let mut net = RoadNetwork::new();
        let a = net.add_node(base());
        let b = net.add_node(base().destination(90.0, 2_000.0));
        net.add_edge(a, b, RoadGrade::Express, 22.0, Direction::TwoWay, "East Expy");
        let registry = LandmarkRegistry::from_landmarks(vec![Landmark {
            id: LandmarkId(0),
            point: base().destination(90.0, 500.0).destination(0.0, 40.0),
            name: "Midway Mall".into(),
            kind: LandmarkKind::PoiCluster { size: 5 },
            significance: 0.9,
        }]);
        let raw = RawTrajectory::new(
            (0..=20)
                .map(|i| RawPoint {
                    point: base().destination(90.0, 100.0 * i as f64),
                    t: Timestamp(10 * i),
                })
                .collect(),
        );
        (net, registry, raw)
    }

    #[test]
    fn every_sample_is_annotated() {
        let (net, registry, raw) = fixture();
        let sem = annotate(&raw, &net, &registry, AnnotateParams::default());
        assert_eq!(sem.points.len(), raw.len());
        assert!(sem.points.iter().all(|p| p.annotation.road.as_deref() == Some("East Expy")));
        assert!(sem.points.iter().all(|p| p.annotation.road_grade == Some(2)));
        // The mall is near samples 4–6 only.
        let with_mall = sem
            .points
            .iter()
            .filter(|p| p.annotation.nearby.contains(&"Midway Mall".to_string()))
            .count();
        assert!((1..=4).contains(&with_mall), "mall annotated on {with_mall} samples");
    }

    #[test]
    fn semantic_volume_exceeds_raw_volume() {
        // The paper's data-volume claim, in miniature: the enriched form is
        // strictly larger than the raw CSV it annotates.
        let (net, registry, raw) = fixture();
        let sem = annotate(&raw, &net, &registry, AnnotateParams::default());
        let raw_bytes = raw.len() * "39.900000,116.400000,200\n".len();
        assert!(
            sem.json_bytes() > 2 * raw_bytes,
            "semantic {} vs raw {raw_bytes}",
            sem.json_bytes()
        );
    }

    #[test]
    fn unmatched_samples_annotate_as_none() {
        let (net, registry, _) = fixture();
        let far = base().destination(0.0, 50_000.0);
        let raw = RawTrajectory::new(vec![
            RawPoint { point: far, t: Timestamp(0) },
            RawPoint { point: far.destination(90.0, 100.0), t: Timestamp(10) },
        ]);
        let sem = annotate(&raw, &net, &registry, AnnotateParams::default());
        assert!(sem.points.iter().all(|p| p.annotation.road.is_none()));
        assert!(sem.points.iter().all(|p| p.annotation.nearby.is_empty()));
    }

    #[test]
    fn nearby_lookup_keeps_distance_then_id_ordering() {
        // Regression for the k_nearest_within switch: a dense ring of
        // landmarks (including exact distance ties) must annotate with the
        // same names, in the same order, as the old within_radius + sort +
        // take(max_nearby) lookup — under both spatial backends.
        let mut net = RoadNetwork::new();
        let a = net.add_node(base());
        let b = net.add_node(base().destination(90.0, 1_000.0));
        net.add_edge(a, b, RoadGrade::County, 9.0, Direction::TwoWay, "Ring Rd");
        let lm = |i: u32, p: GeoPoint| Landmark {
            id: LandmarkId(i),
            point: p,
            name: format!("L{i}"),
            kind: LandmarkKind::TurningPoint,
            significance: 0.5,
        };
        // Two landmarks at the identical point (a distance tie broken by id),
        // plus a ring of close ones.
        let tie = base().destination(0.0, 80.0);
        let mut lms = vec![lm(0, tie), lm(1, tie)];
        for i in 0..12 {
            lms.push(lm(2 + i, base().destination(30.0 * i as f64, 60.0 + 5.0 * i as f64)));
        }
        let mut registry = LandmarkRegistry::from_landmarks(lms);
        let raw = RawTrajectory::new(vec![
            RawPoint { point: base(), t: Timestamp(0) },
            RawPoint { point: base().destination(90.0, 10.0), t: Timestamp(10) },
        ]);
        let params = AnnotateParams::default();

        let reference = {
            let mut hits = registry.within_radius(&base(), params.nearby_radius_m);
            hits.sort_by(|x, y| x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)));
            hits.into_iter()
                .take(params.max_nearby)
                .map(|(id, _)| registry.get(id).name.clone())
                .collect::<Vec<_>>()
        };
        let sem = annotate(&raw, &net, &registry, params.clone());
        assert_eq!(sem.points[0].annotation.nearby, reference);

        registry.set_index_kind(stmaker_geo::SpatialIndexKind::Grid);
        let sem_grid = annotate(&raw, &net, &registry, params);
        assert_eq!(sem_grid.points[0].annotation.nearby, reference);
    }

    #[test]
    fn round_trips_through_json() {
        let (net, registry, raw) = fixture();
        let sem = annotate(&raw, &net, &registry, AnnotateParams::default());
        let json = serde_json::to_string(&sem).unwrap();
        let back: SemanticTrajectory = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sem);
    }
}
