//! The time-of-day traffic model.
//!
//! Encodes the background facts the paper's Fig. 8 discussion appeals to:
//! "during these hours the traffic is always heavy since people need to go to
//! work or go back home. Therefore the driving speed is slower than usual."
//! Morning rush 6:00–10:00 and evening rush 16:00–20:00 are congested;
//! ordinary daytime is moderately busy; night is free-flowing.

use serde::{Deserialize, Serialize};

/// Congestion regime at some hour of day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficRegime {
    /// 6:00–10:00 and 16:00–20:00.
    Rush,
    /// 10:00–16:00 and 20:00–22:00.
    Day,
    /// 22:00–6:00.
    Night,
}

/// Deterministic time-of-day traffic intensity model.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TrafficModel;

impl TrafficModel {
    /// The regime at `hour` (fractional hours, `[0, 24)`).
    pub fn regime(&self, hour: f64) -> TrafficRegime {
        let h = hour.rem_euclid(24.0);
        if (6.0..10.0).contains(&h) || (16.0..20.0).contains(&h) {
            TrafficRegime::Rush
        } else if (10.0..16.0).contains(&h) || (20.0..22.0).contains(&h) {
            TrafficRegime::Day
        } else {
            TrafficRegime::Night
        }
    }

    /// Multiplier on free-flow speed, `(0, 1]`.
    pub fn speed_factor(&self, hour: f64) -> f64 {
        match self.regime(hour) {
            TrafficRegime::Rush => 0.68,
            TrafficRegime::Day => 0.88,
            // Even empty streets have lights and turns; true free-flow is
            // unattainable, which also keeps a quiet night trip's uniform
            // offset from the 24h average below the selection threshold.
            TrafficRegime::Night => 0.90,
        }
    }

    /// Expected congestion stops (lights, jams) per kilometre of travel.
    pub fn stops_per_km(&self, hour: f64) -> f64 {
        match self.regime(hour) {
            TrafficRegime::Rush => 0.35,
            TrafficRegime::Day => 0.12,
            TrafficRegime::Night => 0.02,
        }
    }

    /// Probability that a trip contains a U-turn (missed destination,
    /// rerouting around a jam).
    pub fn u_turn_prob(&self, hour: f64) -> f64 {
        match self.regime(hour) {
            TrafficRegime::Rush => 0.22,
            TrafficRegime::Day => 0.10,
            TrafficRegime::Night => 0.03,
        }
    }

    /// Probability that the driver deviates from the fastest (popular) route.
    pub fn detour_prob(&self, hour: f64) -> f64 {
        match self.regime(hour) {
            TrafficRegime::Rush => 0.30,
            TrafficRegime::Day => 0.12,
            TrafficRegime::Night => 0.05,
        }
    }

    /// Probability of an abnormal slowdown event (accident, blockage) on a
    /// trip, *beyond* the regime's baseline congestion.
    pub fn slowdown_prob(&self, hour: f64) -> f64 {
        match self.regime(hour) {
            TrafficRegime::Rush => 0.35,
            TrafficRegime::Day => 0.15,
            TrafficRegime::Night => 0.04,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_partition_the_day() {
        let m = TrafficModel;
        assert_eq!(m.regime(7.0), TrafficRegime::Rush);
        assert_eq!(m.regime(17.5), TrafficRegime::Rush);
        assert_eq!(m.regime(12.0), TrafficRegime::Day);
        assert_eq!(m.regime(21.0), TrafficRegime::Day);
        assert_eq!(m.regime(3.0), TrafficRegime::Night);
        assert_eq!(m.regime(23.0), TrafficRegime::Night);
        assert_eq!(m.regime(25.0), m.regime(1.0)); // wraps
    }

    #[test]
    fn rush_is_slowest_and_busiest() {
        let m = TrafficModel;
        assert!(m.speed_factor(8.0) < m.speed_factor(12.0));
        assert!(m.speed_factor(12.0) < m.speed_factor(2.0));
        assert_eq!(m.speed_factor(2.0), 0.90);
        assert!(m.stops_per_km(8.0) > m.stops_per_km(12.0));
        assert!(m.stops_per_km(12.0) > m.stops_per_km(2.0));
        assert!(m.u_turn_prob(8.0) > m.u_turn_prob(2.0));
        assert!(m.detour_prob(17.0) > m.detour_prob(23.0));
        assert!(m.slowdown_prob(9.0) > m.slowdown_prob(3.0));
    }

    #[test]
    fn probabilities_are_valid() {
        let m = TrafficModel;
        for h in 0..24 {
            let h = h as f64 + 0.5;
            assert!((0.0..=1.0).contains(&m.u_turn_prob(h)));
            assert!((0.0..=1.0).contains(&m.detour_prob(h)));
            assert!((0.0..=1.0).contains(&m.slowdown_prob(h)));
            assert!(m.speed_factor(h) > 0.0 && m.speed_factor(h) <= 1.0);
            assert!(m.stops_per_km(h) >= 0.0);
        }
    }
}
