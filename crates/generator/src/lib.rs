//! Synthetic workload generator: the stand-in for the paper's Beijing data.
//!
//! The paper evaluates on a commercial map, a 510k-POI dataset, LBSN
//! check-ins and a 100k-trajectory taxi corpus (Sec. VII-A) — none of which
//! can ship with an open-source reproduction. This crate builds the closest
//! synthetic equivalents, exercising the *same code paths* end to end:
//!
//! * [`World`] — a city ([`stmaker_road::synth`]), POIs placed along its
//!   roads, the DBSCAN-clustered landmark registry, synthetic check-ins, and
//!   HITS significance — assembled exactly as Sec. VII-A describes;
//! * [`TrafficModel`] — time-of-day congestion: rush hours are slower with
//!   more stops, U-turns and detours; nights are free-flowing (this is what
//!   makes the Fig. 8 day/night contrast *emerge* rather than being faked);
//! * [`TripGenerator`] — simulates taxi trips over the city: fastest-path
//!   route choice with occasional detours, per-grade speeds modulated by
//!   congestion, injected stay/U-turn/slowdown events (recorded as
//!   [`GroundTruth`] for the simulated reader study of Fig. 11), GPS noise
//!   and heterogeneous sampling rates.
//!
//! Everything is seeded; equal seeds reproduce byte-identical corpora.

pub mod traffic;
pub mod trips;
pub mod world;

pub use traffic::TrafficModel;
pub use trips::{GeneratedTrip, GroundTruth, TripConfig, TripGenerator};
pub use world::{World, WorldConfig};
