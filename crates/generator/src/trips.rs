//! The taxi-trip simulator.
//!
//! Drives a vehicle over the synthetic city second by second and samples GPS
//! points from the true motion, so every downstream extractor (stay points,
//! U-turns, speeds, map matching, calibration) sees data with exactly the
//! artefacts real trajectories have: noise, variable sampling rates, dwell
//! jitter and heterogeneous speeds.
//!
//! Each injected anomaly is recorded in [`GroundTruth`], which the simulated
//! reader study (Fig. 11) uses as the reference for what a good summary
//! ought to mention.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use stmaker_geo::GeoPoint;
use stmaker_road::{NodeId, PathCost, RoadGrade};
use stmaker_trajectory::{RawPoint, RawTrajectory, Timestamp};

use crate::traffic::TrafficModel;
use crate::world::World;

/// Tunables for trip synthesis.
#[derive(Debug, Clone, Copy)]
pub struct TripConfig {
    /// Minimum geometric trip length; shorter src/dst draws are rejected.
    pub min_trip_m: f64,
    /// Probability that a trip endpoint is drawn from the hot-node set
    /// (stations, malls) instead of uniformly — concentrates traffic so
    /// popular corridors emerge.
    pub hub_bias: f64,
    /// Per-trip GPS sampling interval is drawn uniformly from this range
    /// (seconds) — the heterogeneous sampling the calibration step must
    /// survive (paper Fig. 2).
    pub sample_interval_s: (i64, i64),
    /// GPS noise sigma, metres.
    pub gps_sigma_m: f64,
}

impl Default for TripConfig {
    fn default() -> Self {
        Self { min_trip_m: 1_500.0, hub_bias: 0.7, sample_interval_s: (3, 12), gps_sigma_m: 6.0 }
    }
}

/// What was deliberately injected into a trip — the reference answer key for
/// the simulated reader study.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Injected stays: `(location, dwell seconds)`, only dwells long enough
    /// to count as stay points (≥ 120 s).
    pub stays: Vec<(GeoPoint, i64)>,
    /// Injected U-turn pivot locations.
    pub u_turns: Vec<GeoPoint>,
    /// Whether an abnormal slowdown (beyond regime congestion) was injected.
    pub slowdown: bool,
    /// Whether the driver deviated from the fastest (popular) route.
    pub detoured: bool,
    /// The node sequence actually driven.
    pub route_nodes: Vec<NodeId>,
    /// Departure hour of day.
    pub depart_hour: f64,
}

/// A synthesized trip: the sampled raw trajectory plus its answer key.
#[derive(Debug, Clone)]
pub struct GeneratedTrip {
    pub raw: RawTrajectory,
    pub truth: GroundTruth,
}

/// One leg of the internal drive plan.
enum PlanItem {
    /// Drive from `from` to `to` at `speed_kmh`.
    Drive { from: GeoPoint, to: GeoPoint, speed_kmh: f64 },
    /// Dwell at `at` for `secs` (jittered when sampled).
    Dwell { at: GeoPoint, secs: i64 },
}

/// Simulates taxi trips over a [`World`].
pub struct TripGenerator<'w> {
    world: &'w World,
    traffic: TrafficModel,
    cfg: TripConfig,
}

impl<'w> TripGenerator<'w> {
    /// Creates a generator.
    pub fn new(world: &'w World, cfg: TripConfig) -> Self {
        Self { world, traffic: TrafficModel, cfg }
    }

    /// The world being driven over.
    pub fn world(&self) -> &World {
        self.world
    }

    /// Samples a departure hour with realistic taxi activity: rush and day
    /// hours dominate, nights are quiet but present.
    pub fn sample_depart_hour(&self, rng: &mut StdRng) -> f64 {
        let x: f64 = rng.random_range(0.0..1.0);
        if x < 0.40 {
            // Rush: morning or evening.
            if rng.random_bool(0.5) {
                rng.random_range(6.0..10.0)
            } else {
                rng.random_range(16.0..20.0)
            }
        } else if x < 0.80 {
            if rng.random_bool(0.75) {
                rng.random_range(10.0..16.0)
            } else {
                rng.random_range(20.0..22.0)
            }
        } else {
            let h = rng.random_range(22.0..30.0);
            if h >= 24.0 {
                h - 24.0
            } else {
                h
            }
        }
    }

    /// Generates one trip departing at `hour` on `day`. Returns `None` when
    /// no suitable src/dst pair is found (rare; bounded retries).
    pub fn generate_at(&self, day: i64, hour: f64, rng: &mut StdRng) -> Option<GeneratedTrip> {
        let net = &self.world.net;
        let nodes = net.nodes();

        // --- Endpoints & route.
        let mut route = None;
        let mut doors: (Option<GeoPoint>, Option<GeoPoint>) = (None, None);
        for _ in 0..25 {
            let (src, src_door) = self.pick_endpoint(rng);
            let (dst, dst_door) = self.pick_endpoint(rng);
            if src == dst {
                continue;
            }
            if let Some(p) =
                stmaker_road::pathfind::shortest_path(net, src, dst, PathCost::TravelTime)
            {
                if p.length_m(net) >= self.cfg.min_trip_m {
                    route = Some(p);
                    doors = (src_door, dst_door);
                    break;
                }
            }
        }
        let fastest = route?;

        // --- Detour: reroute through a random off-route waypoint.
        let mut detoured = false;
        let mut drive_nodes = fastest.nodes.clone();
        if rng.random_bool(self.traffic.detour_prob(hour)) {
            let src = fastest.nodes[0];
            let dst = *fastest.nodes.last().expect("route non-empty");
            for _ in 0..10 {
                let via = nodes[rng.random_range(0..nodes.len())].id;
                if fastest.nodes.contains(&via) {
                    continue;
                }
                let (Some(a), Some(b)) = (
                    stmaker_road::pathfind::shortest_path(net, src, via, PathCost::TravelTime),
                    stmaker_road::pathfind::shortest_path(net, via, dst, PathCost::TravelTime),
                ) else {
                    continue;
                };
                let mut joined = a.nodes.clone();
                joined.extend_from_slice(&b.nodes[1..]);
                // A usable detour is loop-free and actually different.
                if joined != fastest.nodes && is_loop_free(&joined) {
                    drive_nodes = joined;
                    detoured = true;
                    break;
                }
            }
        }

        // --- Per-leg speeds.
        let vehicle_factor = rng.random_range(0.92..1.06);
        let regime_factor = self.traffic.speed_factor(hour);
        let slowdown = rng.random_bool(self.traffic.slowdown_prob(hour));
        let n_legs = drive_nodes.len() - 1;
        // Slowdown affects a contiguous stretch of the route.
        let (slow_lo, slow_hi) = if slowdown && n_legs >= 2 {
            let span = (n_legs / 2).max(1);
            let lo = rng.random_range(0..=(n_legs - span));
            (lo, lo + span)
        } else {
            (usize::MAX, usize::MAX)
        };

        let mut plan: Vec<PlanItem> = Vec::new();
        let mut truth_stays: Vec<(GeoPoint, i64)> = Vec::new();
        let mut truth_uturns: Vec<GeoPoint> = Vec::new();

        // Demand trips begin at the POI cluster's door, not the intersection
        // centre — a slow approach leg from the door to the first junction
        // (and symmetrically at the destination). This is what real pickup/
        // drop-off points look like and is what lets calibration anchor the
        // trip at the significant landmark (Fig. 9).
        let usable_door = |door: Option<GeoPoint>, node: NodeId| -> Option<GeoPoint> {
            door.filter(|p| {
                let d = p.haversine_m(&self.world.net.node(node).point);
                (15.0..400.0).contains(&d)
            })
        };
        if let Some(door) = usable_door(doors.0, drive_nodes[0]) {
            let first = net.node(drive_nodes[0]).point;
            plan.push(PlanItem::Drive { from: door, to: first, speed_kmh: 18.0 });
        }

        // U-turn: at one interior route node, drive a spur and come back.
        let uturn_at = if rng.random_bool(self.traffic.u_turn_prob(hour)) && drive_nodes.len() > 3 {
            Some(rng.random_range(1..drive_nodes.len() - 1))
        } else {
            None
        };

        for i in 0..n_legs {
            let a = net.node(drive_nodes[i]).point;
            let b = net.node(drive_nodes[i + 1]).point;
            let grade = self.leg_grade(drive_nodes[i], drive_nodes[i + 1]);
            let mut speed = grade.free_flow_kmh()
                * regime_factor
                * vehicle_factor
                * rng.random_range(0.92..1.08);
            if (slow_lo..slow_hi).contains(&i) {
                speed *= 0.45;
            }
            let speed = speed.max(3.0);

            // Congestion stops: expected stops_per_km × leg length. The leg
            // is split at each stop position so the driven path never jumps
            // backwards (a dwell appended after the whole leg would teleport
            // the vehicle from the far node back to the stop and forward
            // again — phantom motion that reads as fake U-turns).
            let leg_km = a.haversine_m(&b) / 1000.0;
            let expect = self.traffic.stops_per_km(hour) * leg_km;
            let n_stops = (expect.floor() as usize)
                + usize::from(rng.random_bool((expect.fract()).clamp(0.0, 1.0)));
            let mut fracs: Vec<f64> = (0..n_stops).map(|_| rng.random_range(0.2..0.8)).collect();
            fracs.sort_by(f64::total_cmp);
            let mut cursor = a;
            for frac in fracs {
                let at = a.lerp(&b, frac);
                plan.push(PlanItem::Drive { from: cursor, to: at, speed_kmh: speed });
                let secs = rng.random_range(60..420);
                plan.push(PlanItem::Dwell { at, secs });
                if secs >= 120 {
                    truth_stays.push((at, secs));
                }
                cursor = at;
            }
            plan.push(PlanItem::Drive { from: cursor, to: b, speed_kmh: speed });

            // U-turn spur after reaching node i+1.
            if uturn_at == Some(i + 1) {
                let pivot_node = drive_nodes[i + 1];
                if let Some(&(_, spur_to)) = net.neighbors(pivot_node).iter().find(|(_, n)| {
                    *n != drive_nodes[i] && Some(*n) != drive_nodes.get(i + 2).copied()
                }) {
                    let p = net.node(pivot_node).point;
                    let q_full = net.node(spur_to).point;
                    let spur_m = p.haversine_m(&q_full).min(250.0);
                    let q = p.destination(p.bearing_deg(&q_full), spur_m);
                    let spur_speed = 0.6 * grade.free_flow_kmh() * regime_factor;
                    plan.push(PlanItem::Drive { from: p, to: q, speed_kmh: spur_speed });
                    plan.push(PlanItem::Drive { from: q, to: p, speed_kmh: spur_speed });
                    truth_uturns.push(q);
                }
            }
        }
        if let Some(door) = usable_door(doors.1, *drive_nodes.last().expect("route non-empty")) {
            let last = net.node(*drive_nodes.last().expect("route non-empty")).point;
            plan.push(PlanItem::Drive { from: last, to: door, speed_kmh: 18.0 });
        }

        // --- Walk the plan second by second.
        let depart = Timestamp::at(day, hour);
        let mut true_path: Vec<(GeoPoint, i64)> = vec![(
            match &plan[0] {
                PlanItem::Drive { from, .. } => *from,
                PlanItem::Dwell { at, .. } => *at,
            },
            0,
        )];
        let mut t = 0i64;
        for item in &plan {
            match item {
                PlanItem::Drive { from, to, speed_kmh } => {
                    let len = from.haversine_m(to);
                    let mps = speed_kmh / 3.6;
                    let secs = (len / mps).ceil().max(1.0) as i64;
                    for s in 1..=secs {
                        let frac = (s as f64 / secs as f64).min(1.0);
                        t += 1;
                        true_path.push((from.lerp(to, frac), t));
                    }
                }
                PlanItem::Dwell { at, secs } => {
                    for _ in 0..*secs {
                        t += 1;
                        true_path.push((*at, t));
                    }
                }
            }
        }

        // --- Sample with noise at this trip's interval.
        let interval =
            rng.random_range(self.cfg.sample_interval_s.0..=self.cfg.sample_interval_s.1);
        let mut samples: Vec<RawPoint> = Vec::new();
        let mut next = 0i64;
        for (p, ts) in &true_path {
            if *ts >= next {
                samples.push(RawPoint { point: self.jitter(*p, rng), t: Timestamp(depart.0 + ts) });
                next = ts + interval;
            }
        }
        // Always include the trip end.
        let (last_p, last_t) = *true_path.last().expect("path non-empty");
        if samples.last().map(|s| s.t.0 != depart.0 + last_t).unwrap_or(true) {
            samples.push(RawPoint {
                point: self.jitter(last_p, rng),
                t: Timestamp(depart.0 + last_t),
            });
        }
        if samples.len() < 2 {
            return None;
        }

        Some(GeneratedTrip {
            raw: RawTrajectory::new(samples),
            truth: GroundTruth {
                stays: truth_stays,
                u_turns: truth_uturns,
                slowdown,
                detoured,
                route_nodes: drive_nodes,
                depart_hour: hour,
            },
        })
    }

    /// Generates `n` trips with activity-weighted departure hours.
    pub fn generate_corpus(&self, n: usize, seed: u64) -> Vec<GeneratedTrip> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n);
        let mut day = 0i64;
        while out.len() < n {
            let hour = self.sample_depart_hour(&mut rng);
            if let Some(trip) = self.generate_at(day, hour, &mut rng) {
                out.push(trip);
            }
            day = (day + 1) % 90; // spread over the paper's three months
        }
        out
    }

    /// Picks a trip endpoint: with probability `hub_bias`, taxi demand — a
    /// POI cluster sampled proportionally to its significance (returning its
    /// junction and door location); otherwise a uniformly random junction.
    fn pick_endpoint(&self, rng: &mut StdRng) -> (NodeId, Option<GeoPoint>) {
        if rng.random_bool(self.cfg.hub_bias) {
            if let Some((node, lm)) = self.world.sample_demand_endpoint(rng) {
                return (node, Some(self.world.registry.get(lm).point));
            }
        }
        let nodes = self.world.net.nodes();
        (nodes[rng.random_range(0..nodes.len())].id, None)
    }

    /// Grade of the edge between two adjacent nodes (Feeder when the pair is
    /// not directly connected, which cannot happen on Dijkstra output).
    fn leg_grade(&self, a: NodeId, b: NodeId) -> RoadGrade {
        self.world
            .net
            .neighbors(a)
            .iter()
            .find(|(_, n)| *n == b)
            .map(|(e, _)| self.world.net.edge(*e).grade)
            .unwrap_or(RoadGrade::Feeder)
    }

    fn jitter(&self, p: GeoPoint, rng: &mut StdRng) -> GeoPoint {
        let (dx, dy) = gaussian_pair(rng, self.cfg.gps_sigma_m);
        p.destination(90.0, dx).destination(0.0, dy)
    }
}

/// A pair of independent N(0, sigma²) draws via Box–Muller.
fn gaussian_pair(rng: &mut StdRng, sigma: f64) -> (f64, f64) {
    let u1: f64 = rng.random_range(1e-12_f64..1.0);
    let u2: f64 = rng.random_range(0.0_f64..1.0);
    let r = (-2.0 * u1.ln()).sqrt() * sigma;
    let th = 2.0 * std::f64::consts::PI * u2;
    (r * th.cos(), r * th.sin())
}

fn is_loop_free(nodes: &[NodeId]) -> bool {
    let mut seen: Vec<NodeId> = nodes.to_vec();
    seen.sort_unstable();
    seen.windows(2).all(|w| w[0] != w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};
    use stmaker_trajectory::{detect_stay_points, detect_u_turns, StayPointParams, UTurnParams};

    fn world() -> World {
        World::generate(WorldConfig::small(3))
    }

    #[test]
    fn trips_are_valid_and_deterministic() {
        let w = world();
        let g = TripGenerator::new(&w, TripConfig::default());
        let a = g.generate_corpus(5, 42);
        let b = g.generate_corpus(5, 42);
        assert_eq!(a.len(), 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.raw, y.raw);
            assert_eq!(x.truth.route_nodes, y.truth.route_nodes);
        }
        for t in &a {
            assert!(t.raw.len() >= 2);
            assert!(t.raw.duration_secs() > 0);
            assert!(t.raw.length_m() >= 1_000.0, "trip too short: {}", t.raw.length_m());
        }
    }

    #[test]
    fn night_trips_are_faster_than_rush_trips() {
        let w = world();
        let g = TripGenerator::new(&w, TripConfig::default());
        let mut rng = StdRng::seed_from_u64(7);
        let avg = |hour: f64, rng: &mut StdRng| {
            let mut speeds = Vec::new();
            for _ in 0..15 {
                if let Some(t) = g.generate_at(0, hour, rng) {
                    speeds.push(t.raw.length_m() / t.raw.duration_secs().max(1) as f64 * 3.6);
                }
            }
            speeds.iter().sum::<f64>() / speeds.len() as f64
        };
        let night = avg(2.0, &mut rng);
        let rush = avg(8.0, &mut rng);
        assert!(night > rush * 1.3, "night {night:.1} km/h vs rush {rush:.1} km/h");
    }

    #[test]
    fn injected_stays_are_detectable() {
        let w = world();
        let g = TripGenerator::new(&w, TripConfig::default());
        let mut rng = StdRng::seed_from_u64(11);
        let mut found = 0;
        let mut injected = 0;
        for _ in 0..20 {
            let Some(t) = g.generate_at(0, 8.5, &mut rng) else { continue };
            injected += t.truth.stays.len();
            let det = detect_stay_points(&t.raw, StayPointParams::default());
            for (loc, _) in &t.truth.stays {
                if det.iter().any(|s| s.centroid.haversine_m(loc) < 120.0) {
                    found += 1;
                }
            }
        }
        assert!(injected > 0, "rush-hour trips must inject stays");
        assert!(
            found as f64 >= 0.8 * injected as f64,
            "only {found}/{injected} injected stays detected"
        );
    }

    #[test]
    fn injected_u_turns_are_detectable() {
        let w = world();
        let g = TripGenerator::new(&w, TripConfig::default());
        let mut rng = StdRng::seed_from_u64(13);
        let mut found = 0;
        let mut injected = 0;
        for _ in 0..40 {
            let Some(t) = g.generate_at(0, 8.5, &mut rng) else { continue };
            injected += t.truth.u_turns.len();
            let det = detect_u_turns(&t.raw, UTurnParams::default());
            for loc in &t.truth.u_turns {
                if det.iter().any(|u| u.point.haversine_m(loc) < 200.0) {
                    found += 1;
                }
            }
        }
        assert!(injected > 0, "rush-hour trips must inject U-turns");
        assert!(
            found as f64 >= 0.7 * injected as f64,
            "only {found}/{injected} injected U-turns detected"
        );
    }

    #[test]
    fn detours_happen_and_are_loop_free() {
        let w = world();
        let g = TripGenerator::new(&w, TripConfig::default());
        let mut rng = StdRng::seed_from_u64(17);
        let mut detoured = 0;
        for _ in 0..40 {
            if let Some(t) = g.generate_at(0, 8.0, &mut rng) {
                if t.truth.detoured {
                    detoured += 1;
                }
                assert!(is_loop_free(&t.truth.route_nodes) || !t.truth.detoured);
            }
        }
        assert!(detoured > 0, "rush hours must produce some detours");
    }

    #[test]
    fn sampling_interval_is_heterogeneous() {
        let w = world();
        let g = TripGenerator::new(&w, TripConfig::default());
        let corpus = g.generate_corpus(10, 99);
        let mut intervals = std::collections::HashSet::new();
        for t in &corpus {
            let pts = t.raw.points();
            if pts.len() >= 3 {
                intervals.insert(pts[1].t.0 - pts[0].t.0);
            }
        }
        assert!(intervals.len() >= 2, "sampling intervals should vary: {intervals:?}");
    }

    #[test]
    fn gaussian_pair_is_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut sx, mut sy, n) = (0.0, 0.0, 2_000);
        for _ in 0..n {
            let (x, y) = gaussian_pair(&mut rng, 5.0);
            sx += x;
            sy += y;
        }
        assert!((sx / n as f64).abs() < 0.5);
        assert!((sy / n as f64).abs() < 0.5);
    }
}
