//! The synthetic world: city + POIs + landmarks + check-ins + significance.
//!
//! Assembly follows Sec. VII-A step by step: build the map, extract turning
//! points, place POIs, DBSCAN-cluster them into landmarks, generate LBSN
//! check-ins and car visits, and run the HITS significance pass.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use stmaker_poi::{DbscanParams, LandmarkId, LandmarkRegistry, Poi, PoiCategory, PoiId};
use stmaker_road::{build_city, NodeId, PathCost, RoadNetwork, SynthCityConfig};
use stmaker_significance::{compute_significance, HitsConfig, Visit};

/// Configuration for [`World::generate`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// City layout.
    pub city: SynthCityConfig,
    /// Number of raw POIs to scatter along the roads.
    pub n_pois: usize,
    /// Number of LBSN users generating check-ins.
    pub n_users: usize,
    /// Check-ins per user.
    pub checkins_per_user: usize,
    /// Number of synthetic car routes contributing landmark *visits* to the
    /// significance computation (the paper uses both check-ins and car
    /// trajectories).
    pub n_visit_routes: usize,
    /// Master seed (independent sub-seeds are derived from it).
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            city: SynthCityConfig::default(),
            n_pois: 3_000,
            n_users: 400,
            checkins_per_user: 25,
            n_visit_routes: 300,
            seed: 0xBEE5,
        }
    }
}

impl WorldConfig {
    /// A small, fast world for unit tests.
    pub fn small(seed: u64) -> Self {
        Self {
            city: SynthCityConfig::small(seed),
            n_pois: 400,
            n_users: 80,
            checkins_per_user: 12,
            n_visit_routes: 60,
            seed,
        }
    }
}

/// A fully assembled synthetic world.
pub struct World {
    pub net: RoadNetwork,
    pub pois: Vec<Poi>,
    pub registry: LandmarkRegistry,
    /// Nodes adjacent to the most significant POI-cluster landmarks; trip
    /// generation biases sources/destinations here so that popular corridors
    /// emerge (taxis concentrate at stations and malls).
    pub hot_nodes: Vec<NodeId>,
    /// The hub cluster landmark each hot node serves — taxi trips anchored
    /// at a hot node actually begin/end at this landmark's "door".
    hub_of_node: std::collections::HashMap<NodeId, LandmarkId>,
    /// Every POI-cluster landmark with its nearest junction and sampling
    /// weight (significance-proportional) — the taxi demand distribution.
    cluster_hubs: Vec<(NodeId, LandmarkId)>,
    /// Cumulative weights parallel to `cluster_hubs`.
    cluster_cum: Vec<f64>,
    cfg: WorldConfig,
}

impl World {
    /// Deterministically generates a world from `cfg`.
    pub fn generate(cfg: WorldConfig) -> Self {
        let net = build_city(&cfg.city);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15);

        // --- POIs: placed near road nodes, denser towards the city centre,
        // popularity = category prior × long-tailed site factor.
        let nodes = net.nodes();
        let n_nodes = nodes.len();
        let mut pois = Vec::with_capacity(cfg.n_pois);
        for i in 0..cfg.n_pois {
            let node = &nodes[rng.random_range(0..n_nodes)];
            let bearing = rng.random_range(0.0..360.0);
            let offset = rng.random_range(10.0..180.0);
            let point = node.point.destination(bearing, offset);
            let category = PoiCategory::ALL[rng.random_range(0..PoiCategory::ALL.len())];
            // Pareto-ish site factor: a few famous places, many obscure ones.
            let u: f64 = rng.random_range(0.0_f64..1.0).max(1e-9);
            let site_factor = u.powf(-0.6); // heavy tail
            pois.push(Poi {
                id: PoiId(i as u32),
                point,
                name: format!("{} {}", synth_place_name(&mut rng), category.noun()),
                category,
                popularity: category.base_attractiveness() * site_factor,
            });
        }

        // --- Landmarks: DBSCAN POI clusters + every road turning point.
        let turning_points = nodes.iter().map(|n| (n.point, format!("Junction {}", n.id.0)));
        let registry = LandmarkRegistry::build(&pois, DbscanParams::default(), turning_points);

        // --- Visits: LBSN check-ins (popularity-weighted POI choice) plus
        // car routes touching turning points.
        let mut visits: Vec<Visit> = Vec::new();
        let cum = cumulative_weights(pois.iter().map(|p| p.popularity));
        for user in 0..cfg.n_users {
            for _ in 0..cfg.checkins_per_user {
                let poi_idx = sample_cumulative(&cum, &mut rng);
                if let Some(lm) = registry.landmark_of_poi(poi_idx) {
                    visits.push(Visit {
                        user: stmaker_significance::UserId(user as u32),
                        landmark: lm,
                    });
                }
            }
        }
        // --- Pass 1: significance from check-ins alone identifies the hot
        // POI clusters, whose nearest junctions become the taxi hubs.
        let checkin_hits = compute_significance(registry.len(), &visits, HitsConfig::default());
        let mut clusters: Vec<(LandmarkId, f64)> = registry
            .landmarks()
            .iter()
            .filter(|l| matches!(l.kind, stmaker_poi::LandmarkKind::PoiCluster { .. }))
            .map(|l| (l.id, checkin_hits.significance[l.id.0 as usize]))
            .collect();
        clusters.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let node_index = net.node_index(300.0);
        let mut hub_of_node: std::collections::HashMap<NodeId, LandmarkId> = Default::default();
        let mut hot_nodes: Vec<NodeId> = Vec::new();
        for (l, _) in clusters.iter().take(20) {
            if let Some((node, _)) = node_index.nearest(&registry.get(*l).point) {
                // First (most significant) cluster claims the node.
                hub_of_node.entry(node).or_insert(*l);
                hot_nodes.push(node);
            }
        }
        hot_nodes.sort_unstable();
        hot_nodes.dedup();
        if hot_nodes.is_empty() {
            hot_nodes.push(nodes[0].id);
        }

        // --- Pass 2: car visits. Taxi demand concentrates at the hubs (as
        // it does at real stations and malls), so half the visit routes are
        // anchored there; a passing car "visits" every landmark within
        // sight of its route — junctions *and* roadside POI clusters. The
        // shared visits keep the HITS graph one connected community, so
        // hub-adjacent and arterial junctions earn real significance
        // instead of losing all eigenvector mass to the check-in clusters
        // (the classic tightly-knit-community effect).
        let node_visible: Vec<Vec<LandmarkId>> = nodes
            .iter()
            .map(|n| {
                let mut v: Vec<LandmarkId> =
                    registry.within_radius(&n.point, 150.0).into_iter().map(|(id, _)| id).collect();
                v.sort_unstable();
                v
            })
            .collect();
        let pick_node = |rng: &mut StdRng| -> NodeId {
            if rng.random_bool(0.5) {
                hot_nodes[rng.random_range(0..hot_nodes.len())]
            } else {
                nodes[rng.random_range(0..n_nodes)].id
            }
        };
        for r in 0..cfg.n_visit_routes {
            let src = pick_node(&mut rng);
            let dst = pick_node(&mut rng);
            if src == dst {
                continue;
            }
            if let Some(path) =
                stmaker_road::pathfind::shortest_path(&net, src, dst, PathCost::TravelTime)
            {
                let user = stmaker_significance::UserId((cfg.n_users + r) as u32);
                for node in &path.nodes {
                    for lm in &node_visible[node.0 as usize] {
                        visits.push(Visit { user, landmark: *lm });
                    }
                }
            }
        }

        let hits = compute_significance(registry.len(), &visits, HitsConfig::default());
        let mut registry = registry;
        registry.set_significances(&hits.significance);

        // --- Taxi demand distribution: every cluster, weighted by its final
        // significance (plus a floor so obscure places still see trips).
        let mut cluster_hubs: Vec<(NodeId, LandmarkId)> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        for l in registry.landmarks() {
            if matches!(l.kind, stmaker_poi::LandmarkKind::PoiCluster { .. }) {
                if let Some((node, _)) = node_index.nearest(&l.point) {
                    cluster_hubs.push((node, l.id));
                    weights.push(l.significance.powf(2.0) + 0.003);
                }
            }
        }
        let cluster_cum = cumulative_weights(weights.into_iter());

        Self { net, pois, registry, hot_nodes, hub_of_node, cluster_hubs, cluster_cum, cfg }
    }

    /// Samples a taxi demand endpoint: a cluster landmark (∝ significance)
    /// and the junction serving it. `None` when the world has no clusters.
    pub fn sample_demand_endpoint(&self, rng: &mut StdRng) -> Option<(NodeId, LandmarkId)> {
        if self.cluster_hubs.is_empty() {
            return None;
        }
        let idx = sample_cumulative(&self.cluster_cum, rng);
        Some(self.cluster_hubs[idx])
    }

    /// The generating configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.cfg
    }

    /// If `node` is a taxi hub, the POI-cluster landmark it serves.
    pub fn hub_landmark(&self, node: NodeId) -> Option<LandmarkId> {
        self.hub_of_node.get(&node).copied()
    }
}

/// Cumulative weight table for O(log n) weighted sampling.
fn cumulative_weights(weights: impl Iterator<Item = f64>) -> Vec<f64> {
    let mut cum = Vec::new();
    let mut acc = 0.0;
    for w in weights {
        acc += w.max(0.0);
        cum.push(acc);
    }
    cum
}

/// Samples an index proportionally to the weights behind `cum`.
fn sample_cumulative(cum: &[f64], rng: &mut StdRng) -> usize {
    let total = *cum.last().expect("non-empty weights");
    let x = rng.random_range(0.0..total);
    cum.partition_point(|c| *c <= x).min(cum.len() - 1)
}

/// A deterministic two-token place name ("Golden Lotus", "West Harbor", …).
fn synth_place_name(rng: &mut StdRng) -> String {
    const FIRST: [&str; 16] = [
        "Golden", "Jade", "West", "East", "North", "South", "Grand", "Silver", "Lucky", "Royal",
        "Spring", "Autumn", "Harmony", "Dragon", "Phoenix", "Lotus",
    ];
    const SECOND: [&str; 16] = [
        "Garden", "Plaza", "Gate", "Bridge", "Harbor", "Hill", "Lake", "Court", "Square", "Palace",
        "Valley", "Crossing", "View", "Grove", "Spring", "Terrace",
    ];
    format!(
        "{} {}",
        FIRST[rng.random_range(0..FIRST.len())],
        SECOND[rng.random_range(0..SECOND.len())]
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmaker_poi::LandmarkKind;

    fn small_world() -> World {
        World::generate(WorldConfig::small(11))
    }

    #[test]
    fn world_has_all_components() {
        let w = small_world();
        assert_eq!(w.net.node_count(), 64);
        assert_eq!(w.pois.len(), 400);
        // Landmarks = clusters + 64 turning points.
        assert!(w.registry.len() > 64, "registry has {} landmarks", w.registry.len());
        let clusters = w
            .registry
            .landmarks()
            .iter()
            .filter(|l| matches!(l.kind, LandmarkKind::PoiCluster { .. }))
            .count();
        assert!(clusters > 0, "POIs must cluster into some landmarks");
        assert!(!w.hot_nodes.is_empty());
    }

    #[test]
    fn significance_is_long_tailed_and_bounded() {
        let w = small_world();
        let sigs: Vec<f64> = w.registry.landmarks().iter().map(|l| l.significance).collect();
        assert!(sigs.iter().all(|s| (0.0..=1.0).contains(s)));
        assert!(sigs.iter().any(|s| *s > 0.0), "someone must be visited");
        // Long tail: mean well below max.
        let mean = sigs.iter().sum::<f64>() / sigs.len() as f64;
        assert!(mean < 0.5, "mean significance {mean} should be far below the max 1.0");
    }

    #[test]
    fn deterministic_across_builds() {
        let a = World::generate(WorldConfig::small(5));
        let b = World::generate(WorldConfig::small(5));
        assert_eq!(a.pois.len(), b.pois.len());
        for (x, y) in a.pois.iter().zip(&b.pois) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.popularity, y.popularity);
        }
        for (x, y) in a.registry.landmarks().iter().zip(b.registry.landmarks()) {
            assert_eq!(x.significance, y.significance, "landmark {:?}", x.id);
        }
        assert_eq!(a.hot_nodes, b.hot_nodes);
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(WorldConfig::small(5));
        let b = World::generate(WorldConfig::small(6));
        let differ =
            a.pois.iter().zip(&b.pois).any(|(x, y)| x.name != y.name || x.point != y.point);
        assert!(differ);
    }

    #[test]
    fn turning_points_carry_significance_from_car_visits() {
        let w = small_world();
        let tp_sig: Vec<f64> = w
            .registry
            .landmarks()
            .iter()
            .filter(|l| matches!(l.kind, LandmarkKind::TurningPoint))
            .map(|l| l.significance)
            .collect();
        assert!(tp_sig.iter().any(|s| *s > 0.0), "car routes must make some junctions significant");
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let cum = cumulative_weights([1.0, 0.0, 9.0].into_iter());
        let mut counts = [0usize; 3];
        for _ in 0..5_000 {
            counts[sample_cumulative(&cum, &mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5, "{counts:?}");
    }
}
