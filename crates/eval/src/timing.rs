//! Summarization time-cost measurement (Fig. 12).
//!
//! The paper reports average per-trajectory summarization time while varying
//! the trajectory size `|T|` (Fig. 12a) and the partition count `k`
//! (Fig. 12b), observing "most trajectories can be summarized within tens of
//! milliseconds" with mild growth in both parameters.

use std::time::Instant;

use stmaker::Summarizer;
use stmaker_trajectory::RawTrajectory;

/// Mean wall-clock time and sample count for one measurement cell.
#[derive(Debug, Clone, Copy)]
pub struct TimingCell {
    /// Mean time per summarization, milliseconds.
    pub mean_ms: f64,
    /// Trajectories measured.
    pub n: usize,
}

/// Measures mean end-to-end summarization time, bucketing trajectories by
/// their symbolic size `|T̄|`. `buckets` are bucket centres; a trajectory
/// falls into the nearest centre within `±tolerance`.
pub fn time_by_symbolic_len(
    summarizer: &Summarizer<'_>,
    trips: &[RawTrajectory],
    buckets: &[usize],
    tolerance: usize,
) -> Vec<(usize, TimingCell)> {
    let mut sums = vec![0.0f64; buckets.len()];
    let mut counts = vec![0usize; buckets.len()];
    for raw in trips {
        // Size the trajectory first (untimed), then time the full pipeline.
        let Ok(prepared) = summarizer.prepare(raw) else { continue };
        let size = prepared.symbolic.size();
        let Some(bi) = buckets.iter().position(|c| size.abs_diff(*c) <= tolerance) else {
            continue;
        };
        // lint: wallclock — timing harness: measured durations are the experiment's output by design
        let t0 = Instant::now();
        let _ = summarizer.summarize(raw);
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        sums[bi] += dt;
        counts[bi] += 1;
    }
    buckets
        .iter()
        .zip(sums.iter().zip(&counts))
        .map(|(b, (s, c))| {
            (*b, TimingCell { mean_ms: if *c > 0 { s / *c as f64 } else { f64::NAN }, n: *c })
        })
        .collect()
}

/// Measures mean summarization time versus the requested partition count `k`
/// over a fixed trip set (trips too short for a given `k` are skipped).
pub fn time_by_k(
    summarizer: &Summarizer<'_>,
    trips: &[RawTrajectory],
    ks: &[usize],
) -> Vec<(usize, TimingCell)> {
    ks.iter()
        .map(|&k| {
            let mut sum = 0.0;
            let mut n = 0usize;
            for raw in trips {
                // lint: wallclock — timing harness: measured durations are the experiment's output by design
                let t0 = Instant::now();
                if summarizer.summarize_k(raw, k).is_ok() {
                    sum += t0.elapsed().as_secs_f64() * 1e3;
                    n += 1;
                }
            }
            (k, TimingCell { mean_ms: if n > 0 { sum / n as f64 } else { f64::NAN }, n })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{ExperimentScale, Harness};

    #[test]
    fn timing_produces_finite_means() {
        let mut scale = ExperimentScale::quick();
        scale.n_train = 40;
        scale.n_test = 20;
        let h = Harness::new(scale);
        let s = h.train_default();
        let trips: Vec<_> = h.test.iter().map(|t| t.raw.clone()).collect();

        let by_k = time_by_k(&s, &trips[..10], &[1, 2]);
        assert_eq!(by_k.len(), 2);
        for (_, cell) in &by_k {
            assert!(cell.n > 0);
            assert!(cell.mean_ms.is_finite() && cell.mean_ms > 0.0);
        }

        // Wide buckets so every trip lands somewhere.
        let by_len = time_by_symbolic_len(&s, &trips, &[5, 15, 25, 45], 100);
        assert!(by_len.iter().any(|(_, c)| c.n > 0));
    }
}
