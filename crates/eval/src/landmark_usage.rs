//! Landmark-usage analysis (Fig. 9): are the landmarks that summaries name
//! actually significant?
//!
//! "We sort all the landmarks … in descending order by the landmark
//! significance, and group them into 10 groups … For each group of
//! landmarks, we analyze their usage frequency in the summary dataset."

use stmaker::Summary;
use stmaker_poi::{LandmarkId, LandmarkRegistry};

/// Usage frequency per significance decile (index 0 = top 0–10% most
/// significant landmarks). Fractions sum to 1 over used landmarks.
pub fn usage_by_significance_decile(
    registry: &LandmarkRegistry,
    summaries: &[Summary],
) -> [f64; 10] {
    // Rank landmarks by significance (descending) → decile of each.
    let mut order: Vec<(LandmarkId, f64)> =
        registry.landmarks().iter().map(|l| (l.id, l.significance)).collect();
    order.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let n = order.len().max(1);
    let mut decile_of = vec![0usize; n];
    for (rank, (id, _)) in order.iter().enumerate() {
        decile_of[id.0 as usize] = (rank * 10 / n).min(9);
    }

    // Count partition-endpoint usages.
    let mut counts = [0usize; 10];
    let mut total = 0usize;
    for s in summaries {
        for p in &s.partitions {
            for lm in [p.from, p.to] {
                counts[decile_of[lm.0 as usize]] += 1;
                total += 1;
            }
        }
    }

    let total = total.max(1) as f64;
    let mut out = [0.0; 10];
    for (o, c) in out.iter_mut().zip(counts) {
        *o = c as f64 / total;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmaker::{PartitionSpan, PartitionSummary};
    use stmaker_geo::GeoPoint;
    use stmaker_poi::{Landmark, LandmarkKind};

    fn registry(n: usize) -> LandmarkRegistry {
        // Landmark i has significance 1 − i/n (id order = significance order).
        let lms: Vec<Landmark> = (0..n)
            .map(|i| Landmark {
                id: LandmarkId(i as u32),
                point: GeoPoint::new(39.9, 116.0 + 0.001 * i as f64),
                name: format!("L{i}"),
                kind: LandmarkKind::TurningPoint,
                significance: 1.0 - i as f64 / n as f64,
            })
            .collect();
        LandmarkRegistry::from_landmarks(lms)
    }

    fn summary_between(a: u32, b: u32) -> Summary {
        Summary {
            text: String::new(),
            partitions: vec![PartitionSummary {
                span: PartitionSpan { seg_start: 0, seg_end: 0 },
                from: LandmarkId(a),
                to: LandmarkId(b),
                from_name: String::new(),
                to_name: String::new(),
                selected: vec![],
                sentence: String::new(),
            }],
            symbolic_len: 2,
            potential: 0.0,
        }
    }

    #[test]
    fn top_decile_usage_counted() {
        let reg = registry(100);
        // Landmarks 0–9 are the top decile. Four usages there, two in the
        // bottom decile.
        let summaries = vec![summary_between(0, 5), summary_between(3, 9), summary_between(95, 99)];
        let usage = usage_by_significance_decile(&reg, &summaries);
        assert!((usage[0] - 4.0 / 6.0).abs() < 1e-12);
        assert!((usage[9] - 2.0 / 6.0).abs() < 1e-12);
        assert!((usage.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summaries_give_zeros() {
        let reg = registry(10);
        let usage = usage_by_significance_decile(&reg, &[]);
        assert_eq!(usage, [0.0; 10]);
    }
}
