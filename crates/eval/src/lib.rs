//! Experiment harness reproducing Sec. VII of the paper.
//!
//! Each figure of the evaluation has a dedicated binary (`exp_fig6` …
//! `exp_fig12`, plus `exp_all`); this library holds the shared machinery:
//!
//! * [`harness`] — deterministic world/corpus assembly at standard scales;
//! * [`ff`] — the feature-frequency (FF) metric of Sec. VII-C.2 and its
//!   time-of-day bucketing (Fig. 8) and parameter sweeps (Fig. 10);
//! * [`landmark_usage`] — landmark-significance usage analysis (Fig. 9);
//! * [`reader`] — the simulated reader study standing in for the paper's
//!   30-volunteer evaluation (Fig. 11; see DESIGN.md §3);
//! * [`timing`] — summarization time cost (Fig. 12);
//! * [`render`] — standalone HTML/SVG trip reports (the Fig. 7 UI stand-in);
//! * [`report`] — aligned text tables and JSON dumps for EXPERIMENTS.md.

pub mod ff;
pub mod harness;
pub mod landmark_usage;
pub mod reader;
pub mod render;
pub mod report;
pub mod timing;

pub use ff::{feature_frequency, FfByBucket};
pub use harness::{threads_from_args, ExperimentScale, Harness};
pub use reader::{simulate_reader_study, ReaderStudyResult};
