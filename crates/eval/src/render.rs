//! SVG/HTML trip reports — the reproduction's stand-in for the STMaker demo
//! UI (paper Fig. 7): the city map, the trajectory drawn over it, the
//! partition landmarks, and the generated summary side by side.
//!
//! Pure string assembly — no drawing dependencies — producing a standalone
//! HTML file with one inline SVG.

use stmaker::Summary;
use stmaker_geo::{BoundingBox, GeoPoint, LocalFrame};
use stmaker_poi::LandmarkRegistry;
use stmaker_road::{RoadGrade, RoadNetwork};
use stmaker_trajectory::RawTrajectory;

/// Pixel size of the rendered map.
const WIDTH: f64 = 860.0;
const HEIGHT: f64 = 680.0;
const MARGIN: f64 = 24.0;

/// Projects geographic points into the SVG viewport.
struct Viewport {
    frame: LocalFrame,
    min_x: f64,
    min_y: f64,
    scale: f64,
}

impl Viewport {
    fn fit(bbox: BoundingBox) -> Self {
        let frame = LocalFrame::new(bbox.center());
        let (x0, y0) = frame.to_xy(&GeoPoint { lat: bbox.min_lat, lon: bbox.min_lon });
        let (x1, y1) = frame.to_xy(&GeoPoint { lat: bbox.max_lat, lon: bbox.max_lon });
        let (w, h) = (x1 - x0, y1 - y0);
        let scale = ((WIDTH - 2.0 * MARGIN) / w.max(1.0)).min((HEIGHT - 2.0 * MARGIN) / h.max(1.0));
        Self { frame, min_x: x0, min_y: y0, scale }
    }

    fn px(&self, p: &GeoPoint) -> (f64, f64) {
        let (x, y) = self.frame.to_xy(p);
        (
            MARGIN + (x - self.min_x) * self.scale,
            // SVG y grows downward; geography northward.
            HEIGHT - MARGIN - (y - self.min_y) * self.scale,
        )
    }
}

fn grade_style(grade: RoadGrade) -> (&'static str, f64) {
    match grade {
        RoadGrade::Highway => ("#c0392b", 3.2),
        RoadGrade::Express => ("#e67e22", 2.6),
        RoadGrade::National => ("#b0a14f", 2.0),
        RoadGrade::Provincial => ("#9aa3a8", 1.7),
        RoadGrade::County => ("#b8bfc4", 1.4),
        RoadGrade::Village => ("#cdd3d7", 1.1),
        RoadGrade::Feeder => ("#e0e4e7", 0.9),
    }
}

/// Renders the standalone HTML report for one summarized trip.
pub fn render_trip_report(
    net: &RoadNetwork,
    registry: &LandmarkRegistry,
    raw: &RawTrajectory,
    summary: &Summary,
    title: &str,
) -> String {
    let pts: Vec<GeoPoint> = net.nodes().iter().map(|n| n.point).collect();
    let bbox = BoundingBox::enclosing(&pts).expect("network has nodes").inflate(0.002);
    let vp = Viewport::fit(bbox);

    let mut svg = String::new();

    // Road layer, minor grades first so arterials draw on top.
    let mut edges: Vec<_> = net.edges().iter().collect();
    edges.sort_by_key(|e| std::cmp::Reverse(e.grade.code()));
    for e in edges {
        let (color, width) = grade_style(e.grade);
        let a = vp.px(&net.node(e.from).point);
        let b = vp.px(&net.node(e.to).point);
        svg.push_str(&format!(
            "<line x1='{:.1}' y1='{:.1}' x2='{:.1}' y2='{:.1}' stroke='{color}' stroke-width='{width}'/>\n",
            a.0, a.1, b.0, b.1
        ));
    }

    // Trajectory layer.
    let path: Vec<String> = raw
        .points()
        .iter()
        .map(|p| {
            let (x, y) = vp.px(&p.point);
            format!("{x:.1},{y:.1}")
        })
        .collect();
    svg.push_str(&format!(
        "<polyline points='{}' fill='none' stroke='#1f5fa8' stroke-width='2.6' stroke-opacity='0.9'/>\n",
        path.join(" ")
    ));

    // Partition boundary landmarks with labels.
    let mut boundary = Vec::new();
    for p in &summary.partitions {
        boundary.push((p.from, p.from_name.clone()));
    }
    if let Some(last) = summary.partitions.last() {
        boundary.push((last.to, last.to_name.clone()));
    }
    for (lm, name) in &boundary {
        let (x, y) = vp.px(&registry.get(*lm).point);
        svg.push_str(&format!(
            "<circle cx='{x:.1}' cy='{y:.1}' r='5.5' fill='#14532d' stroke='white' stroke-width='1.5'/>\n\
             <text x='{:.1}' y='{:.1}' font-size='12' fill='#14532d'>{}</text>\n",
            x + 8.0,
            y - 6.0,
            escape(name)
        ));
    }

    // Start/end markers.
    let (sx, sy) = vp.px(&raw.start().point);
    let (ex, ey) = vp.px(&raw.end().point);
    svg.push_str(&format!(
        "<circle cx='{sx:.1}' cy='{sy:.1}' r='4' fill='#1f5fa8'/>\n\
         <rect x='{:.1}' y='{:.1}' width='8' height='8' fill='#1f5fa8'/>\n",
        ex - 4.0,
        ey - 4.0
    ));

    let sentences: String =
        summary.partitions.iter().map(|p| format!("<li>{}</li>\n", escape(&p.sentence))).collect();
    let stats = format!(
        "{} raw samples · {:.1} km · {} landmarks · {} partition(s)",
        raw.len(),
        raw.length_m() / 1000.0,
        summary.symbolic_len,
        summary.partitions.len()
    );
    let title = escape(title);

    format!(
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'><title>{title}</title>\n\
         <style>body{{font-family:system-ui,sans-serif;max-width:{WIDTH}px;margin:2em auto;color:#222}}\
         ol{{line-height:1.6}}figure{{margin:0}}figcaption{{color:#666;font-size:13px;margin-top:4px}}</style>\n\
         </head><body>\n<h1>{title}</h1>\n\
         <figure>\n<svg width='{WIDTH}' height='{HEIGHT}' viewBox='0 0 {WIDTH} {HEIGHT}' \
         xmlns='http://www.w3.org/2000/svg' style='background:#fafafa;border:1px solid #ddd'>\n{svg}</svg>\n\
         <figcaption>roads coloured by grade (red = highway … grey = feeder); \
         blue = trajectory; green dots = partition landmarks</figcaption>\n</figure>\n\
         <h2>Summary</h2>\n<ol>\n{sentences}</ol>\n\
         <p><em>{stats}</em></p>\n\
         </body></html>\n"
    )
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{ExperimentScale, Harness};

    #[test]
    fn report_contains_map_and_sentences() {
        let mut scale = ExperimentScale::quick();
        scale.n_train = 30;
        scale.n_test = 5;
        let h = Harness::new(scale);
        let s = h.train_default();
        let trip = &h.test[0];
        let summary = s.summarize(&trip.raw).expect("summarizable");
        let html =
            render_trip_report(&h.world.net, &h.world.registry, &trip.raw, &summary, "Test trip");
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"));
        assert!(html.contains("<polyline"), "trajectory layer missing");
        assert!(html.contains("stroke='#c0392b'"), "highway layer missing");
        assert!(html.contains("<circle"), "landmark markers missing");
        // Every partition sentence appears (escaped).
        for p in &summary.partitions {
            assert!(html.contains(&escape(&p.sentence)));
        }
        // The stats line interpolated.
        assert!(html.contains(&format!("{} raw samples", trip.raw.len())));
    }

    #[test]
    fn escape_handles_markup() {
        assert_eq!(escape("a<b & c>d"), "a&lt;b &amp; c&gt;d");
    }
}
