//! The simulated reader study (Fig. 11).
//!
//! The paper asked 30 volunteers to grade 450 summaries on a 1–4
//! understanding scale. Volunteers are not available to a reproduction, but
//! the generator records *ground truth* — every injected stay, U-turn,
//! slowdown and detour — so we can measure exactly what the volunteers were
//! judging: does the summary convey where and how the vehicle travelled?
//!
//! A simulated reader grades a summary from its event recall and precision
//! against the ground truth, perturbed by a per-reader leniency drawn from a
//! seeded RNG (readers genuinely disagreed in the paper: the grade
//! distribution, not unanimity, is the result).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;
use stmaker::{keys, Summary};
use stmaker_generator::GroundTruth;

/// The four understanding levels of Sec. VII-C.5.
pub const LEVELS: [&str; 4] = [
    "1: no idea of the trajectory",
    "2: a little idea of where or how",
    "3: where and how, but improvable",
    "4: clear and well presented",
];

/// Result of the simulated study.
#[derive(Debug, Clone)]
pub struct ReaderStudyResult {
    /// `counts[g-1]` = number of (summary, reader) gradings at level `g`.
    pub counts: [usize; 4],
    /// Total gradings.
    pub total: usize,
}

impl ReaderStudyResult {
    /// Fraction graded at `level` (1–4).
    pub fn fraction(&self, level: usize) -> f64 {
        self.counts[level - 1] as f64 / self.total.max(1) as f64
    }

    /// Fraction at level 3 or 4 (the paper's "intuitive view" criterion).
    pub fn fraction_at_least_3(&self) -> f64 {
        self.fraction(3) + self.fraction(4)
    }
}

/// Event classes a summary can convey, mapped from both ground truth and
/// selected features.
fn truth_events(t: &GroundTruth) -> BTreeSet<&'static str> {
    let mut s = BTreeSet::new();
    if !t.stays.is_empty() {
        s.insert("stay");
    }
    if !t.u_turns.is_empty() {
        s.insert("uturn");
    }
    if t.slowdown {
        s.insert("slow");
    }
    if t.detoured {
        s.insert("detour");
    }
    s
}

fn summary_events(s: &Summary) -> BTreeSet<&'static str> {
    let mut out = BTreeSet::new();
    for p in &s.partitions {
        for f in &p.selected {
            match f.key.as_str() {
                k if k == keys::STAY_POINTS => {
                    out.insert("stay");
                }
                k if k == keys::U_TURNS => {
                    out.insert("uturn");
                }
                k if k == keys::SPEED || k == keys::SPEED_CHANGE => {
                    out.insert("slow");
                }
                k if k == keys::GRADE || k == keys::WIDTH || k == keys::DIRECTION => {
                    out.insert("detour");
                }
                _ => {}
            }
        }
    }
    out
}

/// Weight of each event class in the reader's judgement: stays, U-turns and
/// slowdowns are things the reader would visibly miss; a detour from the
/// popular route is subtler.
fn event_weight(e: &str) -> f64 {
    if e == "detour" {
        0.5
    } else {
        1.0
    }
}

/// Content score of one summary against its ground truth ∈ [0, 1].
///
/// Every well-formed summary names the partition endpoints, so the reader
/// always gains "an idea of *where*" — worth a 0.25 base (the paper's level
/// 2 is "a little idea of where **or** how"). The remaining 0.75 measures
/// *how*: weighted event recall (what the reader learns) plus precision
/// (irrelevant chatter degrades presentation), with detours half-weighted.
pub fn content_score(summary: &Summary, truth: &GroundTruth) -> f64 {
    const WHERE_CREDIT: f64 = 0.25;
    let want = truth_events(truth);
    let got = summary_events(summary);
    if want.is_empty() {
        // Nothing to report: a smooth summary is perfect; spurious mentions
        // cost precision.
        return if got.is_empty() { 1.0 } else { 0.85 };
    }
    let want_mass: f64 = want.iter().map(|e| event_weight(e)).sum();
    let hit_mass: f64 = want.intersection(&got).map(|e| event_weight(e)).sum();
    let recall = hit_mass / want_mass;
    let precision = if got.is_empty() {
        0.0
    } else {
        got.iter().map(|e| if want.contains(e) { event_weight(e) } else { 0.0 }).sum::<f64>()
            / got.iter().map(|e| event_weight(e)).sum::<f64>()
    };
    WHERE_CREDIT + (1.0 - WHERE_CREDIT) * (0.7 * recall + 0.3 * precision)
}

/// Runs the study: `readers` simulated readers each grade
/// `summaries_per_reader` summaries round-robin from the pool (the paper:
/// 30 readers × 15 summaries over 450 randomly selected summaries).
pub fn simulate_reader_study(
    pool: &[(Summary, GroundTruth)],
    readers: usize,
    summaries_per_reader: usize,
    seed: u64,
) -> ReaderStudyResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = [0usize; 4];
    let mut total = 0usize;
    let mut next = 0usize;
    for _ in 0..readers {
        // Reader temperament: lenient readers round up, stern ones down.
        let leniency: f64 = rng.random_range(-0.12..0.12);
        for _ in 0..summaries_per_reader {
            if pool.is_empty() {
                break;
            }
            let (summary, truth) = &pool[next % pool.len()];
            next += 1;
            let score = (content_score(summary, truth) + leniency + rng.random_range(-0.05..0.05))
                .clamp(0.0, 1.0);
            let grade = match score {
                s if s >= 0.80 => 4,
                s if s >= 0.55 => 3,
                s if s >= 0.15 => 2,
                _ => 1,
            };
            counts[grade - 1] += 1;
            total += 1;
        }
    }
    ReaderStudyResult { counts, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmaker::{FeatureKind, PartitionSpan, PartitionSummary, SelectedFeature};
    use stmaker_geo::GeoPoint;
    use stmaker_poi::LandmarkId;

    fn summary_with(selected_keys: &[&str]) -> Summary {
        let selected = selected_keys
            .iter()
            .map(|k| SelectedFeature {
                key: k.to_string(),
                label: k.to_string(),
                kind: FeatureKind::Moving,
                irregular_rate: 0.5,
                observed: 1.0,
                regular: None,
            })
            .collect();
        Summary {
            text: String::new(),
            partitions: vec![PartitionSummary {
                span: PartitionSpan { seg_start: 0, seg_end: 0 },
                from: LandmarkId(0),
                to: LandmarkId(1),
                from_name: String::new(),
                to_name: String::new(),
                selected,
                sentence: String::new(),
            }],
            symbolic_len: 2,
            potential: 0.0,
        }
    }

    fn truth(stays: usize, uturns: usize, slow: bool, detour: bool) -> GroundTruth {
        GroundTruth {
            stays: (0..stays).map(|_| (GeoPoint::new(39.9, 116.4), 200)).collect(),
            u_turns: (0..uturns).map(|_| GeoPoint::new(39.9, 116.4)).collect(),
            slowdown: slow,
            detoured: detour,
            route_nodes: vec![],
            depart_hour: 8.0,
        }
    }

    #[test]
    fn perfect_summary_scores_one() {
        let s = summary_with(&[keys::STAY_POINTS, keys::U_TURNS]);
        let t = truth(2, 1, false, false);
        assert!((content_score(&s, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smooth_trip_smooth_summary_is_perfect() {
        let s = summary_with(&[]);
        let t = truth(0, 0, false, false);
        assert_eq!(content_score(&s, &t), 1.0);
    }

    #[test]
    fn missed_events_lower_score() {
        // Missed everything: only the "where" base credit remains.
        let s = summary_with(&[]);
        let t = truth(2, 1, true, false);
        assert_eq!(content_score(&s, &t), 0.25);
        let partial = summary_with(&[keys::STAY_POINTS]);
        let sc = content_score(&partial, &t);
        assert!(sc > 0.25 && sc < 1.0, "{sc}");
    }

    #[test]
    fn spurious_mentions_cost_precision() {
        let s = summary_with(&[keys::STAY_POINTS, keys::U_TURNS, keys::SPEED]);
        let t = truth(1, 0, false, false);
        let sc = content_score(&s, &t);
        assert!(sc < 1.0 && sc > 0.5, "{sc}");
    }

    #[test]
    fn study_distribution_reflects_quality() {
        // 80% perfect summaries, 20% empty-on-eventful: most grades high.
        let mut pool = Vec::new();
        for i in 0..50 {
            if i % 5 == 0 {
                pool.push((summary_with(&[]), truth(1, 1, true, false)));
            } else {
                pool.push((summary_with(&[keys::STAY_POINTS]), truth(1, 0, false, false)));
            }
        }
        let r = simulate_reader_study(&pool, 30, 15, 42);
        assert_eq!(r.total, 450);
        assert!(r.fraction(4) > 0.5, "grade-4 fraction {}", r.fraction(4));
        // The bad summaries (missed every event) land at grade ≤ 2.
        assert!(r.fraction(1) + r.fraction(2) > 0.1, "bad summaries must show up: {:?}", r.counts);
        assert_eq!(r.counts.iter().sum::<usize>(), r.total);
    }

    #[test]
    fn study_is_deterministic() {
        let pool = vec![(summary_with(&[keys::SPEED]), truth(0, 0, true, false))];
        let a = simulate_reader_study(&pool, 10, 5, 7);
        let b = simulate_reader_study(&pool, 10, 5, 7);
        assert_eq!(a.counts, b.counts);
    }
}
