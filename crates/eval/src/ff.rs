//! The feature-frequency (FF) metric of Sec. VII-C.2.
//!
//! "The feature frequency FF_f of a feature f is defined as: FF_f =
//! (# summaries containing f) / (# total summaries). The higher FF_f is, the
//! more number of trajectories have irregular value on f."

use std::collections::BTreeMap;

use stmaker::{summary_mentions, Summary};

/// FF per feature key over a summary set. Keys absent from every summary
/// report 0.
pub fn feature_frequency(summaries: &[Summary], keys: &[&str]) -> BTreeMap<String, f64> {
    let n = summaries.len().max(1) as f64;
    keys.iter()
        .map(|k| {
            let c = summaries.iter().filter(|s| summary_mentions(s, k)).count();
            (k.to_string(), c as f64 / n)
        })
        .collect()
}

/// FF broken down by the paper's twelve two-hour buckets (Fig. 8).
#[derive(Debug, Clone)]
pub struct FfByBucket {
    /// `ff[bucket][key]`, bucket 0 = 00:00–02:00 … bucket 11 = 22:00–24:00.
    pub ff: Vec<BTreeMap<String, f64>>,
    /// Summaries per bucket.
    pub counts: Vec<usize>,
}

impl FfByBucket {
    /// Groups `(hour, summary)` pairs into two-hour buckets and computes FF
    /// in each.
    pub fn compute(items: &[(f64, Summary)], keys: &[&str]) -> Self {
        let mut grouped: Vec<Vec<&Summary>> = (0..12).map(|_| Vec::new()).collect();
        for (hour, s) in items {
            let b = ((hour.rem_euclid(24.0)) / 2.0) as usize % 12;
            grouped[b].push(s);
        }
        let ff = grouped
            .iter()
            .map(|g| {
                let n = g.len().max(1) as f64;
                keys.iter()
                    .map(|k| {
                        let c = g.iter().filter(|s| summary_mentions(s, k)).count();
                        (k.to_string(), c as f64 / n)
                    })
                    .collect()
            })
            .collect();
        Self { ff, counts: grouped.iter().map(|g| g.len()).collect() }
    }

    /// Mean FF of `key` over a set of buckets (used to compare day vs night).
    pub fn mean_over(&self, key: &str, buckets: &[usize]) -> f64 {
        let vals: Vec<f64> =
            buckets.iter().filter_map(|b| self.ff.get(*b)?.get(key).copied()).collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    }
}

/// Daytime buckets (06:00–18:00) as the paper's Fig. 8 discussion groups them.
pub const DAY_BUCKETS: [usize; 6] = [3, 4, 5, 6, 7, 8];
/// Night buckets (18:00–06:00).
pub const NIGHT_BUCKETS: [usize; 6] = [9, 10, 11, 0, 1, 2];

#[cfg(test)]
mod tests {
    use super::*;
    use stmaker::{FeatureKind, PartitionSpan, PartitionSummary, SelectedFeature, Summary};

    fn summary_with(keys: &[&str]) -> Summary {
        let selected: Vec<SelectedFeature> = keys
            .iter()
            .map(|k| SelectedFeature {
                key: k.to_string(),
                label: k.to_string(),
                kind: FeatureKind::Moving,
                irregular_rate: 0.5,
                observed: 1.0,
                regular: None,
            })
            .collect();
        Summary {
            text: String::new(),
            partitions: vec![PartitionSummary {
                span: PartitionSpan { seg_start: 0, seg_end: 0 },
                from: stmaker_poi::LandmarkId(0),
                to: stmaker_poi::LandmarkId(1),
                from_name: "A".into(),
                to_name: "B".into(),
                selected,
                sentence: String::new(),
            }],
            symbolic_len: 2,
            potential: 0.0,
        }
    }

    #[test]
    fn ff_counts_summaries_not_partitions() {
        let summaries =
            vec![summary_with(&["speed"]), summary_with(&["speed", "stay"]), summary_with(&[])];
        let ff = feature_frequency(&summaries, &["speed", "stay", "u_turns"]);
        assert!((ff["speed"] - 2.0 / 3.0).abs() < 1e-12);
        assert!((ff["stay"] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(ff["u_turns"], 0.0);
    }

    #[test]
    fn ff_empty_input_is_zero() {
        let ff = feature_frequency(&[], &["speed"]);
        assert_eq!(ff["speed"], 0.0);
    }

    #[test]
    fn buckets_partition_the_day() {
        let items = vec![
            (1.0, summary_with(&["speed"])),  // bucket 0
            (9.5, summary_with(&["speed"])),  // bucket 4
            (9.9, summary_with(&[])),         // bucket 4
            (23.0, summary_with(&["speed"])), // bucket 11
            (24.5, summary_with(&["speed"])), // wraps to bucket 0
        ];
        let by = FfByBucket::compute(&items, &["speed"]);
        assert_eq!(by.counts[0], 2);
        assert_eq!(by.counts[4], 2);
        assert_eq!(by.counts[11], 1);
        assert_eq!(by.ff[0]["speed"], 1.0);
        assert_eq!(by.ff[4]["speed"], 0.5);
        assert_eq!(by.ff[1]["speed"], 0.0); // empty bucket
    }

    #[test]
    fn day_night_bucket_constants_cover_all_hours() {
        let mut all: Vec<usize> = DAY_BUCKETS.iter().chain(NIGHT_BUCKETS.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn mean_over_buckets() {
        let items = vec![(7.0, summary_with(&["speed"])), (13.0, summary_with(&[]))];
        let by = FfByBucket::compute(&items, &["speed"]);
        // Bucket 3 (06–08) FF = 1.0; bucket 6 (12–14) FF = 0; others empty.
        let day = by.mean_over("speed", &DAY_BUCKETS);
        assert!((day - (1.0 + 0.0 + 0.0 + 0.0 + 0.0 + 0.0) / 6.0).abs() < 1e-12);
    }
}
