//! Deterministic experiment setup: world + corpora + trained summarizer.

use stmaker::{FeatureSet, FeatureWeights, Summarizer, SummarizerConfig};
use stmaker_generator::{GeneratedTrip, TripConfig, TripGenerator, World, WorldConfig};
use stmaker_road::SynthCityConfig;
use stmaker_trajectory::RawTrajectory;

/// Experiment sizing. `quick` keeps every binary under a few seconds for CI;
/// `full` approaches the paper's scale ratios and is what EXPERIMENTS.md
/// reports. Select via the `STMAKER_SCALE` environment variable
/// (`quick`/`full`, default `quick`).
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    /// World assembly parameters.
    pub world: WorldConfig,
    /// Trip-generation parameters.
    pub trips: TripConfig,
    /// Training corpus size (the paper trains on 50k of 100k trajectories).
    pub n_train: usize,
    /// Test corpus size.
    pub n_test: usize,
    /// Scale label for report headers.
    pub label: &'static str,
}

impl ExperimentScale {
    /// Small world, small corpora: seconds per experiment.
    pub fn quick() -> Self {
        Self {
            world: WorldConfig {
                city: SynthCityConfig { cols: 10, rows: 10, ..SynthCityConfig::default() },
                n_pois: 800,
                n_users: 150,
                checkins_per_user: 15,
                n_visit_routes: 120,
                seed: 0x51C4,
            },
            trips: TripConfig::default(),
            n_train: 300,
            n_test: 400,
            label: "quick",
        }
    }

    /// The full evaluation scale used for EXPERIMENTS.md.
    pub fn full() -> Self {
        Self {
            world: WorldConfig::default(),
            trips: TripConfig::default(),
            n_train: 1_500,
            n_test: 2_000,
            label: "full",
        }
    }

    /// Reads `STMAKER_SCALE` (default `quick`).
    pub fn from_env() -> Self {
        match std::env::var("STMAKER_SCALE").as_deref() {
            Ok("full") => Self::full(),
            _ => Self::quick(),
        }
    }
}

/// Worker-thread count for an experiment binary: the value after a
/// `--threads` argument if one was passed, else `0` (auto — the
/// `STMAKER_THREADS` env var, else available parallelism). Thread count
/// never changes experiment results (stmaker-exec's determinism contract);
/// it only changes how fast training and batch stages run.
pub fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// A fully assembled experiment: world, corpora, and the pieces needed to
/// train summarizers (experiments train their own because Fig. 10 varies
/// weights and feature sets).
pub struct Harness {
    /// The synthetic world.
    pub world: World,
    /// The scale that built this harness.
    pub scale: ExperimentScale,
    /// Training trips (with ground truth; experiments usually use `.raw`).
    pub train: Vec<GeneratedTrip>,
    /// Test trips.
    pub test: Vec<GeneratedTrip>,
}

impl Harness {
    /// Builds the world and both corpora deterministically.
    pub fn new(scale: ExperimentScale) -> Self {
        let world = World::generate(scale.world.clone());
        let gen = TripGenerator::new(&world, scale.trips);
        let train = gen.generate_corpus(scale.n_train, 0xA11CE);
        let test = gen.generate_corpus(scale.n_test, 0xB0B);
        Self { world, scale, train, test }
    }

    /// The raw training trajectories.
    pub fn train_raw(&self) -> Vec<RawTrajectory> {
        self.train.iter().map(|t| t.raw.clone()).collect()
    }

    /// Trains a summarizer over the harness's training corpus.
    pub fn train_summarizer(
        &self,
        features: FeatureSet,
        weights: FeatureWeights,
        cfg: SummarizerConfig,
    ) -> Summarizer<'_> {
        let raws = self.train_raw();
        Summarizer::train(&self.world.net, &self.world.registry, &raws, features, weights, cfg)
    }

    /// Trains with the paper's defaults: the six standard features, unit
    /// weights, Ca = 0.5, η = 0.2.
    pub fn train_default(&self) -> Summarizer<'_> {
        let features = stmaker::standard_features();
        let weights = FeatureWeights::uniform(&features);
        self.train_summarizer(features, weights, SummarizerConfig::default())
    }

    /// A trip generator over this harness's world (for experiments that
    /// need trips at controlled hours, like Fig. 8).
    pub fn generator(&self) -> TripGenerator<'_> {
        TripGenerator::new(&self.world, self.scale.trips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_harness_assembles() {
        let mut scale = ExperimentScale::quick();
        scale.n_train = 30;
        scale.n_test = 10;
        let h = Harness::new(scale);
        assert_eq!(h.train.len(), 30);
        assert_eq!(h.test.len(), 10);
        let s = h.train_default();
        assert!(s.model().n_trained > 20);
    }

    #[test]
    fn scale_from_env_defaults_quick() {
        // Do not set the env var here (tests run in parallel); just check
        // the default path.
        let s = ExperimentScale::from_env();
        assert!(s.label == "quick" || s.label == "full");
    }
}
