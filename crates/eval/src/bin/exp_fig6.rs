//! Fig. 6 — case study: one trajectory summarized at k = 1, 2, 3.
//!
//! The paper's Fig. 6 shows a single taxi trip whose summaries gain detail
//! monotonically with k: the k = 1 summary reports two stay points; k = 2
//! additionally localizes a U-turn; k = 3 surfaces another significant
//! landmark. We pick a rush-hour trip carrying both injected stays and an
//! injected U-turn and print its k = 1..3 summaries.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stmaker_eval::{ExperimentScale, Harness};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("# Fig. 6 case study (scale: {})", scale.label);
    let h = Harness::new(scale);
    let summarizer = h.train_default();
    let gen = h.generator();

    // Find an eventful rush-hour trip with at least 3 segments.
    let mut rng = StdRng::seed_from_u64(0xF166);
    let mut picked = None;
    for _ in 0..400 {
        let Some(trip) = gen.generate_at(3, 8.2, &mut rng) else { continue };
        if trip.truth.stays.is_empty() || trip.truth.u_turns.is_empty() {
            continue;
        }
        let Ok(prepared) = summarizer.prepare(&trip.raw) else { continue };
        if prepared.symbolic.segment_count() >= 3 {
            picked = Some((trip, prepared));
            break;
        }
    }
    let Some((trip, prepared)) = picked else {
        eprintln!("no eventful trip found — increase the search budget");
        std::process::exit(1);
    };

    println!(
        "\ntrip: {} raw samples, {:.1} km, {} landmarks, {} injected stay(s), {} injected U-turn(s)\n",
        trip.raw.len(),
        trip.raw.length_m() / 1000.0,
        prepared.symbolic.size(),
        trip.truth.stays.len(),
        trip.truth.u_turns.len(),
    );

    let mut texts = Vec::new();
    for k in 1..=3 {
        match summarizer.summarize_prepared(&prepared, Some(k)) {
            Ok(summary) => {
                println!("--- k = {k} ---");
                println!("{}\n", summary.text);
                texts.push((k, summary.text));
            }
            Err(e) => println!("--- k = {k}: {e} ---\n"),
        }
    }

    // The paper's qualitative claim: "more detailed information is shown
    // with the growing of k". Report the text-length trend as evidence.
    let lens: Vec<usize> = texts.iter().map(|(_, t)| t.len()).collect();
    println!("summary lengths by k: {lens:?} (expected: non-decreasing trend)");
    let _ = stmaker_eval::report::write_json("fig6_case_study", &texts);
}
