//! Fig. 7 — the STMaker UI, as a standalone HTML report.
//!
//! The paper's Fig. 7 is a screenshot of the demo system: raw trajectory
//! data in one pane, the summary in another, the map behind. This binary
//! renders the same composition for one eventful generated trip into
//! `experiments/out/fig7_trip_report.html` — open it in any browser.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stmaker_eval::render::render_trip_report;
use stmaker_eval::{ExperimentScale, Harness};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("# Fig. 7 stand-in — HTML trip report (scale: {})", scale.label);
    let h = Harness::new(scale);
    let summarizer = h.train_default();
    let gen = h.generator();

    // An eventful rush-hour trip renders the most interesting report.
    let mut rng = StdRng::seed_from_u64(0xF17);
    let mut best: Option<(usize, _, _)> = None;
    for _ in 0..120 {
        let Some(trip) = gen.generate_at(2, 8.4, &mut rng) else { continue };
        let Ok(summary) = summarizer.summarize(&trip.raw) else { continue };
        let events: usize = summary.partitions.iter().map(|p| p.selected.len()).sum();
        if best.as_ref().map(|(b, _, _)| events > *b).unwrap_or(true) {
            best = Some((events, trip, summary));
        }
    }
    let Some((events, trip, summary)) = best else {
        eprintln!("no summarizable trip found");
        std::process::exit(1);
    };

    let html = render_trip_report(
        &h.world.net,
        &h.world.registry,
        &trip.raw,
        &summary,
        "STMaker trip report",
    );
    std::fs::create_dir_all("experiments/out").expect("writable working directory");
    let path = "experiments/out/fig7_trip_report.html";
    std::fs::write(path, &html).expect("report written");
    println!("summary: {}", summary.text);
    println!("({events} selected features) wrote {path} — open in a browser");
}
