//! Fig. 10(b) — effect of the partition size k.
//!
//! The paper summarizes 1000 random trajectories at every k ∈ 1..=7 using
//! all seven features (the six standard ones plus the SpeC custom feature)
//! and observes: "as k increases, the FF of routing features (GR, RW and
//! TD) decrease while those of moving features (Spe, Stay, U-turn and SpeC)
//! increase" — longer partitions deviate more from the popular route, while
//! localized moving anomalies dilute inside them.

use serde::Serialize;
use stmaker::{keys, FeatureKind, FeatureWeights, SummarizerConfig};
use stmaker_eval::ff::feature_frequency;
use stmaker_eval::report::{ff, print_table, write_json};
use stmaker_eval::{ExperimentScale, Harness};

#[derive(Serialize)]
struct Fig10bOut {
    ks: Vec<usize>,
    ff_by_k: Vec<std::collections::BTreeMap<String, f64>>,
    n_by_k: Vec<usize>,
}

fn main() {
    let scale = ExperimentScale::from_env();
    println!("# Fig. 10(b) — effect of partition size k (scale: {})", scale.label);
    let n_trips = if scale.label == "full" { 1000 } else { 250 };

    let h = Harness::new(scale);
    let features = stmaker::extended_features();
    let weights = FeatureWeights::uniform(&features);
    let mut cfg = SummarizerConfig::default();
    if let Ok(ms) = std::env::var("STMAKER_MIN_SUPPORT") {
        cfg.popular.min_support = ms.parse().expect("STMAKER_MIN_SUPPORT must be an integer");
        println!("min_support override: {}", cfg.popular.min_support);
    }
    let summarizer = h.train_summarizer(features, weights, cfg);
    let keys7 = [
        keys::GRADE,
        keys::WIDTH,
        keys::DIRECTION,
        keys::SPEED,
        keys::STAY_POINTS,
        keys::U_TURNS,
        keys::SPEED_CHANGE,
    ];

    // Prepare once, summarize at each k (trips shorter than k are skipped,
    // as in the paper where all sampled trajectories were long enough).
    let prepared: Vec<_> = h
        .test
        .iter()
        .take(n_trips)
        .filter_map(|t| summarizer.prepare(&t.raw).ok())
        .filter(|p| p.symbolic.segment_count() >= 7)
        .collect();
    println!("{} trips with ≥ 7 segments", prepared.len());

    let ks: Vec<usize> = (1..=7).collect();
    let mut rows = Vec::new();
    let mut results = Vec::new();
    let mut ns = Vec::new();
    for &k in &ks {
        let summaries: Vec<_> = prepared
            .iter()
            .filter_map(|p| summarizer.summarize_prepared(p, Some(k)).ok())
            .collect();
        let ffs = feature_frequency(&summaries, &keys7);
        let mut row = vec![format!("k = {k}")];
        for key in &keys7 {
            row.push(ff(ffs[*key]));
        }
        row.push(summaries.len().to_string());
        ns.push(summaries.len());
        rows.push(row);
        results.push(ffs);
    }

    let headers = ["k", "GR", "RW", "TD", "Spe", "Stay", "U-turn", "SpeC", "n"];
    print_table("FF vs partition size k", &headers, &rows);

    // Trend check: routing features fall, moving features rise (first → last).
    println!();
    let feats = stmaker::extended_features();
    for key in &keys7 {
        let first = results[0][*key];
        let last = results[6][*key];
        let kind = feats.get(feats.index_of(key).unwrap()).kind();
        let expect_fall = kind == FeatureKind::Routing;
        let ok = if expect_fall { last <= first + 0.02 } else { last >= first - 0.02 };
        println!(
            "{key:<18} k=1 {} → k=7 {}  expected {}  {}",
            ff(first),
            ff(last),
            if expect_fall { "fall" } else { "rise" },
            if ok { "✓" } else { "NOT REPRODUCED" }
        );
    }

    let out = Fig10bOut { ks, ff_by_k: results, n_by_k: ns };
    if let Ok(p) = write_json("fig10b_k_sweep", &out) {
        println!("wrote {}", p.display());
    }
}
