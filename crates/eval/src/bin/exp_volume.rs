//! Data-volume comparison — quantifying the paper's Sec. I claims.
//!
//! The introduction motivates summarization with two representation
//! arguments: semantic trajectories are "excessive for storage, processing
//! and communication" (each point carries attached attributes), while "the
//! output text is lightweight and easy to store and communicate". This
//! experiment measures all three representations on the same test trips:
//!
//! * raw — the Table I CSV form;
//! * semantic — every sample annotated with road attributes + nearby
//!   landmarks (the `stmaker-semantic` baseline, compact JSON);
//! * summary — the generated text.

use serde::Serialize;
use stmaker_eval::report::{print_table, write_json};
use stmaker_eval::{ExperimentScale, Harness};
use stmaker_io::write_trajectory_csv;
use stmaker_semantic::{annotate, AnnotateParams};

#[derive(Serialize)]
struct VolumeOut {
    n_trips: usize,
    raw_bytes: usize,
    semantic_bytes: usize,
    summary_bytes: usize,
    semantic_over_raw: f64,
    raw_over_summary: f64,
    semantic_over_summary: f64,
}

fn main() {
    let scale = ExperimentScale::from_env();
    println!("# Data-volume comparison (scale: {})", scale.label);
    let n_trips = if scale.label == "full" { 300 } else { 100 };

    let h = Harness::new(scale);
    let summarizer = h.train_default();

    let mut raw_bytes = 0usize;
    let mut semantic_bytes = 0usize;
    let mut summary_bytes = 0usize;
    let mut n = 0usize;
    for trip in h.test.iter().take(n_trips) {
        let Ok(summary) = summarizer.summarize(&trip.raw) else { continue };
        raw_bytes += write_trajectory_csv(&trip.raw).len();
        semantic_bytes +=
            annotate(&trip.raw, &h.world.net, &h.world.registry, AnnotateParams::default())
                .json_bytes();
        summary_bytes += summary.text.len();
        n += 1;
    }

    let rows = vec![
        vec!["raw (Table I CSV)".to_string(), fmt_kb(raw_bytes), per(raw_bytes, n)],
        vec![
            "semantic (annotated JSON)".to_string(),
            fmt_kb(semantic_bytes),
            per(semantic_bytes, n),
        ],
        vec!["summary (generated text)".to_string(), fmt_kb(summary_bytes), per(summary_bytes, n)],
    ];
    print_table(
        &format!("storage volume over {n} trips"),
        &["representation", "total", "per trip"],
        &rows,
    );

    let out = VolumeOut {
        n_trips: n,
        raw_bytes,
        semantic_bytes,
        summary_bytes,
        semantic_over_raw: ratio(semantic_bytes, raw_bytes),
        raw_over_summary: ratio(raw_bytes, summary_bytes),
        semantic_over_summary: ratio(semantic_bytes, summary_bytes),
    };
    println!(
        "\nsemantic / raw      = {:.1}×  (paper: semantic volume \"can be excessive\")",
        out.semantic_over_raw
    );
    println!("raw      / summary  = {:.1}×", out.raw_over_summary);
    println!(
        "semantic / summary  = {:.1}×  (paper: \"the output text is lightweight\")",
        out.semantic_over_summary
    );
    let ok = out.semantic_over_raw > 1.5 && out.raw_over_summary > 5.0;
    println!("claims hold: {}", if ok { "✓" } else { "NOT REPRODUCED" });

    if let Ok(p) = write_json("volume_comparison", &out) {
        println!("wrote {}", p.display());
    }
}

fn fmt_kb(bytes: usize) -> String {
    format!("{:.1} KiB", bytes as f64 / 1024.0)
}

fn per(bytes: usize, n: usize) -> String {
    format!("{:.0} B", bytes as f64 / n.max(1) as f64)
}

fn ratio(a: usize, b: usize) -> f64 {
    a as f64 / b.max(1) as f64
}
