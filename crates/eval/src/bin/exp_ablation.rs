//! Ablations beyond the paper: sensitivity of the pipeline to its three main
//! design knobs.
//!
//! 1. **η (selection threshold)** — Sec. V says "only features with higher
//!    irregular rate than a user specified threshold η will be covered"; we
//!    sweep η and report FF plus mean selected-features-per-summary.
//! 2. **Ca (significance weight)** — Eq. (2)'s cut-vs-merge balance; we
//!    sweep Ca and report the unconstrained partition-count distribution.
//! 3. **Map matching** — HMM (default) vs plain nearest-edge: how much of
//!    the routing-feature signal survives the cheaper matcher?

use serde::Serialize;
use stmaker::{keys, FeatureWeights, SummarizerConfig};
use stmaker_eval::ff::feature_frequency;
use stmaker_eval::report::{ff, print_table, write_json};
use stmaker_eval::{ExperimentScale, Harness};

#[derive(Serialize)]
struct AblationOut {
    eta_sweep: Vec<(f64, std::collections::BTreeMap<String, f64>, f64)>,
    ca_sweep: Vec<(f64, f64)>,
    matching: Vec<(String, std::collections::BTreeMap<String, f64>)>,
}

fn main() {
    let scale = ExperimentScale::from_env();
    println!("# Ablations (scale: {})", scale.label);
    let n_trips = if scale.label == "full" { 600 } else { 200 };
    let h = Harness::new(scale);
    let keys6 =
        [keys::GRADE, keys::WIDTH, keys::DIRECTION, keys::SPEED, keys::STAY_POINTS, keys::U_TURNS];

    // --- 1. η sweep.
    let mut eta_rows = Vec::new();
    let mut eta_out = Vec::new();
    for eta in [0.1, 0.2, 0.3, 0.4] {
        let features = stmaker::standard_features();
        let weights = FeatureWeights::uniform(&features);
        let cfg = SummarizerConfig { eta, ..SummarizerConfig::default() };
        let s = h.train_summarizer(features, weights, cfg);
        let summaries: Vec<_> =
            h.test.iter().take(n_trips).filter_map(|t| s.summarize(&t.raw).ok()).collect();
        let ffs = feature_frequency(&summaries, &keys6);
        let mean_sel: f64 = summaries
            .iter()
            .map(|su| su.partitions.iter().map(|p| p.selected.len()).sum::<usize>())
            .sum::<usize>() as f64
            / summaries.len().max(1) as f64;
        let mut row = vec![format!("η = {eta}")];
        for k in &keys6 {
            row.push(ff(ffs[*k]));
        }
        row.push(format!("{mean_sel:.2}"));
        eta_rows.push(row);
        eta_out.push((eta, ffs, mean_sel));
    }
    print_table(
        "η sweep: FF and mean selected features per summary",
        &["η", "GR", "RW", "TD", "Spe", "Stay", "U-turn", "mean sel"],
        &eta_rows,
    );
    let monotone = eta_out.windows(2).all(|w| w[1].2 <= w[0].2 + 1e-9);
    println!("mean selections fall as η rises: {}", if monotone { "✓" } else { "NO" });

    // --- 2. Ca sweep: unconstrained partition counts.
    let mut ca_rows = Vec::new();
    let mut ca_out = Vec::new();
    for ca in [0.1, 0.5, 1.0, 1.5, 2.0] {
        let features = stmaker::standard_features();
        let weights = FeatureWeights::uniform(&features);
        let cfg = SummarizerConfig { ca, ..SummarizerConfig::default() };
        let s = h.train_summarizer(features, weights, cfg);
        let counts: Vec<usize> = h
            .test
            .iter()
            .take(n_trips)
            .filter_map(|t| s.summarize(&t.raw).ok())
            .map(|su| su.partitions.len())
            .collect();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len().max(1) as f64;
        ca_rows.push(vec![format!("Ca = {ca}"), format!("{mean:.2}")]);
        ca_out.push((ca, mean));
    }
    print_table("Ca sweep: mean unconstrained partition count", &["Ca", "mean k"], &ca_rows);
    let rising = ca_out.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-9);
    println!("partition count rises with Ca: {}", if rising { "✓" } else { "NO" });
    println!(
        "note: with non-negative features S ≥ 0.5 always (cos ≥ 0), so Ca ≤ 0.5 \
         can never cut — the paper's default Ca = 0.5 yields k = 1 unless a \
         boundary has S < Ca·l.s, which explains mean k ≈ 1 at small Ca."
    );

    // --- 3. HMM vs nearest-edge matching.
    let mut match_rows = Vec::new();
    let mut match_out = Vec::new();
    for (label, hmm) in [("HMM (default)", true), ("nearest-edge", false)] {
        let features = stmaker::standard_features();
        let weights = FeatureWeights::uniform(&features);
        let mut cfg = SummarizerConfig::default();
        cfg.extraction.hmm_matching = hmm;
        let s = h.train_summarizer(features, weights, cfg);
        let summaries: Vec<_> =
            h.test.iter().take(n_trips).filter_map(|t| s.summarize(&t.raw).ok()).collect();
        let ffs = feature_frequency(&summaries, &keys6);
        let mut row = vec![label.to_string()];
        for k in &keys6 {
            row.push(ff(ffs[*k]));
        }
        match_rows.push(row);
        match_out.push((label.to_string(), ffs));
    }
    print_table(
        "matching ablation: FF under each matcher",
        &["matcher", "GR", "RW", "TD", "Spe", "Stay", "U-turn"],
        &match_rows,
    );

    let out = AblationOut { eta_sweep: eta_out, ca_sweep: ca_out, matching: match_out };
    if let Ok(p) = write_json("ablation", &out) {
        println!("\nwrote {}", p.display());
    }
}
