//! Fig. 8 — feature frequency (FF) per two-hour bucket across the day.
//!
//! The paper classifies test trajectories into twelve two-hour categories by
//! departure time and reports each feature's FF per category, finding "all
//! the features have a conspicuously higher FF during daytime (6:00–18:00)
//! than those at night", with speed peaking in the rush buckets.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;
use stmaker::keys;
use stmaker_eval::ff::{FfByBucket, DAY_BUCKETS, NIGHT_BUCKETS};
use stmaker_eval::report::{ff, print_table, write_json};
use stmaker_eval::{ExperimentScale, Harness};

#[derive(Serialize)]
struct Fig8Out {
    buckets: Vec<String>,
    counts: Vec<usize>,
    ff: Vec<std::collections::BTreeMap<String, f64>>,
    day_vs_night: std::collections::BTreeMap<String, (f64, f64)>,
}

fn main() {
    let scale = ExperimentScale::from_env();
    println!("# Fig. 8 — FF by time of day (scale: {})", scale.label);
    let per_bucket = if scale.label == "full" { 160 } else { 40 };

    let h = Harness::new(scale);
    let summarizer = h.train_default();
    let gen = h.generator();
    let keys6 =
        [keys::GRADE, keys::WIDTH, keys::DIRECTION, keys::SPEED, keys::STAY_POINTS, keys::U_TURNS];

    // Generate test trips per bucket (controlled hours) and summarize.
    let mut rng = StdRng::seed_from_u64(0xF18);
    let mut items = Vec::new();
    for bucket in 0..12 {
        let mut made = 0;
        let mut attempts = 0;
        while made < per_bucket && attempts < per_bucket * 6 {
            attempts += 1;
            let hour = bucket as f64 * 2.0 + rng.random_range(0.0..2.0);
            let Some(trip) = gen.generate_at((attempts % 30) as i64, hour, &mut rng) else {
                continue;
            };
            let Ok(summary) = summarizer.summarize(&trip.raw) else { continue };
            items.push((hour, summary));
            made += 1;
        }
    }

    let by = FfByBucket::compute(&items, &keys6);

    let headers: Vec<&str> =
        std::iter::once("bucket").chain(["GR", "RW", "TD", "Spe", "Stay", "U-turn", "n"]).collect();
    let rows: Vec<Vec<String>> = (0..12)
        .map(|b| {
            let mut row = vec![format!("{:02}:00-{:02}:00", b * 2, b * 2 + 2)];
            for k in &keys6 {
                row.push(ff(by.ff[b][*k]));
            }
            row.push(by.counts[b].to_string());
            row
        })
        .collect();
    print_table("FF per two-hour bucket", &headers, &rows);

    // Day vs night contrast (the paper's headline observation).
    let mut contrast = std::collections::BTreeMap::new();
    println!();
    for k in &keys6 {
        let day = by.mean_over(k, &DAY_BUCKETS);
        let night = by.mean_over(k, &NIGHT_BUCKETS);
        println!(
            "{k:<18} day {} vs night {}  {}",
            ff(day),
            ff(night),
            if day > night { "(day higher ✓)" } else { "(UNEXPECTED)" }
        );
        contrast.insert(k.to_string(), (day, night));
    }

    let out = Fig8Out {
        buckets: (0..12).map(|b| format!("{:02}:00-{:02}:00", b * 2, b * 2 + 2)).collect(),
        counts: by.counts.clone(),
        ff: by.ff.clone(),
        day_vs_night: contrast,
    };
    if let Ok(p) = write_json("fig8_ff_by_time", &out) {
        println!("\nwrote {}", p.display());
    }
}
