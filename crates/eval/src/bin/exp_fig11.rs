//! Fig. 11 — reader understanding study (simulated).
//!
//! The paper: 450 randomly selected summaries, thirty volunteers reading
//! fifteen each, grading understanding 1–4; "nearly 55% of randomly selected
//! 450 summaries are marked at grade 4, and nearly 80% (grade 3 and 4)
//! summaries can give users an intuitive view of the raw trajectories."
//!
//! Our simulated readers grade each summary against the generator's ground
//! truth (see `stmaker_eval::reader` and DESIGN.md §3 for the substitution
//! argument).

use serde::Serialize;
use stmaker_eval::reader::LEVELS;
use stmaker_eval::report::{ff, print_table, write_json};
use stmaker_eval::{simulate_reader_study, ExperimentScale, Harness};

#[derive(Serialize)]
struct Fig11Out {
    counts: [usize; 4],
    fractions: [f64; 4],
    at_least_3: f64,
    pool: usize,
}

fn main() {
    let scale = ExperimentScale::from_env();
    println!("# Fig. 11 — simulated reader study (scale: {})", scale.label);
    let h = Harness::new(scale);
    let summarizer = h.train_default();

    // Build the (summary, ground truth) pool from test trips.
    let pool: Vec<_> = h
        .test
        .iter()
        .filter_map(|t| summarizer.summarize(&t.raw).ok().map(|s| (s, t.truth.clone())))
        .collect();
    println!("pool: {} graded summaries", pool.len());

    // The paper's protocol: 30 readers × 15 summaries = 450 gradings.
    let result = simulate_reader_study(&pool, 30, 15, 0xF11);

    let rows: Vec<Vec<String>> = (1..=4)
        .map(|g| {
            vec![
                LEVELS[g - 1].to_string(),
                result.counts[g - 1].to_string(),
                ff(result.fraction(g)),
                "#".repeat((result.fraction(g) * 50.0).round() as usize),
            ]
        })
        .collect();
    print_table("understanding levels", &["level", "count", "fraction", ""], &rows);

    println!("\ngrade-4 fraction:      {} (paper: ≈ 0.55)", ff(result.fraction(4)));
    println!("grade-≥3 fraction:     {} (paper: ≈ 0.80)", ff(result.fraction_at_least_3()));

    let out = Fig11Out {
        counts: result.counts,
        fractions: [result.fraction(1), result.fraction(2), result.fraction(3), result.fraction(4)],
        at_least_3: result.fraction_at_least_3(),
        pool: pool.len(),
    };
    if let Ok(p) = write_json("fig11_reader_study", &out) {
        println!("wrote {}", p.display());
    }
}
