//! Fig. 10(a) — effect of the feature weight.
//!
//! The paper tunes the Spe (speed) feature's weight from 0.5 to 4 while
//! keeping the others at 1, summarizes 1000 random trajectories per setting,
//! and observes that "FF of the Spe feature increases gradually when the
//! weight increases".

use serde::Serialize;
use stmaker::{keys, FeatureWeights, SummarizerConfig};
use stmaker_eval::ff::feature_frequency;
use stmaker_eval::report::{ff, print_table, write_json};
use stmaker_eval::{ExperimentScale, Harness};

#[derive(Serialize)]
struct Fig10aOut {
    weights: Vec<f64>,
    ff_by_weight: Vec<std::collections::BTreeMap<String, f64>>,
}

fn main() {
    let scale = ExperimentScale::from_env();
    println!("# Fig. 10(a) — effect of feature weight (scale: {})", scale.label);
    let n_trips = if scale.label == "full" { 1000 } else { 200 };

    let h = Harness::new(scale);
    let keys6 =
        [keys::GRADE, keys::WIDTH, keys::DIRECTION, keys::SPEED, keys::STAY_POINTS, keys::U_TURNS];
    let sweep = [0.5, 1.0, 2.0, 3.0, 4.0];

    // The trained model is weight-independent (weights only steer
    // partitioning and selection), so train once and swap weights per
    // setting via set_weights — the knob the API exposes for exactly this
    // experiment.
    let features = stmaker::standard_features();
    let weights = FeatureWeights::uniform(&features);
    let mut summarizer = h.train_summarizer(features, weights, SummarizerConfig::default());

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for w_spe in sweep {
        let features = stmaker::standard_features();
        let weights = FeatureWeights::uniform(&features).with(&features, keys::SPEED, w_spe);
        summarizer.set_weights(weights);
        let summaries: Vec<_> =
            h.test.iter().take(n_trips).filter_map(|t| summarizer.summarize(&t.raw).ok()).collect();
        let ffs = feature_frequency(&summaries, &keys6);
        let mut row = vec![format!("w_Spe = {w_spe}")];
        for k in &keys6 {
            row.push(ff(ffs[*k]));
        }
        rows.push(row);
        results.push(ffs);
    }

    let headers = ["weight", "GR", "RW", "TD", "Spe", "Stay", "U-turn"];
    print_table("FF vs speed-feature weight", &headers, &rows);

    let spe_series: Vec<f64> = results.iter().map(|r| r[keys::SPEED]).collect();
    let monotone = spe_series.windows(2).all(|w| w[1] >= w[0] - 0.02);
    println!(
        "\nSpe FF series: {:?}  {}",
        spe_series.iter().map(|v| format!("{v:.3}")).collect::<Vec<_>>(),
        if monotone { "(increasing ✓)" } else { "(NOT MONOTONE)" }
    );

    let out = Fig10aOut { weights: sweep.to_vec(), ff_by_weight: results };
    if let Ok(p) = write_json("fig10a_weight_sweep", &out) {
        println!("wrote {}", p.display());
    }
}
