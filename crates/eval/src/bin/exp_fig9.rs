//! Fig. 9 — usage frequency of landmarks by significance decile.
//!
//! The paper sorts landmarks by significance into ten groups and measures
//! how often each group appears as partition endpoints in the summary
//! dataset: "the usage frequency versus the landmark significance follows a
//! long-tail distribution … the landmarks in top-10%-high-significance group
//! appear about 40% in the summary dataset", with ~60% covered by the top
//! three deciles.

use serde::Serialize;
use stmaker_eval::landmark_usage::usage_by_significance_decile;
use stmaker_eval::report::{ff, print_table, write_json};
use stmaker_eval::{ExperimentScale, Harness};

#[derive(Serialize)]
struct Fig9Out {
    usage: [f64; 10],
    top1: f64,
    top3: f64,
    n_summaries: usize,
}

fn main() {
    let scale = ExperimentScale::from_env();
    println!("# Fig. 9 — landmark usage by significance decile (scale: {})", scale.label);
    let h = Harness::new(scale);
    let summarizer = h.train_default();

    let summaries: Vec<_> =
        h.test.iter().filter_map(|t| summarizer.summarize(&t.raw).ok()).collect();
    println!("summarized {} of {} test trips", summaries.len(), h.test.len());

    let usage = usage_by_significance_decile(&h.world.registry, &summaries);
    let rows: Vec<Vec<String>> = usage
        .iter()
        .enumerate()
        .map(|(d, u)| {
            vec![
                format!("top {}-{}%", d * 10, d * 10 + 10),
                ff(*u),
                "#".repeat((u * 60.0).round() as usize),
            ]
        })
        .collect();
    print_table("landmark usage frequency", &["significance group", "usage", ""], &rows);

    let top1 = usage[0];
    let top3 = usage[0] + usage[1] + usage[2];
    println!("\ntop-10% group usage: {} (paper: ≈ 0.40)", ff(top1));
    println!("top-30% group usage: {} (paper: ≈ 0.60)", ff(top3));
    println!(
        "long tail: {}",
        if usage[0] > usage[9] && top3 > 0.45 { "yes ✓" } else { "NOT REPRODUCED" }
    );

    let out = Fig9Out { usage, top1, top3, n_summaries: summaries.len() };
    if let Ok(p) = write_json("fig9_landmark_usage", &out) {
        println!("wrote {}", p.display());
    }
}
