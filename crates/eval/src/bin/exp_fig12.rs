//! Fig. 12 — average summarization time cost vs |T| (a) and k (b).
//!
//! The paper reports "most trajectories can be summarized within tens of
//! milliseconds. With the increasing of |T| and k, the time cost increase
//! slightly." We time the full pipeline (calibration + extraction +
//! partition + selection + rendering) on generated trips bucketed by their
//! symbolic size and across k ∈ 1..=7.
//!
//! The run also collects per-stage telemetry (spans + counters +
//! histograms) through `stmaker-obs` and writes it as `BENCH_obs.json`
//! (override the path with `STMAKER_OBS_OUT`), the same schema the CLI's
//! `--metrics-json` and the bench crate's `obs_report` bench emit.

use serde::Serialize;
use stmaker::{standard_features, FeatureWeights, SummarizerConfig};
use stmaker_eval::report::{ms, print_table, write_json};
use stmaker_eval::timing::{time_by_k, time_by_symbolic_len};
use stmaker_eval::{threads_from_args, ExperimentScale, Harness};
use stmaker_obs::Recorder;

#[derive(Serialize)]
struct Fig12Out {
    by_len: Vec<(usize, f64, usize)>,
    by_k: Vec<(usize, f64, usize)>,
}

fn main() {
    let scale = ExperimentScale::from_env();
    println!("# Fig. 12 — summarization time cost (scale: {})", scale.label);
    let h = Harness::new(scale);
    // Journal-backed so the run matches the obs_report bench schema
    // (exemplars from the batch leg, obs.events_dropped counter) — both
    // write the same BENCH_obs.json baseline that CI diffs against.
    let obs = Recorder::enabled_with_journal(stmaker_obs::DEFAULT_JOURNAL_CAPACITY);
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let summarizer = h.train_summarizer(
        features,
        weights,
        SummarizerConfig::default().with_recorder(obs.clone()).with_threads(threads_from_args()),
    );
    let trips: Vec<_> = h.test.iter().map(|t| t.raw.clone()).collect();

    // (a) time vs |T|. Bucket centres scale with the city (quick-scale trips
    // are shorter than the paper's 20–120 landmark range; the growth trend
    // is what matters).
    let buckets: Vec<usize> = if h.scale.label == "full" {
        vec![10, 20, 30, 40, 50, 60]
    } else {
        vec![5, 10, 15, 20, 25, 30]
    };
    let by_len = time_by_symbolic_len(&summarizer, &trips, &buckets, 2);
    let rows: Vec<Vec<String>> = by_len
        .iter()
        .map(|(b, c)| vec![format!("|T| ≈ {b}"), ms(c.mean_ms), c.n.to_string()])
        .collect();
    print_table("Fig. 12(a): time vs trajectory size", &["|T|", "mean time", "n"], &rows);

    // (b) time vs k over a fixed trip set.
    let ks: Vec<usize> = (1..=7).collect();
    let by_k = time_by_k(&summarizer, &trips[..trips.len().min(150)], &ks);
    let rows: Vec<Vec<String>> = by_k
        .iter()
        .map(|(k, c)| vec![format!("k = {k}"), ms(c.mean_ms), c.n.to_string()])
        .collect();
    print_table("Fig. 12(b): time vs partition size k", &["k", "mean time", "n"], &rows);

    let max_ms = by_len
        .iter()
        .map(|(_, c)| c.mean_ms)
        .chain(by_k.iter().map(|(_, c)| c.mean_ms))
        .filter(|m| m.is_finite())
        .fold(0.0f64, f64::max);
    println!(
        "\nmax mean time: {} — paper reports tens of milliseconds {}",
        ms(max_ms),
        if max_ms < 100.0 { "✓" } else { "(slower environment)" }
    );

    let out = Fig12Out {
        by_len: by_len.iter().map(|(b, c)| (*b, c.mean_ms, c.n)).collect(),
        by_k: by_k.iter().map(|(k, c)| (*k, c.mean_ms, c.n)).collect(),
    };
    if let Ok(p) = write_json("fig12_time_cost", &out) {
        println!("wrote {}", p.display());
    }

    // A batch leg populates the batch-only series (per-trip replayed
    // spans, merged worker counters, top-K slowest-trip exemplars) so
    // this binary emits the full report schema.
    let batch: Vec<_> = trips.iter().take(40).cloned().collect();
    let batch_ok = summarizer.summarize_batch(&batch).iter().filter(|r| r.is_ok()).count();
    println!("batch leg: {batch_ok}/{} trips ok", batch.len());

    // Per-stage telemetry for the whole run (training + every timed
    // summarization), in the shared stmaker-obs report schema.
    let report = obs.report();
    println!("\n{}", stmaker_obs::stats::render(&report));
    let obs_path = std::env::var("STMAKER_OBS_OUT").unwrap_or_else(|_| "BENCH_obs.json".to_owned());
    match report.write_json(&obs_path) {
        Ok(()) => println!("wrote {obs_path}"),
        Err(e) => eprintln!("warning: cannot write {obs_path}: {e}"),
    }
}
