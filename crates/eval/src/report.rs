//! Report output: aligned text tables on stdout and JSON dumps for
//! EXPERIMENTS.md bookkeeping.

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// Prints a titled, column-aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (w, c) in widths.iter().zip(cells) {
            s.push_str(&format!("{c:>w$}  ", w = w));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Serializes `value` as pretty JSON under `experiments/out/<name>.json`
/// (directory created on demand). Returns the written path.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<std::path::PathBuf> {
    write_json_to(Path::new("experiments/out"), name, value)
}

/// [`write_json`] with an explicit output directory.
pub fn write_json_to<T: Serialize>(
    dir: &Path,
    name: &str,
    value: &T,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    let body = serde_json::to_string_pretty(value).expect("serializable experiment result");
    f.write_all(body.as_bytes())?;
    f.write_all(b"\n")?;
    Ok(path)
}

/// Formats a fraction as a fixed-width FF value ("0.413").
pub fn ff(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats milliseconds ("12.4 ms").
pub fn ms(v: f64) -> String {
    if v.is_nan() {
        "-".to_owned()
    } else {
        format!("{v:.1} ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(ff(0.41279), "0.413");
        assert_eq!(ms(12.44), "12.4 ms");
        assert_eq!(ms(f64::NAN), "-");
    }

    #[test]
    fn write_json_round_trips() {
        let dir = std::env::temp_dir().join(format!("stmaker-eval-{}", std::process::id()));
        let path = write_json_to(&dir, "test_report", &vec![1, 2, 3]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let v: Vec<i32> = serde_json::from_str(&body).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
