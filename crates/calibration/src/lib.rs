//! Anchor-based trajectory calibration: raw → symbolic.
//!
//! Sec. II-A of the paper: raw trajectories "are not directly usable for
//! summarization" because different sampling strategies over the same route
//! produce very different point sequences (the paper's Fig. 2). The fix —
//! taken from the authors' earlier SIGMOD'13 work \[31\] — is to rewrite each
//! raw trajectory onto a stable, trajectory-independent set of anchor points
//! (the landmarks), yielding a [`SymbolicTrajectory`].
//!
//! The geometric procedure implemented here:
//!
//! 1. collect candidate landmarks within [`CalibrationParams::radius_m`] of
//!    the raw polyline (one corridor query against the registry's spatial
//!    index — R-tree by default, grid as the escape hatch);
//! 2. project each candidate onto the polyline and keep those whose
//!    projection distance is within the radius;
//! 3. order accepted landmarks by arc length along the polyline and assign
//!    each the linearly interpolated timestamp at its projection;
//! 4. collapse consecutive duplicates and landmarks that project onto
//!    (nearly) the same spot.
//!
//! Because steps 1–4 depend only on the *shape* of the polyline, two raw
//! trajectories sampled differently from the same route calibrate to the
//! same symbolic trajectory — the invariance the paper needs, which our
//! property tests assert.

use stmaker_geo::{LocalFrame, SpatialStats};
use stmaker_poi::{LandmarkId, LandmarkRegistry};
use stmaker_trajectory::{RawTrajectory, RawView, SymbolicPoint, SymbolicTrajectory, Timestamp};

/// Tunables for calibration.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationParams {
    /// A landmark anchors the trajectory if its distance to the polyline is
    /// at most this, metres.
    pub radius_m: f64,
    /// Landmarks projecting within this arc-length distance of one another
    /// are duplicates; the geometrically closer one wins. Metres.
    pub min_spacing_m: f64,
    /// When duplicate anchors' projection distances differ by less than
    /// this (i.e. within GPS noise), the more *significant* landmark wins
    /// instead — people anchor descriptions at the Times Square, not at the
    /// equally-near unnamed crossing (cf. the paper's Sec. IV discussion).
    /// Metres.
    pub tie_margin_m: f64,
}

impl Default for CalibrationParams {
    fn default() -> Self {
        Self { radius_m: 120.0, min_spacing_m: 60.0, tie_margin_m: 20.0 }
    }
}

impl CalibrationParams {
    /// Checks the tunables: the radius must be positive and finite, the
    /// spacing and tie margin non-negative and finite. NaN fails every
    /// comparison, so each check catches it too.
    pub fn validate(&self) -> Result<(), CalibrationError> {
        if !(self.radius_m > 0.0) || !self.radius_m.is_finite() {
            return Err(CalibrationError::InvalidParams("radius_m must be positive and finite"));
        }
        if !(self.min_spacing_m >= 0.0) || !self.min_spacing_m.is_finite() {
            return Err(CalibrationError::InvalidParams(
                "min_spacing_m must be non-negative and finite",
            ));
        }
        if !(self.tie_margin_m >= 0.0) || !self.tie_margin_m.is_finite() {
            return Err(CalibrationError::InvalidParams(
                "tie_margin_m must be non-negative and finite",
            ));
        }
        Ok(())
    }
}

/// Why calibration failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalibrationError {
    /// Fewer than two landmarks anchor the trajectory; no symbolic form
    /// exists. Carries the number found.
    TooFewLandmarks(usize),
    /// The [`CalibrationParams`] are unusable; carries which constraint
    /// failed.
    InvalidParams(&'static str),
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::TooFewLandmarks(n) => {
                write!(f, "only {n} landmark(s) within calibration radius; need at least 2")
            }
            CalibrationError::InvalidParams(what) => {
                write!(f, "invalid calibration params: {what}")
            }
        }
    }
}

impl std::error::Error for CalibrationError {}

/// An accepted anchor before timestamping (exposed for diagnostics/tests).
#[derive(Debug, Clone, Copy)]
struct Anchor {
    landmark: LandmarkId,
    arc_m: f64,
    distance_m: f64,
}

/// Calibrates a raw trajectory onto the landmark registry.
pub fn calibrate(
    raw: &RawTrajectory,
    registry: &LandmarkRegistry,
    params: CalibrationParams,
) -> Result<SymbolicTrajectory, CalibrationError> {
    calibrate_view(raw.view(), registry, params)
}

/// [`calibrate`] over a borrowed sample buffer (zero-copy entry point used
/// by streaming and batch callers).
pub fn calibrate_view(
    raw: RawView<'_>,
    registry: &LandmarkRegistry,
    params: CalibrationParams,
) -> Result<SymbolicTrajectory, CalibrationError> {
    let mut stats = SpatialStats::default();
    calibrate_view_traced(raw, registry, params, &mut stats)
}

/// [`calibrate_view`] that also accumulates spatial-index work counters
/// (`spatial.*` obs metrics) into `stats`.
pub fn calibrate_view_traced(
    raw: RawView<'_>,
    registry: &LandmarkRegistry,
    params: CalibrationParams,
    stats: &mut SpatialStats,
) -> Result<SymbolicTrajectory, CalibrationError> {
    params.validate()?;
    let poly = raw.polyline();
    let frame = LocalFrame::new(raw.start().point);

    // 1. Candidate collection: sample the polyline densely enough that no
    //    landmark within `radius_m` of the route can be missed, then ask the
    //    registry for everything within the corridor in one query (the R-tree
    //    walks its rect once; the grid falls back to per-probe ring scans).
    let probe = poly.resample(params.radius_m.max(1.0));
    let mut candidates: Vec<LandmarkId> = Vec::new();
    registry.candidates_along(probe.points(), params.radius_m * 1.5, &mut candidates, stats);

    // 2–3. Precise projection filter + arc ordering.
    let mut anchors: Vec<Anchor> = candidates
        .into_iter()
        .filter_map(|id| {
            let proj = poly.project(&frame, &registry.get(id).point);
            (proj.distance_m <= params.radius_m).then_some(Anchor {
                landmark: id,
                arc_m: proj.arc_m,
                distance_m: proj.distance_m,
            })
        })
        .collect();
    // total_cmp: projections of finite points are finite, but a total order
    // keeps the sort deterministic (NaN last) instead of panicking if an
    // upstream geometry bug ever produces one.
    anchors.sort_by(|a, b| {
        a.arc_m
            .total_cmp(&b.arc_m)
            .then(a.distance_m.total_cmp(&b.distance_m))
            .then(a.landmark.cmp(&b.landmark))
    });

    // 4. Spacing-based dedup: within a `min_spacing_m` run, keep the
    //    closest; distance ties within `tie_margin_m` resolve towards the
    //    more significant landmark.
    let better = |a: &Anchor, b: &Anchor| -> bool {
        if (a.distance_m - b.distance_m).abs() <= params.tie_margin_m {
            let sa = registry.get(a.landmark).significance;
            let sb = registry.get(b.landmark).significance;
            sa > sb || (sa == sb && a.distance_m < b.distance_m)
        } else {
            a.distance_m < b.distance_m
        }
    };
    // Each dedup run is anchored at the arc of its *first* anchor, so which
    // candidate wins within the run cannot stretch the run's reach.
    let mut kept: Vec<Anchor> = Vec::with_capacity(anchors.len());
    let mut run_start_arc = f64::NEG_INFINITY;
    for a in anchors {
        // Within a run there is always a kept representative (the run opener
        // pushed one); the `if let` keeps that invariant panic-free.
        if let Some(last) =
            kept.last_mut().filter(|_| a.arc_m - run_start_arc < params.min_spacing_m)
        {
            if better(&a, last) {
                *last = a;
            }
        } else {
            run_start_arc = a.arc_m;
            kept.push(a);
        }
    }
    // Collapse consecutive repeats of the same landmark (possible when a
    // noisy route wiggles around one anchor).
    kept.dedup_by_key(|a| a.landmark);

    if kept.len() < 2 {
        return Err(CalibrationError::TooFewLandmarks(kept.len()));
    }

    // Timestamp each anchor by interpolating time at its arc position.
    let times = arc_to_time_table(raw);
    let mut points: Vec<SymbolicPoint> = kept
        .iter()
        .map(|a| SymbolicPoint { landmark: a.landmark, t: time_at_arc(&times, a.arc_m) })
        .collect();
    // Arc ordering guarantees non-decreasing times up to floating error;
    // clamp defensively so SymbolicTrajectory's invariant always holds.
    for i in 1..points.len() {
        if points[i].t < points[i - 1].t {
            points[i].t = points[i - 1].t;
        }
    }
    Ok(SymbolicTrajectory::new(points))
}

/// Cumulative `(arc_m, timestamp)` pairs per raw sample.
fn arc_to_time_table(raw: RawView<'_>) -> Vec<(f64, Timestamp)> {
    let mut out = Vec::with_capacity(raw.len());
    let mut acc = 0.0;
    let pts = raw.points();
    out.push((0.0, pts[0].t));
    for w in pts.windows(2) {
        acc += w[0].point.haversine_m(&w[1].point);
        out.push((acc, w[1].t));
    }
    out
}

/// Linearly interpolated timestamp at arc position `arc_m`.
fn time_at_arc(table: &[(f64, Timestamp)], arc_m: f64) -> Timestamp {
    if arc_m <= 0.0 {
        return table[0].1;
    }
    let last = table[table.len() - 1];
    if arc_m >= last.0 {
        return last.1;
    }
    let i = table.partition_point(|(a, _)| *a <= arc_m) - 1;
    let (a0, t0) = table[i];
    let (a1, t1) = table[i + 1];
    let span = a1 - a0;
    if span <= 0.0 {
        return t0;
    }
    let frac = (arc_m - a0) / span;
    Timestamp(t0.0 + ((t1.0 - t0.0) as f64 * frac).round() as i64)
}

/// Convenience: calibrate, returning `None` on failure (callers that filter
/// a corpus and don't care why individual trajectories dropped out).
pub fn calibrate_opt(
    raw: &RawTrajectory,
    registry: &LandmarkRegistry,
    params: CalibrationParams,
) -> Option<SymbolicTrajectory> {
    calibrate(raw, registry, params).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmaker_geo::GeoPoint;
    use stmaker_poi::{Landmark, LandmarkKind};
    use stmaker_trajectory::RawPoint;

    fn base() -> GeoPoint {
        GeoPoint::new(39.9, 116.4)
    }

    fn lm(point: GeoPoint, name: &str) -> Landmark {
        Landmark {
            id: LandmarkId(0), // reassigned by from_landmarks
            point,
            name: name.into(),
            kind: LandmarkKind::TurningPoint,
            significance: 0.5,
        }
    }

    /// Landmarks every 500 m along an east route, plus one far-away decoy.
    fn registry_along_route() -> LandmarkRegistry {
        let mut lms: Vec<Landmark> = (0..5)
            .map(|i| {
                lm(
                    base().destination(90.0, 500.0 * i as f64).destination(0.0, 20.0),
                    &format!("L{i}"),
                )
            })
            .collect();
        lms.push(lm(base().destination(0.0, 5_000.0), "FarAway"));
        LandmarkRegistry::from_landmarks(lms)
    }

    fn east_trajectory(step_m: f64, total_m: f64, secs_per_step: i64) -> RawTrajectory {
        let n = (total_m / step_m) as usize;
        RawTrajectory::new(
            (0..=n)
                .map(|i| RawPoint {
                    point: base().destination(90.0, step_m * i as f64),
                    t: Timestamp(secs_per_step * i as i64),
                })
                .collect(),
        )
    }

    #[test]
    fn params_validation_is_fallible() {
        assert!(CalibrationParams::default().validate().is_ok());
        let bad = CalibrationParams { radius_m: 0.0, ..CalibrationParams::default() };
        assert_eq!(
            bad.validate(),
            Err(CalibrationError::InvalidParams("radius_m must be positive and finite"))
        );
        let bad = CalibrationParams { radius_m: f64::NAN, ..CalibrationParams::default() };
        assert!(bad.validate().is_err(), "NaN radius must fail");
        let bad = CalibrationParams { min_spacing_m: -1.0, ..CalibrationParams::default() };
        assert!(bad.validate().is_err());
        let bad = CalibrationParams { tie_margin_m: f64::INFINITY, ..CalibrationParams::default() };
        assert!(bad.validate().is_err());
        // calibrate_view surfaces the same error instead of asserting.
        let raw = east_trajectory(100.0, 2_000.0, 10);
        let registry = registry_along_route();
        let bad = CalibrationParams { radius_m: -5.0, ..CalibrationParams::default() };
        assert!(matches!(calibrate(&raw, &registry, bad), Err(CalibrationError::InvalidParams(_))));
    }

    #[test]
    fn nan_anchor_sorts_last_without_panic() {
        // Regression: the anchor ordering used `partial_cmp(..).unwrap()` and
        // panicked on NaN. total_cmp must keep it total, with the NaN entry
        // deterministically last.
        let a = |id: u32, arc_m: f64, distance_m: f64| Anchor {
            landmark: LandmarkId(id),
            arc_m,
            distance_m,
        };
        let mut anchors =
            vec![a(0, 900.0, 3.0), a(1, f64::NAN, 1.0), a(2, 100.0, 2.0), a(3, 100.0, 1.0)];
        anchors.sort_by(|a, b| {
            a.arc_m
                .total_cmp(&b.arc_m)
                .then(a.distance_m.total_cmp(&b.distance_m))
                .then(a.landmark.cmp(&b.landmark))
        });
        let ids: Vec<u32> = anchors.iter().map(|a| a.landmark.0).collect();
        assert_eq!(ids, [3, 2, 0, 1], "NaN arc must sort last, ties by distance");
    }

    #[test]
    fn picks_up_landmarks_in_order() {
        let reg = registry_along_route();
        let raw = east_trajectory(100.0, 2000.0, 10);
        let sym = calibrate(&raw, &reg, CalibrationParams::default()).unwrap();
        assert_eq!(sym.size(), 5);
        let names: Vec<&str> =
            sym.points().iter().map(|p| reg.get(p.landmark).name.as_str()).collect();
        assert_eq!(names, vec!["L0", "L1", "L2", "L3", "L4"]);
        // Timestamps increase with arc position.
        assert!(sym.points().windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn far_landmark_excluded() {
        let reg = registry_along_route();
        let raw = east_trajectory(100.0, 2000.0, 10);
        let sym = calibrate(&raw, &reg, CalibrationParams::default()).unwrap();
        assert!(sym.points().iter().all(|p| reg.get(p.landmark).name != "FarAway"));
    }

    #[test]
    fn sampling_rate_invariance() {
        // The paper's Fig. 2 motivation: same route, different sampling
        // strategies, same symbolic trajectory.
        let reg = registry_along_route();
        let dense = east_trajectory(25.0, 2000.0, 2);
        let sparse = east_trajectory(250.0, 2000.0, 20);
        let s1 = calibrate(&dense, &reg, CalibrationParams::default()).unwrap();
        let s2 = calibrate(&sparse, &reg, CalibrationParams::default()).unwrap();
        assert_eq!(s1.landmark_seq(), s2.landmark_seq());
    }

    #[test]
    fn timestamps_reflect_travel_speed() {
        let reg = registry_along_route();
        // 100 m per 10 s → 500 m between landmarks ≈ 50 s.
        let raw = east_trajectory(100.0, 2000.0, 10);
        let sym = calibrate(&raw, &reg, CalibrationParams::default()).unwrap();
        let dt = sym.points()[0].t.delta_secs(&sym.points()[1].t);
        assert!((dt - 50).abs() <= 5, "dt = {dt}");
    }

    #[test]
    fn too_few_landmarks_is_an_error() {
        let reg = LandmarkRegistry::from_landmarks(vec![lm(base(), "only")]);
        let raw = east_trajectory(100.0, 1000.0, 10);
        match calibrate(&raw, &reg, CalibrationParams::default()) {
            Err(CalibrationError::TooFewLandmarks(n)) => assert_eq!(n, 1),
            other => panic!("expected TooFewLandmarks, got {other:?}"),
        }
        assert!(calibrate_opt(&raw, &reg, CalibrationParams::default()).is_none());
    }

    #[test]
    fn near_duplicate_anchors_resolved_by_distance() {
        // Two landmarks projecting to nearly the same arc; the closer to the
        // route must win.
        let lms = vec![
            lm(base().destination(0.0, 15.0), "Near"),
            lm(base().destination(0.0, 90.0), "Farther"),
            lm(base().destination(90.0, 1000.0), "End"),
        ];
        let reg = LandmarkRegistry::from_landmarks(lms);
        let raw = east_trajectory(100.0, 1000.0, 10);
        let sym = calibrate(&raw, &reg, CalibrationParams::default()).unwrap();
        let names: Vec<&str> =
            sym.points().iter().map(|p| reg.get(p.landmark).name.as_str()).collect();
        assert_eq!(names, vec!["Near", "End"]);
    }

    #[test]
    fn gps_noise_does_not_change_sequence() {
        let reg = registry_along_route();
        // Deterministic "noise": alternate ±12 m lateral offsets.
        let n = 80;
        let pts: Vec<RawPoint> = (0..=n)
            .map(|i| {
                let along = base().destination(90.0, 25.0 * i as f64);
                let off: f64 = if i % 2 == 0 { 12.0 } else { -12.0 };
                RawPoint {
                    point: along.destination(if off > 0.0 { 0.0 } else { 180.0 }, off.abs()),
                    t: Timestamp(2 * i as i64),
                }
            })
            .collect();
        let noisy = RawTrajectory::new(pts);
        let clean = east_trajectory(25.0, 2000.0, 2);
        let s_noisy = calibrate(&noisy, &reg, CalibrationParams::default()).unwrap();
        let s_clean = calibrate(&clean, &reg, CalibrationParams::default()).unwrap();
        assert_eq!(s_noisy.landmark_seq(), s_clean.landmark_seq());
    }
}
