//! Property-based tests for calibration — above all the paper's Fig. 2
//! motivation: the symbolic trajectory must not depend on how the route was
//! sampled.

use proptest::prelude::*;
use stmaker_calibration::{calibrate, CalibrationParams};
use stmaker_geo::{GeoPoint, Polyline};
use stmaker_poi::{Landmark, LandmarkId, LandmarkKind, LandmarkRegistry};
use stmaker_trajectory::{RawPoint, RawTrajectory, Timestamp};

fn base() -> GeoPoint {
    GeoPoint::new(39.9, 116.4)
}

/// A random Manhattan-style route: axis-aligned legs of 300–1500 m.
fn route(legs: &[(u8, f64)]) -> Polyline {
    let mut pts = vec![base()];
    for (dir, len) in legs {
        let bearing = match dir % 4 {
            0 => 0.0,
            1 => 90.0,
            2 => 90.0, // bias east/north so the route rarely self-crosses
            _ => 0.0,
        };
        let last = *pts.last().unwrap();
        pts.push(last.destination(bearing, *len));
    }
    Polyline::new(pts)
}

/// Landmarks every ~400 m along the route, offset 20 m sideways.
fn registry_for(poly: &Polyline) -> LandmarkRegistry {
    let mut lms = Vec::new();
    let total = poly.length_m();
    let mut arc = 0.0;
    let mut i = 0;
    while arc <= total {
        let p = poly.point_at(arc).destination(45.0, 20.0);
        lms.push(Landmark {
            id: LandmarkId(0),
            point: p,
            name: format!("L{i}"),
            kind: LandmarkKind::TurningPoint,
            significance: 0.3 + 0.05 * (i % 10) as f64,
        });
        arc += 400.0;
        i += 1;
    }
    LandmarkRegistry::from_landmarks(lms)
}

/// Samples the route into a raw trajectory at fixed arc spacing and speed.
fn sample(poly: &Polyline, spacing_m: f64, speed_mps: f64) -> RawTrajectory {
    let rs = poly.resample(spacing_m);
    let mut t = 0.0;
    let mut pts = Vec::new();
    let mut last: Option<GeoPoint> = None;
    for p in rs.points() {
        if let Some(prev) = last {
            t += prev.haversine_m(p) / speed_mps;
        }
        pts.push(RawPoint { point: *p, t: Timestamp(t as i64) });
        last = Some(*p);
    }
    RawTrajectory::new(pts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sampling_rate_invariance(
        legs in prop::collection::vec((0u8..4, 300.0f64..1500.0), 2..6),
        fine in 10.0f64..40.0,
        coarse in 120.0f64..300.0,
        speed in 5.0f64..25.0,
    ) {
        let poly = route(&legs);
        let reg = registry_for(&poly);
        let params = CalibrationParams::default();
        let a = calibrate(&sample(&poly, fine, speed), &reg, params);
        let b = calibrate(&sample(&poly, coarse, speed), &reg, params);
        match (a, b) {
            (Ok(sa), Ok(sb)) => {
                prop_assert_eq!(
                    sa.landmark_seq(),
                    sb.landmark_seq(),
                    "fine ({} m) vs coarse ({} m) sampling disagree",
                    fine,
                    coarse
                );
            }
            (Err(_), Err(_)) => {} // both degenerate: fine
            (a, b) => prop_assert!(false, "one sampling calibrated, the other did not: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn symbolic_timestamps_are_plausible(
        legs in prop::collection::vec((0u8..4, 400.0f64..1200.0), 2..5),
        speed in 5.0f64..25.0,
    ) {
        let poly = route(&legs);
        let reg = registry_for(&poly);
        let raw = sample(&poly, 25.0, speed);
        if let Ok(sym) = calibrate(&raw, &reg, CalibrationParams::default()) {
            // Non-decreasing, inside the raw time span.
            prop_assert!(sym.points().windows(2).all(|w| w[0].t <= w[1].t));
            prop_assert!(sym.points()[0].t >= raw.start().t);
            prop_assert!(sym.points().last().unwrap().t <= raw.end().t);
            // Segment durations consistent with constant speed (±50% for
            // geometry slack).
            for seg in sym.segments() {
                let a = reg.get(seg.from.landmark).point;
                let b = reg.get(seg.to.landmark).point;
                let d = a.haversine_m(&b);
                let expect = d / speed;
                let got = seg.duration_secs() as f64;
                prop_assert!(got >= expect * 0.4 - 5.0 && got <= expect * 2.5 + 5.0,
                    "segment {} s vs expected ~{expect:.0} s over {d:.0} m", got);
            }
        }
    }

    #[test]
    fn anchors_are_within_radius(
        legs in prop::collection::vec((0u8..4, 400.0f64..1200.0), 2..5),
    ) {
        let poly = route(&legs);
        let reg = registry_for(&poly);
        let raw = sample(&poly, 30.0, 12.0);
        let params = CalibrationParams::default();
        if let Ok(sym) = calibrate(&raw, &reg, params) {
            let frame = stmaker_geo::LocalFrame::new(base());
            let traj_poly = raw.polyline();
            for p in sym.points() {
                let lm = reg.get(p.landmark).point;
                let proj = traj_poly.project(&frame, &lm);
                prop_assert!(proj.distance_m <= params.radius_m + 1.0,
                    "anchor {} m off the route", proj.distance_m);
            }
        }
    }
}
