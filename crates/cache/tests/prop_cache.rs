//! Property tests for the sharded CLOCK cache (ISSUE 5 satellite):
//! capacity is a hard bound for any insert sequence, get-after-put is
//! coherent with the most recent put, and concurrent readers only ever
//! observe values that were actually put.

use proptest::prelude::*;
use std::collections::HashMap;
use stmaker_cache::ShardedCache;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Inserting any key sequence never exceeds the effective capacity,
    /// at any intermediate point.
    #[test]
    fn inserts_never_exceed_capacity(
        cap in 0usize..40,
        ops in prop::collection::vec((0u8..32, 0u64..1000), 0..200),
    ) {
        let cache: ShardedCache<u8, u64> = ShardedCache::new(cap);
        prop_assert!(cache.capacity() >= cap.max(1));
        for (k, v) in ops {
            cache.insert(k, v);
            prop_assert!(cache.len() <= cache.capacity());
        }
        let stats = cache.stats();
        prop_assert!(stats.len <= stats.capacity);
    }

    /// A `get` returns either nothing (evicted / never present) or the
    /// value of the most recent `insert` for that key — never a stale or
    /// foreign value.
    #[test]
    fn get_after_put_is_coherent(
        cap in 1usize..24,
        ops in prop::collection::vec((0u8..2, 0u8..16, 0u64..1000), 1..200),
    ) {
        let cache: ShardedCache<u8, u64> = ShardedCache::new(cap);
        let mut model: HashMap<u8, u64> = HashMap::new();
        for (is_put, k, v) in ops {
            if is_put == 1 {
                cache.insert(k, v);
                model.insert(k, v);
            } else if let Some(got) = cache.get(&k) {
                prop_assert_eq!(Some(&got), model.get(&k));
            }
        }
    }

    /// Read-through fills of a pure function always return the function's
    /// value, and residency stays bounded.
    #[test]
    fn read_through_matches_the_pure_function(
        cap in 1usize..24,
        keys in prop::collection::vec(0u8..32, 1..200),
    ) {
        let cache: ShardedCache<u8, u64> = ShardedCache::new(cap);
        let f = |k: u8| u64::from(k).wrapping_mul(2654435761) ^ 0x5bd1;
        for k in keys {
            prop_assert_eq!(cache.get_or_insert_with(&k, || f(k)), f(k));
            prop_assert!(cache.len() <= cache.capacity());
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, stats.hits + stats.misses);
        prop_assert!(stats.misses >= 1);
    }

    /// Concurrent readers racing read-through fills over a shared cache
    /// only ever see values of the pure function being memoized.
    #[test]
    fn concurrent_readers_see_only_put_values(
        cap in 1usize..32,
        per_thread in prop::collection::vec(
            prop::collection::vec(0u8..64, 1..40),
            2..5,
        ),
    ) {
        let cache: ShardedCache<u8, u64> = ShardedCache::new(cap);
        let f = |k: u8| u64::from(k).wrapping_mul(0x9E3779B9) ^ 0xA5A5;
        std::thread::scope(|scope| {
            for keys in &per_thread {
                let cache = &cache;
                scope.spawn(move || {
                    for &k in keys {
                        assert_eq!(cache.get_or_insert_with(&k, || f(k)), f(k));
                        if let Some(v) = cache.get(&k) {
                            assert_eq!(v, f(k));
                        }
                    }
                });
            }
        });
        prop_assert!(cache.len() <= cache.capacity());
    }
}
