//! # stmaker-cache — a std-only sharded, bounded, read-through cache
//!
//! The serving path answers the same popular-route queries over and over:
//! real trajectory workloads are commuter corridors (the paper's Beijing
//! taxi corpus repeats the same landmark pairs constantly), so
//! `Summarizer::summarize` re-derives identical `PR(lᵢ, lⱼ)` routes for
//! every trip. This crate is the memoization substrate:
//!
//! * **[`ShardedCache`]** — a thread-safe bounded map: a fixed
//!   power-of-two number of shards, each a `Mutex` over a
//!   capacity-bounded slot arena with **CLOCK** (second-chance) eviction.
//!   Lookups hash the key once with a fixed-seed FNV-1a hasher — shard
//!   choice and eviction order are a pure function of the access
//!   sequence, never of process-random hash seeds.
//! * **Read-through** — [`ShardedCache::get_or_insert_with`] computes the
//!   value *outside* the shard lock on a miss, so a slow fill (a Dijkstra
//!   over the transfer graph) never blocks readers of other keys in the
//!   same shard longer than a probe.
//! * **[`CacheStats`]** — hit/miss/eviction counters kept in relaxed
//!   atomics beside the shards, snapshot on demand and recordable into a
//!   `stmaker-obs` [`Recorder`] (the shared report schema).
//!
//! ## Determinism
//!
//! Callers memoize **pure** functions: the cached value for a key is
//! always the value the underlying computation would produce. Eviction
//! therefore affects *latency only* — a cached and an uncached run return
//! byte-identical results at any thread count, which is the contract the
//! summarizer's `--route-cache` flag rides on (see DESIGN.md §12).
//! Under concurrency the per-shard interleaving (and hence hit counts)
//! may vary; cache *contents* remain a subset of the pure function's
//! graph, so results never do.
//!
//! Std-only by design: the workspace builds with no crates.io access.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use stmaker_obs::Recorder;

/// Upper bound on the shard count (a power of two). Small capacities use
/// fewer shards so `capacity()` never balloons past the request.
const MAX_SHARDS: usize = 16;

/// Fixed-seed FNV-1a, so shard assignment and probe behaviour are
/// reproducible across processes (std's `RandomState` reseeds per map,
/// which would make hit/eviction patterns unrepeatable run to run).
#[derive(Default)]
pub struct Fnv1a {
    state: u64,
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        if self.state == 0 {
            self.state = FNV_OFFSET;
        }
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }
}

type FixedState = BuildHasherDefault<Fnv1a>;

/// A point-in-time snapshot of a cache's counters and occupancy.
///
/// Counters are cumulative since construction; [`CacheStats::since`]
/// subtracts an earlier snapshot to get per-window deltas (what the
/// summarizer reports per batch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the underlying computation.
    pub misses: u64,
    /// Entries displaced by the CLOCK hand to make room.
    pub evictions: u64,
    /// Entries resident right now.
    pub len: usize,
    /// Maximum resident entries (requested capacity rounded up to a
    /// multiple of the shard count).
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache; `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.saturating_add(self.misses);
        if total == 0 {
            0.0
        } else {
            // cast-ok: counter magnitudes, precise enough for a rate
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas relative to an `earlier` snapshot of the same cache
    /// (saturating, so a stale snapshot can never underflow). `len` and
    /// `capacity` stay absolute — they are occupancy, not counters.
    #[must_use]
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            len: self.len,
            capacity: self.capacity,
        }
    }

    /// Sums two snapshots (e.g. the route cache and the hop-value cache of
    /// one `CachedRoutes`) into a combined view.
    #[must_use]
    pub fn combined(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_add(other.hits),
            misses: self.misses.saturating_add(other.misses),
            evictions: self.evictions.saturating_add(other.evictions),
            len: self.len.saturating_add(other.len),
            capacity: self.capacity.saturating_add(other.capacity),
        }
    }

    /// Emits the snapshot into a recorder under `prefix`: counters
    /// `{prefix}.hits` / `{prefix}.misses` / `{prefix}.evictions` plus
    /// `{prefix}.capacity` and `{prefix}.len` gauges — the obs-compatible
    /// form every report consumer (CLI `--metrics-json`, benches,
    /// `xtask obs-schema`) already understands.
    pub fn record_into(&self, obs: &Recorder, prefix: &str) {
        obs.add(&format!("{prefix}.hits"), self.hits);
        obs.add(&format!("{prefix}.misses"), self.misses);
        obs.add(&format!("{prefix}.evictions"), self.evictions);
        // cast-ok: entry counts, exact well below 2^53
        obs.gauge(&format!("{prefix}.capacity"), self.capacity as f64);
        obs.gauge(&format!("{prefix}.len"), self.len as f64); // cast-ok: entry count
    }
}

/// One resident entry with its CLOCK reference bit.
struct Slot<K, V> {
    key: K,
    value: V,
    referenced: bool,
}

/// One shard: a slot arena indexed by key, bounded at `cap` entries, with
/// a CLOCK hand for eviction.
struct Shard<K, V> {
    slots: Vec<Slot<K, V>>,
    index: HashMap<K, usize, FixedState>,
    hand: usize,
    cap: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> Shard<K, V> {
    fn new(cap: usize) -> Self {
        Self { slots: Vec::with_capacity(cap.min(64)), index: HashMap::default(), hand: 0, cap }
    }

    /// Probe: clone the value and set the reference bit on a hit.
    fn get(&mut self, key: &K) -> Option<V> {
        let i = *self.index.get(key)?;
        let slot = self.slots.get_mut(i)?;
        slot.referenced = true;
        Some(slot.value.clone())
    }

    /// Insert or replace; returns `true` when an unrelated entry was
    /// evicted to make room. CLOCK: sweep the hand, giving referenced
    /// slots a second chance (clearing the bit), and displace the first
    /// unreferenced slot. Terminates within two sweeps — one sweep clears
    /// every bit, the next finds a victim.
    fn insert(&mut self, key: K, value: V) -> bool {
        if let Some(&i) = self.index.get(&key) {
            if let Some(slot) = self.slots.get_mut(i) {
                slot.value = value;
                slot.referenced = true;
            }
            return false;
        }
        if self.slots.len() < self.cap {
            self.index.insert(key.clone(), self.slots.len());
            self.slots.push(Slot { key, value, referenced: true });
            return false;
        }
        loop {
            if self.hand >= self.slots.len() {
                self.hand = 0;
            }
            let Some(slot) = self.slots.get_mut(self.hand) else {
                // cap >= 1 keeps the arena non-empty once full; defensive
                // for a zero-capacity shard, where the entry is simply
                // not cached.
                return false;
            };
            if slot.referenced {
                slot.referenced = false;
                self.hand += 1;
            } else {
                let old = std::mem::replace(&mut slot.key, key.clone());
                slot.value = value;
                slot.referenced = true;
                self.index.remove(&old);
                self.index.insert(key, self.hand);
                self.hand += 1;
                return true;
            }
        }
    }
}

/// A sharded, thread-safe, bounded read-through cache.
///
/// See the [crate docs](crate) for the design; in short: fixed
/// power-of-two shard count, per-shard `Mutex` over a CLOCK-evicting slot
/// arena, fills computed outside the lock, counters in relaxed atomics.
pub struct ShardedCache<K, V> {
    shards: Box<[Mutex<Shard<K, V>>]>,
    mask: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedCache<K, V> {
    /// A cache holding at most `capacity` entries (clamped to ≥ 1 and
    /// rounded up to a multiple of the shard count — read back the
    /// effective bound via [`ShardedCache::capacity`]). The shard count is
    /// the smallest power of two ≥ `capacity`, capped at 16.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let n_shards = capacity.next_power_of_two().min(MAX_SHARDS);
        let per_shard = capacity.div_ceil(n_shards);
        let shards = (0..n_shards).map(|_| Mutex::new(Shard::new(per_shard))).collect();
        Self {
            shards,
            mask: n_shards - 1,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = Fnv1a::default();
        key.hash(&mut h);
        // mask < shards.len() by construction, so the index is in range.
        &self.shards[(h.finish() as usize) & self.mask] // cast-ok: hash truncation is intentional
    }

    /// Locks a shard, absorbing poisoning: a panic elsewhere only means a
    /// fill was abandoned — resident entries are still coherent values of
    /// the pure function being memoized.
    fn lock<'a>(m: &'a Mutex<Shard<K, V>>) -> MutexGuard<'a, Shard<K, V>> {
        match m.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The value for `key`, cloning it out of the cache (counted as a hit
    /// or miss).
    pub fn get(&self, key: &K) -> Option<V> {
        let got = Self::lock(self.shard_for(key)).get(key);
        match got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Inserts (or replaces) an entry, evicting per CLOCK if the shard is
    /// full. Not counted as a lookup.
    pub fn insert(&self, key: K, value: V) {
        if Self::lock(self.shard_for(&key)).insert(key, value) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Read-through lookup: on a hit, clones the cached value; on a miss,
    /// computes `make()` **outside** the shard lock, inserts the result,
    /// and returns it. `make` must be a pure function of `key` — two
    /// racing fills may both run, and either result may be the one that
    /// stays resident, which is only coherent when both are equal.
    pub fn get_or_insert_with(&self, key: &K, make: impl FnOnce() -> V) -> V {
        if let Some(v) = Self::lock(self.shard_for(key)).get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = make();
        if Self::lock(self.shard_for(key)).insert(key.clone(), value.clone()) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// Entries resident across all shards (locks each shard briefly).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).slots.len()).sum()
    }

    /// Whether no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The effective capacity bound (requested capacity rounded up to a
    /// multiple of the shard count).
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).cap).sum()
    }

    /// Number of shards (a power of two, at most 16).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Snapshot of counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.len(),
            capacity: self.capacity(),
        }
    }
}

impl<K, V> std::fmt::Debug for ShardedCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .field("evictions", &self.evictions.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_after_put_round_trips() {
        let c: ShardedCache<u32, String> = ShardedCache::new(8);
        assert_eq!(c.get(&1), None);
        c.insert(1, "one".to_owned());
        assert_eq!(c.get(&1), Some("one".to_owned()));
        c.insert(1, "uno".to_owned());
        assert_eq!(c.get(&1), Some("uno".to_owned()));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_is_rounded_up_and_clamped() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(0);
        assert_eq!(c.capacity(), 1);
        assert_eq!(c.shard_count(), 1);
        let c: ShardedCache<u32, u32> = ShardedCache::new(5);
        assert_eq!(c.shard_count(), 8);
        assert_eq!(c.capacity(), 8);
        let c: ShardedCache<u32, u32> = ShardedCache::new(1000);
        assert_eq!(c.shard_count(), 16);
        assert!(c.capacity() >= 1000);
        assert!(c.capacity() < 1000 + 16);
    }

    #[test]
    fn never_exceeds_capacity_and_counts_evictions() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(16);
        for k in 0..200 {
            c.insert(k, k * 2);
            assert!(c.len() <= c.capacity(), "len {} > cap {}", c.len(), c.capacity());
        }
        let s = c.stats();
        assert_eq!(s.len, c.capacity());
        assert!(s.evictions >= 200 - s.capacity as u64);
    }

    #[test]
    fn clock_gives_recently_used_entries_a_second_chance() {
        // Single shard of capacity 1... too degenerate; use capacity 2 in
        // one shard by constructing via new(2) → 2 shards of 1. Instead
        // exercise the policy through a shard directly.
        let mut shard: Shard<u32, u32> = Shard::new(2);
        assert!(!shard.insert(1, 10));
        assert!(!shard.insert(2, 20));
        // Touch key 1 so its reference bit is set, then overflow: the
        // victim must be key 2 (bit cleared first sweep, evicted second
        // probe) — key 1 survives its second chance.
        assert_eq!(shard.get(&1), Some(10));
        // Fresh inserts carry a set bit too, so the first sweep clears
        // 1 and 2, and the second displaces the first unreferenced slot
        // deterministically.
        assert!(shard.insert(3, 30));
        assert_eq!(shard.slots.len(), 2);
        assert_eq!(shard.index.len(), 2);
        assert!(shard.get(&3).is_some());
    }

    #[test]
    fn eviction_is_deterministic_for_a_fixed_sequence() {
        let run = || {
            let c: ShardedCache<u32, u32> = ShardedCache::new(8);
            for k in 0..50 {
                let _ = c.get_or_insert_with(&(k % 13), || k);
            }
            let mut resident: Vec<(u32, Option<u32>)> = (0..13).map(|k| (k, c.get(&k))).collect();
            resident.sort();
            (resident, c.stats().evictions)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn read_through_counts_hits_and_misses() {
        let c: ShardedCache<u32, u64> = ShardedCache::new(32);
        let f = |k: u32| u64::from(k) * 31 + 7;
        for k in 0..10 {
            assert_eq!(c.get_or_insert_with(&k, || f(k)), f(k));
        }
        for k in 0..10 {
            assert_eq!(c.get_or_insert_with(&k, || unreachable!("must be cached")), f(k));
        }
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (10, 10, 0));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_since_and_combined() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(4);
        let _ = c.get_or_insert_with(&1, || 1);
        let before = c.stats();
        let _ = c.get_or_insert_with(&1, || 1);
        let _ = c.get_or_insert_with(&2, || 2);
        let d = c.stats().since(&before);
        assert_eq!((d.hits, d.misses), (1, 1));
        let both = d.combined(&d);
        assert_eq!((both.hits, both.misses), (2, 2));
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn stats_record_into_emits_the_shared_schema() {
        let obs = Recorder::enabled();
        let c: ShardedCache<u32, u32> = ShardedCache::new(4);
        let _ = c.get_or_insert_with(&1, || 1);
        let _ = c.get_or_insert_with(&1, || 1);
        c.stats().record_into(&obs, "cache");
        let report = obs.report();
        assert_eq!(report.counters.get("cache.hits"), Some(&1));
        assert_eq!(report.counters.get("cache.misses"), Some(&1));
        assert_eq!(report.counters.get("cache.evictions"), Some(&0));
        assert_eq!(report.gauges.get("cache.capacity"), Some(&4.0));
        assert_eq!(report.gauges.get("cache.len"), Some(&1.0));
    }

    #[test]
    fn concurrent_readers_see_only_put_values() {
        let c: ShardedCache<u32, u64> = ShardedCache::new(64);
        let f = |k: u32| u64::from(k).wrapping_mul(0x9E37_79B9) ^ 0xA5A5;
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..500u32 {
                        let k = (i.wrapping_mul(t + 1)) % 97;
                        assert_eq!(c.get_or_insert_with(&k, || f(k)), f(k));
                        if let Some(v) = c.get(&k) {
                            assert_eq!(v, f(k));
                        }
                    }
                });
            }
        });
        assert!(c.len() <= c.capacity());
    }

    #[test]
    fn concurrent_snapshot_deltas_never_wrap() {
        // Serving-workload regression: `since` deltas are taken while
        // worker threads race increments on the relaxed counters. The
        // per-field loads of a snapshot are not atomic as a group, so a
        // snapshot pair can straddle in-flight increments — deltas must
        // saturate to small numbers, never wrap to ~u64::MAX. Also pins
        // the stale-snapshot direction: `earlier.since(&later)` is zeros.
        use std::sync::atomic::{AtomicBool, Ordering};
        let c: ShardedCache<u64, u64> = ShardedCache::new(64);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let (c, stop) = (&c, &stop);
                s.spawn(move || {
                    let mut k = t;
                    while !stop.load(Ordering::Relaxed) {
                        // Mixed hits, misses, and evictions (key space 4x
                        // the capacity).
                        let _ = c.get_or_insert_with(&(k % 256), || k);
                        k = k.wrapping_add(t * 2 + 1);
                    }
                });
            }
            let mut prev = c.stats();
            for _ in 0..20_000 {
                let now = c.stats();
                let d = now.since(&prev);
                for (what, v) in
                    [("hits", d.hits), ("misses", d.misses), ("evictions", d.evictions)]
                {
                    assert!(v < u64::MAX / 2, "wrapped-huge {what} delta: {v}");
                }
                // The deliberately stale direction saturates to zero.
                let stale = prev.since(&now);
                assert_eq!((stale.hits, stale.misses, stale.evictions), (0, 0, 0));
                prev = now;
            }
            stop.store(true, Ordering::Relaxed);
        });
    }
}
