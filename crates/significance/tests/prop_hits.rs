//! Property-based tests for the HITS significance computation.

use proptest::prelude::*;
use stmaker_significance::{compute_significance, HitsConfig, Visit};

fn visits_strategy(n_landmarks: u32) -> impl Strategy<Value = Vec<Visit>> {
    prop::collection::vec((0u32..20, 0u32..n_landmarks), 0..200)
        .prop_map(|pairs| pairs.into_iter().map(|(u, l)| Visit::new(u, l)).collect())
}

proptest! {
    #[test]
    fn significance_bounded_and_deterministic(visits in visits_strategy(15)) {
        let a = compute_significance(15, &visits, HitsConfig::default());
        let b = compute_significance(15, &visits, HitsConfig::default());
        prop_assert_eq!(&a.significance, &b.significance);
        prop_assert!(a.significance.iter().all(|s| (0.0..=1.0).contains(s)));
        prop_assert_eq!(a.significance.len(), 15);
    }

    #[test]
    fn unvisited_landmarks_score_exactly_zero(visits in visits_strategy(10)) {
        // Landmarks 10..15 never appear in the strategy's range.
        let r = compute_significance(15, &visits, HitsConfig::default());
        for l in 10..15 {
            prop_assert_eq!(r.significance[l], 0.0);
        }
    }

    #[test]
    fn some_visited_landmark_attains_the_maximum(visits in visits_strategy(12)) {
        prop_assume!(!visits.is_empty());
        let r = compute_significance(12, &visits, HitsConfig::default());
        let max = r.significance.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!((max - 1.0).abs() < 1e-9, "min-max normalization must attain 1, got {max}");
    }

    #[test]
    fn visit_order_is_irrelevant(visits in visits_strategy(10)) {
        let mut shuffled = visits.clone();
        shuffled.reverse();
        let a = compute_significance(10, &visits, HitsConfig::default());
        let b = compute_significance(10, &shuffled, HitsConfig::default());
        for (x, y) in a.significance.iter().zip(&b.significance) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }
}
