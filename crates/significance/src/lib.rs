//! Landmark significance via a HITS-like algorithm.
//!
//! Sec. IV-B of the paper: "To measure the familiarity of landmarks … we
//! utilize the online check-in records from a popular location-based social
//! network (LBSN) and trajectories of cars in the target city … We leverage a
//! HITS-like algorithm \[41\] to infer the significance of landmarks, by
//! modeling the travellers as authorities, landmarks as hubs, and
//! check-ins/visits as hyperlinks."
//!
//! [`compute_significance`] runs weighted HITS power iteration over the
//! traveller–landmark bipartite visit graph and returns per-landmark
//! significance scores min–max normalized into `[0, 1]`, ready for
//! [`stmaker_poi::LandmarkRegistry::set_significances`].

pub mod hits;
pub mod visits;

pub use hits::{compute_significance, HitsConfig, HitsResult};
pub use visits::{UserId, Visit};
