//! Weighted HITS power iteration on the visit graph.

use crate::visits::Visit;
use std::collections::{BTreeMap, HashMap};

/// Convergence controls for the power iteration.
#[derive(Debug, Clone, Copy)]
pub struct HitsConfig {
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Stop when the L2 change of the hub vector drops below this.
    pub tolerance: f64,
}

impl Default for HitsConfig {
    fn default() -> Self {
        Self { max_iters: 100, tolerance: 1e-9 }
    }
}

/// Output of [`compute_significance`].
#[derive(Debug, Clone)]
pub struct HitsResult {
    /// Per-landmark significance, min–max normalized into `[0, 1]`.
    /// Landmarks with no visits score 0 — as does the least-visited
    /// landmark, which min–max maps to the same floor; callers that must
    /// distinguish the two should consult `hub_scores`.
    pub significance: Vec<f64>,
    /// Raw (L2-normalized) hub scores before min–max normalization.
    pub hub_scores: Vec<f64>,
    /// Iterations actually run.
    pub iterations: usize,
}

/// Runs the HITS-like significance computation of Sec. IV-B.
///
/// Travellers are authorities, landmarks are hubs, visits are hyperlinks.
/// Repeated visits by the same traveller to the same landmark strengthen the
/// link (edge weights are visit counts). The returned significance vector is
/// indexed by `LandmarkId` and normalized to `[0, 1]`.
pub fn compute_significance(n_landmarks: usize, visits: &[Visit], cfg: HitsConfig) -> HitsResult {
    // Aggregate multi-edges into weights and compact user ids.
    // `weights` is a BTreeMap so adjacency construction (and therefore
    // floating-point summation order) is deterministic across runs.
    let mut user_index: HashMap<u32, usize> = HashMap::new();
    let mut weights: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for v in visits {
        let lm = v.landmark.0 as usize;
        assert!(lm < n_landmarks, "visit references landmark {} out of range", lm);
        let next = user_index.len();
        let u = *user_index.entry(v.user.0).or_insert(next);
        *weights.entry((u, lm)).or_insert(0.0) += 1.0;
    }
    let n_users = user_index.len();

    if n_users == 0 || n_landmarks == 0 {
        return HitsResult {
            significance: vec![0.0; n_landmarks],
            hub_scores: vec![0.0; n_landmarks],
            iterations: 0,
        };
    }

    // Adjacency in both directions for fast sweeps.
    let mut by_user: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_users];
    let mut by_landmark: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_landmarks];
    for (&(u, l), &w) in &weights {
        by_user[u].push((l, w));
        by_landmark[l].push((u, w));
    }

    let mut auth = vec![1.0f64; n_users];
    let mut hub = vec![1.0f64; n_landmarks];
    let mut iterations = 0;

    for it in 0..cfg.max_iters {
        iterations = it + 1;
        // a(u) = Σ_l h(l) · w(u,l)
        for (u, links) in by_user.iter().enumerate() {
            auth[u] = links.iter().map(|(l, w)| hub[*l] * w).sum();
        }
        l2_normalize(&mut auth);
        // h(l) = Σ_u a(u) · w(u,l)
        let mut new_hub = vec![0.0f64; n_landmarks];
        for (l, links) in by_landmark.iter().enumerate() {
            new_hub[l] = links.iter().map(|(u, w)| auth[*u] * w).sum();
        }
        l2_normalize(&mut new_hub);
        let delta: f64 = new_hub.iter().zip(&hub).map(|(a, b)| (a - b).powi(2)).sum::<f64>().sqrt();
        hub = new_hub;
        if delta < cfg.tolerance {
            break;
        }
    }

    // Min–max normalize over visited landmarks; unvisited stay at exactly 0.
    let visited_scores: Vec<f64> =
        (0..n_landmarks).filter(|l| !by_landmark[*l].is_empty()).map(|l| hub[l]).collect();
    let (lo, hi) = visited_scores
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &s| (lo.min(s), hi.max(s)));
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let significance = (0..n_landmarks)
        .map(|l| {
            if by_landmark[l].is_empty() {
                0.0
            } else if hi == lo {
                1.0 // every visited landmark equally significant
            } else {
                (hub[l] - lo) / span
            }
        })
        .collect();

    HitsResult { significance, hub_scores: hub, iterations }
}

fn l2_normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visits::Visit;

    #[test]
    fn hub_landmark_dominates() {
        // Landmark 0 is visited by 10 users; landmarks 1..=3 by one user each.
        let mut visits = Vec::new();
        for u in 0..10 {
            visits.push(Visit::new(u, 0));
        }
        visits.push(Visit::new(0, 1));
        visits.push(Visit::new(1, 2));
        visits.push(Visit::new(2, 3));
        let r = compute_significance(4, &visits, HitsConfig::default());
        assert_eq!(r.significance[0], 1.0);
        for l in 1..4 {
            assert!(r.significance[l] < 0.5, "l{l} = {}", r.significance[l]);
        }
    }

    #[test]
    fn unvisited_landmarks_score_zero() {
        let visits = vec![Visit::new(0, 0), Visit::new(1, 0)];
        let r = compute_significance(3, &visits, HitsConfig::default());
        assert_eq!(r.significance[1], 0.0);
        assert_eq!(r.significance[2], 0.0);
        assert_eq!(r.significance[0], 1.0);
    }

    #[test]
    fn repeat_visits_strengthen_links() {
        // Same user count, but landmark 1 gets 5 visits from each user.
        let mut visits = Vec::new();
        for u in 0..4 {
            visits.push(Visit::new(u, 0));
            for _ in 0..5 {
                visits.push(Visit::new(u, 1));
            }
        }
        let r = compute_significance(2, &visits, HitsConfig::default());
        assert!(r.significance[1] > r.significance[0]);
    }

    #[test]
    fn empty_inputs() {
        let r = compute_significance(5, &[], HitsConfig::default());
        assert_eq!(r.significance, vec![0.0; 5]);
        let r = compute_significance(0, &[], HitsConfig::default());
        assert!(r.significance.is_empty());
    }

    #[test]
    fn uniform_graph_gives_uniform_scores() {
        // Every user visits every landmark once: all equally significant.
        let mut visits = Vec::new();
        for u in 0..3 {
            for l in 0..4 {
                visits.push(Visit::new(u, l));
            }
        }
        let r = compute_significance(4, &visits, HitsConfig::default());
        assert!(r.significance.iter().all(|s| (*s - 1.0).abs() < 1e-12), "{:?}", r.significance);
    }

    #[test]
    fn converges_quickly_on_small_graphs() {
        let visits = vec![Visit::new(0, 0), Visit::new(0, 1), Visit::new(1, 1)];
        let r = compute_significance(2, &visits, HitsConfig::default());
        assert!(r.iterations < 100, "took {} iterations", r.iterations);
    }

    #[test]
    fn deterministic() {
        let visits: Vec<Visit> = (0..50).map(|i| Visit::new(i % 7, (i * i) % 11)).collect();
        let a = compute_significance(11, &visits, HitsConfig::default());
        let b = compute_significance(11, &visits, HitsConfig::default());
        assert_eq!(a.significance, b.significance);
    }

    #[test]
    fn scores_bounded_in_unit_interval() {
        let visits: Vec<Visit> = (0..200).map(|i| Visit::new(i % 13, (i * 3) % 17)).collect();
        let r = compute_significance(17, &visits, HitsConfig::default());
        assert!(r.significance.iter().all(|s| (0.0..=1.0).contains(s)));
        // Extremes attained.
        assert!(r.significance.contains(&1.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn visit_out_of_range_panics() {
        compute_significance(2, &[Visit::new(0, 5)], HitsConfig::default());
    }
}
