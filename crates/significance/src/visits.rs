//! The traveller–landmark visit model (check-ins and trajectory visits).

use serde::{Deserialize, Serialize};
use stmaker_poi::LandmarkId;

/// A traveller: an LBSN user or a tracked vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub u32);

/// One hyperlink of the HITS graph: traveller `user` visited (checked in at,
/// or drove past) landmark `landmark`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Visit {
    pub user: UserId,
    pub landmark: LandmarkId,
}

impl Visit {
    /// Convenience constructor.
    pub fn new(user: u32, landmark: u32) -> Self {
        Self { user: UserId(user), landmark: LandmarkId(landmark) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_wraps_ids() {
        let v = Visit::new(3, 9);
        assert_eq!(v.user, UserId(3));
        assert_eq!(v.landmark, LandmarkId(9));
    }
}
