//! Interchange formats for trajectories and summaries.
//!
//! The paper's third benefit of summarization (Sec. I): "trajectories
//! collected from different sources may have different formats and schema,
//! but they can all be translated to texts with similar style." This crate
//! supplies the format layer a deployment needs to get trajectories *in*
//! and summaries *out*:
//!
//! * [`csv`] — the paper's Table I representation: `latitude, longitude,
//!   timestamp` rows, accepting both Unix seconds and the paper's
//!   `YYYYMMDD HH:MM:SS` datetime stamps;
//! * [`jsonl`] — one JSON sample per line, the common streaming layout;
//! * [`geojson`] — export trajectories as `LineString` features and
//!   summaries as per-partition features with their sentences as
//!   properties, ready for any web map.

pub mod csv;
pub mod geojson;
pub mod jsonl;
pub mod stc;

pub use csv::{
    read_raw_points_csv, read_raw_points_csv_from, read_trajectory_csv, read_trajectory_csv_from,
    write_trajectory_csv, write_trajectory_csv_to,
};
pub use geojson::{summary_to_geojson, trajectory_to_geojson};
pub use jsonl::{
    read_raw_points_jsonl, read_raw_points_jsonl_from, read_trajectory_jsonl,
    read_trajectory_jsonl_from, write_trajectory_jsonl, write_trajectory_jsonl_to,
};
pub use stc::{
    is_stc, read_model_file, read_model_file_as, read_model_stc, read_raw_trips_stc,
    read_trips_stc, write_model_file, write_model_stc, write_point_runs_stc, write_trips_stc,
    ModelFormat, StcError, StcReadError,
};

/// A parse failure, with 1-based line number for operator-friendly messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FormatError {}

impl FormatError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        Self { line, message: message.into() }
    }
}
