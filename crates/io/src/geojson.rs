//! GeoJSON export: trajectories as `LineString`s, summaries as annotated
//! per-partition features, ready for any web map (the natural delivery
//! format for the paper's STMaker demo UI, Fig. 7).

use serde_json::{json, Value};
use stmaker::Summary;
use stmaker_poi::LandmarkRegistry;
use stmaker_trajectory::RawTrajectory;

/// One GeoJSON `Feature` with the trajectory as a `LineString` and basic
/// stats as properties.
pub fn trajectory_to_geojson(traj: &RawTrajectory) -> Value {
    let coords: Vec<Value> =
        traj.points().iter().map(|p| json!([p.point.lon, p.point.lat])).collect();
    json!({
        "type": "Feature",
        "geometry": { "type": "LineString", "coordinates": coords },
        "properties": {
            "samples": traj.len(),
            "length_m": traj.length_m().round(),
            "duration_s": traj.duration_secs(),
            "start_t": traj.start().t.0,
            "end_t": traj.end().t.0,
        }
    })
}

/// A `FeatureCollection`: one `LineString` per partition (straight landmark
/// chords — the symbolic view), carrying the partition's sentence, endpoint
/// names and selected feature keys as properties, plus `Point` features for
/// the partition boundary landmarks.
pub fn summary_to_geojson(summary: &Summary, registry: &LandmarkRegistry) -> Value {
    let mut features = Vec::new();
    for (i, p) in summary.partitions.iter().enumerate() {
        let a = registry.get(p.from).point;
        let b = registry.get(p.to).point;
        features.push(json!({
            "type": "Feature",
            "geometry": {
                "type": "LineString",
                "coordinates": [[a.lon, a.lat], [b.lon, b.lat]],
            },
            "properties": {
                "partition": i,
                "sentence": p.sentence,
                "from": p.from_name,
                "to": p.to_name,
                "features": p.selected.iter().map(|s| s.key.clone()).collect::<Vec<_>>(),
            }
        }));
    }
    // Boundary landmarks as points (deduplicated chain: from of each
    // partition plus the final destination).
    let mut boundary = Vec::new();
    for p in &summary.partitions {
        boundary.push((p.from, p.from_name.clone()));
    }
    if let Some(last) = summary.partitions.last() {
        boundary.push((last.to, last.to_name.clone()));
    }
    for (lm, name) in boundary {
        let pt = registry.get(lm).point;
        features.push(json!({
            "type": "Feature",
            "geometry": { "type": "Point", "coordinates": [pt.lon, pt.lat] },
            "properties": { "name": name, "significance": registry.get(lm).significance },
        }));
    }
    json!({
        "type": "FeatureCollection",
        "properties": { "summary": summary.text },
        "features": features,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmaker::{PartitionSpan, PartitionSummary};
    use stmaker_geo::GeoPoint;
    use stmaker_poi::{Landmark, LandmarkId, LandmarkKind};
    use stmaker_trajectory::{RawPoint, Timestamp};

    fn registry() -> LandmarkRegistry {
        let lms = (0..3)
            .map(|i| Landmark {
                id: LandmarkId(i),
                point: GeoPoint::new(39.9 + 0.01 * i as f64, 116.4),
                name: format!("L{i}"),
                kind: LandmarkKind::TurningPoint,
                significance: 0.5,
            })
            .collect();
        LandmarkRegistry::from_landmarks(lms)
    }

    fn summary() -> Summary {
        let part = |i: u32, s: &str| PartitionSummary {
            span: PartitionSpan { seg_start: i as usize, seg_end: i as usize },
            from: LandmarkId(i),
            to: LandmarkId(i + 1),
            from_name: format!("L{i}"),
            to_name: format!("L{}", i + 1),
            selected: vec![],
            sentence: s.to_owned(),
        };
        Summary {
            text: "A. B.".into(),
            partitions: vec![part(0, "A."), part(1, "B.")],
            symbolic_len: 3,
            potential: 0.0,
        }
    }

    #[test]
    fn trajectory_feature_is_valid_geojson_shape() {
        let traj = RawTrajectory::new(vec![
            RawPoint { point: GeoPoint::new(39.9, 116.4), t: Timestamp(0) },
            RawPoint { point: GeoPoint::new(39.91, 116.41), t: Timestamp(60) },
        ]);
        let v = trajectory_to_geojson(&traj);
        assert_eq!(v["type"], "Feature");
        assert_eq!(v["geometry"]["type"], "LineString");
        let coords = v["geometry"]["coordinates"].as_array().unwrap();
        assert_eq!(coords.len(), 2);
        // GeoJSON is lon-first.
        assert_eq!(coords[0][0], 116.4);
        assert_eq!(coords[0][1], 39.9);
        assert_eq!(v["properties"]["duration_s"], 60);
    }

    #[test]
    fn summary_collection_has_lines_and_boundary_points() {
        let v = summary_to_geojson(&summary(), &registry());
        assert_eq!(v["type"], "FeatureCollection");
        assert_eq!(v["properties"]["summary"], "A. B.");
        let feats = v["features"].as_array().unwrap();
        // 2 partition lines + 3 boundary points.
        assert_eq!(feats.len(), 5);
        let lines = feats.iter().filter(|f| f["geometry"]["type"] == "LineString").count();
        let points = feats.iter().filter(|f| f["geometry"]["type"] == "Point").count();
        assert_eq!(lines, 2);
        assert_eq!(points, 3);
        assert_eq!(feats[0]["properties"]["sentence"], "A.");
    }
}
