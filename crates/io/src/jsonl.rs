//! JSON-lines trajectories: one sample object per line.
//!
//! ```text
//! {"lat": 39.9383, "lon": 116.339, "t": 1383383876}
//! {"lat": 39.9382, "lon": 116.337, "t": 1383383882}
//! ```

use crate::FormatError;
use serde::{Deserialize, Serialize};
use stmaker_geo::GeoPoint;
use stmaker_trajectory::{RawPoint, RawTrajectory, Timestamp};

#[derive(Serialize, Deserialize)]
struct Sample {
    lat: f64,
    lon: f64,
    t: i64,
}

/// Parses a trajectory from JSON-lines text.
pub fn read_trajectory_jsonl(text: &str) -> Result<RawTrajectory, FormatError> {
    let mut points = Vec::new();
    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        let s: Sample = serde_json::from_str(line)
            .map_err(|e| FormatError::new(line_no, format!("bad JSON sample: {e}")))?;
        if !(-90.0..=90.0).contains(&s.lat) || !(-180.0..=180.0).contains(&s.lon) {
            return Err(FormatError::new(
                line_no,
                format!("coordinates out of range: {}, {}", s.lat, s.lon),
            ));
        }
        points.push(RawPoint { point: GeoPoint::new(s.lat, s.lon), t: Timestamp(s.t) });
    }
    if points.len() < 2 {
        return Err(FormatError::new(
            text.lines().count(),
            format!("a trajectory needs at least 2 samples, got {}", points.len()),
        ));
    }
    if !points.windows(2).all(|w| w[0].t <= w[1].t) {
        return Err(FormatError::new(0, "timestamps must be non-decreasing".to_owned()));
    }
    Ok(RawTrajectory::new(points))
}

/// Serializes a trajectory to JSON-lines.
pub fn write_trajectory_jsonl(traj: &RawTrajectory) -> String {
    let mut out = String::new();
    for p in traj.points() {
        let s = Sample { lat: p.point.lat, lon: p.point.lon, t: p.t.0 };
        out.push_str(&serde_json::to_string(&s).expect("plain struct serializes"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let text =
            "{\"lat\":39.9,\"lon\":116.3,\"t\":0}\n{\"lat\":39.91,\"lon\":116.31,\"t\":10}\n";
        let traj = read_trajectory_jsonl(text).unwrap();
        assert_eq!(traj.len(), 2);
        let back = write_trajectory_jsonl(&traj);
        assert_eq!(read_trajectory_jsonl(&back).unwrap(), traj);
    }

    #[test]
    fn blank_lines_skipped() {
        let text =
            "{\"lat\":39.9,\"lon\":116.3,\"t\":0}\n\n{\"lat\":39.91,\"lon\":116.31,\"t\":10}\n";
        assert_eq!(read_trajectory_jsonl(text).unwrap().len(), 2);
    }

    #[test]
    fn errors_with_line_numbers() {
        let text = "{\"lat\":39.9,\"lon\":116.3,\"t\":0}\nnot json\n";
        let e = read_trajectory_jsonl(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bad JSON"));
    }

    #[test]
    fn rejects_decreasing_time_and_bad_coords() {
        let t = "{\"lat\":39.9,\"lon\":116.3,\"t\":10}\n{\"lat\":39.9,\"lon\":116.3,\"t\":0}\n";
        assert!(read_trajectory_jsonl(t).is_err());
        let t = "{\"lat\":239.9,\"lon\":116.3,\"t\":0}\n{\"lat\":39.9,\"lon\":116.3,\"t\":1}\n";
        assert!(read_trajectory_jsonl(t).is_err());
    }
}
