//! JSON-lines trajectories: one sample object per line.
//!
//! ```text
//! {"lat": 39.9383, "lon": 116.339, "t": 1383383876}
//! {"lat": 39.9382, "lon": 116.337, "t": 1383383882}
//! ```

use std::io::{BufRead, Write};

use crate::FormatError;
use serde::{Deserialize, Serialize};
use stmaker_geo::GeoPoint;
use stmaker_trajectory::{RawPoint, RawTrajectory, Timestamp};

#[derive(Serialize, Deserialize)]
struct Sample {
    lat: f64,
    lon: f64,
    t: i64,
}

/// Parses lines into `(line_no, point)` pairs without validating values —
/// serde happily deserializes huge literals like `1e999` to `inf`, and
/// the lenient path wants to carry such defects to the sanitizer intact.
///
/// Streams from any `BufRead` with a single reused line buffer (no per-line
/// `String` allocation). Returns the rows plus the total line count.
fn parse_rows_jsonl_from<R: BufRead>(
    mut reader: R,
) -> Result<(Vec<(usize, RawPoint)>, usize), FormatError> {
    let mut rows = Vec::new();
    let mut buf = String::new();
    let mut line_no = 0usize;
    loop {
        buf.clear();
        let n = reader
            .read_line(&mut buf)
            .map_err(|e| FormatError::new(line_no + 1, format!("read failed: {e}")))?;
        if n == 0 {
            break;
        }
        line_no += 1;
        let line = buf.trim();
        if line.is_empty() {
            continue;
        }
        let s: Sample = serde_json::from_str(line)
            .map_err(|e| FormatError::new(line_no, format!("bad JSON sample: {e}")))?;
        // Struct literal, not `GeoPoint::new`: the constructor asserts on
        // defective values and this stage must not panic on them.
        rows.push((
            line_no,
            RawPoint { point: GeoPoint { lat: s.lat, lon: s.lon }, t: Timestamp(s.t) },
        ));
    }
    Ok((rows, line_no))
}

/// Validates parsed samples with the same rules as the CSV reader: finite +
/// in-range coordinates, at least two samples, non-decreasing timestamps,
/// each failure naming the offending 1-based line.
fn validate_rows(rows: &[(usize, RawPoint)], total_lines: usize) -> Result<(), FormatError> {
    for (line_no, p) in rows {
        if !p.point.lat.is_finite() || !p.point.lon.is_finite() {
            return Err(FormatError::new(
                *line_no,
                format!("non-finite coordinates: {}, {}", p.point.lat, p.point.lon),
            ));
        }
        if !(-90.0..=90.0).contains(&p.point.lat) || !(-180.0..=180.0).contains(&p.point.lon) {
            return Err(FormatError::new(
                *line_no,
                format!("coordinates out of range: {}, {}", p.point.lat, p.point.lon),
            ));
        }
    }
    if rows.len() < 2 {
        return Err(FormatError::new(
            total_lines,
            format!("a trajectory needs at least 2 samples, got {}", rows.len()),
        ));
    }
    for w in rows.windows(2) {
        if w[1].1.t < w[0].1.t {
            return Err(FormatError::new(
                w[1].0,
                format!(
                    "timestamps must be non-decreasing: t={} after t={}",
                    w[1].1.t.0, w[0].1.t.0
                ),
            ));
        }
    }
    Ok(())
}

/// Parses a trajectory from JSON-lines text, rejecting any defective sample
/// with the offending line number.
pub fn read_trajectory_jsonl(text: &str) -> Result<RawTrajectory, FormatError> {
    read_trajectory_jsonl_from(text.as_bytes())
}

/// Streaming variant of [`read_trajectory_jsonl`]: parses directly off a
/// buffered reader without materializing the document as one `String`.
pub fn read_trajectory_jsonl_from<R: BufRead>(reader: R) -> Result<RawTrajectory, FormatError> {
    let (rows, total_lines) = parse_rows_jsonl_from(reader)?;
    validate_rows(&rows, total_lines)?;
    Ok(RawTrajectory::new(rows.into_iter().map(|(_, p)| p).collect()))
}

/// Parses JSON-lines samples *without* validating coordinates or ordering —
/// the lenient front door for `stmaker_trajectory::sanitize`. Only
/// structurally unreadable lines error.
pub fn read_raw_points_jsonl(text: &str) -> Result<Vec<RawPoint>, FormatError> {
    read_raw_points_jsonl_from(text.as_bytes())
}

/// Streaming variant of [`read_raw_points_jsonl`].
pub fn read_raw_points_jsonl_from<R: BufRead>(reader: R) -> Result<Vec<RawPoint>, FormatError> {
    Ok(parse_rows_jsonl_from(reader)?.0.into_iter().map(|(_, p)| p).collect())
}

/// Serializes a trajectory to JSON-lines.
pub fn write_trajectory_jsonl(traj: &RawTrajectory) -> String {
    let mut out = Vec::new();
    write_trajectory_jsonl_to(&mut out, traj).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("JSON output is UTF-8")
}

/// Streaming variant of [`write_trajectory_jsonl`]: emits the identical
/// bytes onto any writer (hand files in behind a `BufWriter`).
pub fn write_trajectory_jsonl_to<W: Write>(w: &mut W, traj: &RawTrajectory) -> std::io::Result<()> {
    for p in traj.points() {
        let s = Sample { lat: p.point.lat, lon: p.point.lon, t: p.t.0 };
        let line = serde_json::to_string(&s).expect("plain struct serializes");
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let text =
            "{\"lat\":39.9,\"lon\":116.3,\"t\":0}\n{\"lat\":39.91,\"lon\":116.31,\"t\":10}\n";
        let traj = read_trajectory_jsonl(text).unwrap();
        assert_eq!(traj.len(), 2);
        let back = write_trajectory_jsonl(&traj);
        assert_eq!(read_trajectory_jsonl(&back).unwrap(), traj);
    }

    #[test]
    fn blank_lines_skipped() {
        let text =
            "{\"lat\":39.9,\"lon\":116.3,\"t\":0}\n\n{\"lat\":39.91,\"lon\":116.31,\"t\":10}\n";
        assert_eq!(read_trajectory_jsonl(text).unwrap().len(), 2);
    }

    #[test]
    fn errors_with_line_numbers() {
        let text = "{\"lat\":39.9,\"lon\":116.3,\"t\":0}\nnot json\n";
        let e = read_trajectory_jsonl(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bad JSON"));
    }

    #[test]
    fn rejects_decreasing_time_and_bad_coords() {
        let t = "{\"lat\":39.9,\"lon\":116.3,\"t\":10}\n{\"lat\":39.9,\"lon\":116.3,\"t\":0}\n";
        let e = read_trajectory_jsonl(t).unwrap_err();
        assert!(e.message.contains("non-decreasing"), "{e}");
        assert_eq!(e.line, 2, "ordering error names the offending row");
        let t = "{\"lat\":239.9,\"lon\":116.3,\"t\":0}\n{\"lat\":39.9,\"lon\":116.3,\"t\":1}\n";
        assert!(read_trajectory_jsonl(t).is_err());
    }

    #[test]
    fn rejects_non_finite_with_explicit_message() {
        // JSON has no NaN literal and this parser refuses overflowing ones,
        // so non-finite values can only reach the validator through direct
        // construction — which is exactly what defense-in-depth guards: the
        // check must name the defect precisely, not call it "out of range".
        let t = "{\"lat\":1e999,\"lon\":116.3,\"t\":0}\n{\"lat\":39.9,\"lon\":116.3,\"t\":1}\n";
        assert!(read_trajectory_jsonl(t).is_err(), "overflow literal must not pass");
        let rows = vec![
            (1, RawPoint { point: GeoPoint { lat: f64::NAN, lon: 116.3 }, t: Timestamp(0) }),
            (2, RawPoint { point: GeoPoint::new(39.9, 116.3), t: Timestamp(1) }),
        ];
        let e = validate_rows(&rows, 2).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("non-finite"), "{e}");
    }

    #[test]
    fn lenient_reader_carries_defects_through() {
        // Out-of-order and out-of-range samples survive parsing verbatim so
        // the sanitizer can count and repair them.
        let t = "{\"lat\":99.9,\"lon\":116.3,\"t\":10}\n{\"lat\":39.9,\"lon\":116.3,\"t\":0}\n";
        let pts = read_raw_points_jsonl(t).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].point.lat, 99.9); // out-of-range kept verbatim
        assert_eq!(pts[1].t, Timestamp(0)); // out-of-order kept verbatim
        let e = read_raw_points_jsonl("{\"lat\":39.9,\"lon\":116.3,\"t\":0}\nnope\n").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
